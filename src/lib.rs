//! # asketch-repro — workspace umbrella
//!
//! Re-exports the workspace crates so the runnable examples and the
//! cross-crate integration tests under `tests/` have a single import root.
//!
//! The interesting code lives in:
//!
//! * [`asketch`] — the ASketch framework (paper's contribution),
//! * [`sketches`] — Count-Min / Count Sketch / FCM / Misra–Gries /
//!   Space Saving / Holistic UDAF substrate,
//! * [`streamgen`] — seeded workloads, trace surrogates, ground truth,
//! * [`asketch_parallel`] — pipeline and SPMD execution,
//! * [`eval_metrics`] — the paper's evaluation metrics.

#![forbid(unsafe_code)]

pub use asketch;
pub use asketch_parallel;
pub use eval_metrics;
pub use sketches;
pub use streamgen;
