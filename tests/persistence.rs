//! Durability integration tests (DESIGN.md §12): property-based
//! state-bytes round-trips across every filter × sketch backend pairing,
//! and a corrupted-artifact fixture suite asserting that every damaged
//! snapshot or WAL fails **loudly with a typed error** — damaged bytes
//! must never decode into state.

use proptest::collection::vec;
use proptest::prelude::*;

use asketch::filter::{RelaxedHeapFilter, StreamSummaryFilter, StrictHeapFilter, VectorFilter};
use asketch::ASketch;
use asketch_durable::crc32c::crc32c;
use asketch_durable::{
    read_snapshot, replay, write_snapshot, DurabilityError, FsyncPolicy, SnapshotMeta, WalWriter,
};
use sketches::persist::Persist;
use sketches::{BlockedCountMin, BlockedCountMin32, CountMin, Fcm};

const KEY_DOMAIN: u64 = 400;

/// Round-trip one ASketch through its state bytes and require *bitwise*
/// equal behaviour: identical estimates over the whole key domain,
/// identical stats, identical re-encoding, and identical divergence under
/// further (hash-seed-dependent) ingest.
/// `deterministic_resume` additionally requires the original and restored
/// instances to stay in lockstep under *further* ingest. Only VectorFilter
/// guarantees that: decode re-inserts items in serialized order, which for
/// the dense vector reproduces the exact layout, while heap and
/// stream-summary filters may rebuild a differently-arranged (but equally
/// valid) structure whose eviction tie-breaks diverge later.
fn assert_round_trip<F, S>(
    mut original: ASketch<F, S>,
    keys: &[u64],
    tag: &str,
    deterministic_resume: bool,
) where
    F: asketch::Filter + Persist,
    S: sketches::UpdateEstimate + Persist,
{
    for &k in keys {
        original.insert(k);
    }
    let bytes = original.to_state_bytes();
    let mut restored = ASketch::<F, S>::from_state_bytes(&bytes).expect("state bytes decode");
    for k in 0..KEY_DOMAIN {
        assert_eq!(
            original.estimate(k),
            restored.estimate(k),
            "{tag}: estimates diverge for key {k}"
        );
    }
    assert_eq!(original.stats(), restored.stats(), "{tag}: stats diverge");
    // Second-generation round trip: re-encoding the restored instance may
    // reorder internal structure (e.g. stream-summary buckets), but it must
    // still decode to the same observable state.
    let second = ASketch::<F, S>::from_state_bytes(&restored.to_state_bytes())
        .expect("second-generation decode");
    for k in 0..KEY_DOMAIN {
        assert_eq!(
            original.estimate(k),
            second.estimate(k),
            "{tag}: second-generation estimates diverge for key {k}"
        );
    }
    if !deterministic_resume {
        return;
    }
    // Continued ingest exercises the persisted hash seeds: a restored
    // instance must keep agreeing with the original on *future* updates.
    for k in (0..KEY_DOMAIN).step_by(7) {
        original.insert(k);
        restored.insert(k);
    }
    for k in 0..KEY_DOMAIN {
        assert_eq!(
            original.estimate(k),
            restored.estimate(k),
            "{tag}: post-restore ingest diverges for key {k}"
        );
    }
}

macro_rules! round_trip_all_filters {
    ($keys:expr, $items:expr, $make_sketch:expr, $tag:expr) => {{
        assert_round_trip(
            ASketch::new(VectorFilter::new($items), $make_sketch),
            $keys,
            concat!($tag, "/vector"),
            true,
        );
        assert_round_trip(
            ASketch::new(StrictHeapFilter::new($items), $make_sketch),
            $keys,
            concat!($tag, "/strict-heap"),
            false,
        );
        assert_round_trip(
            ASketch::new(RelaxedHeapFilter::new($items), $make_sketch),
            $keys,
            concat!($tag, "/relaxed-heap"),
            false,
        );
        assert_round_trip(
            ASketch::new(StreamSummaryFilter::new($items), $make_sketch),
            $keys,
            concat!($tag, "/stream-summary"),
            false,
        );
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every filter kind × every persistable backend survives a
    /// bytes round-trip with bitwise-equal estimates.
    #[test]
    fn state_bytes_round_trip_is_bitwise_exact(
        keys in vec(0u64..KEY_DOMAIN, 1..1_200),
        items in 4usize..24,
        seed in 0u64..1_000,
    ) {
        round_trip_all_filters!(
            &keys,
            items,
            CountMin::new(seed, 4, 256).unwrap(),
            "count-min"
        );
        round_trip_all_filters!(
            &keys,
            items,
            Fcm::with_byte_budget(seed, 4, 8 * 1024, Some(items)).unwrap(),
            "fcm"
        );
        round_trip_all_filters!(
            &keys,
            items,
            BlockedCountMin::with_byte_budget(seed, 4, 8 * 1024).unwrap(),
            "blocked64"
        );
        round_trip_all_filters!(
            &keys,
            items,
            BlockedCountMin32::with_byte_budget(seed, 4, 8 * 1024).unwrap(),
            "blocked32"
        );
    }
}

// ---------------------------------------------------------------------------
// Corrupted-artifact fixtures: every damage pattern fails with the right
// typed error, never a silent bad decode.
// ---------------------------------------------------------------------------

type Kernel = ASketch<VectorFilter, CountMin>;

fn fixture_kernel() -> Kernel {
    let mut ask = ASketch::new(VectorFilter::new(16), CountMin::new(42, 4, 256).unwrap());
    for i in 0..5_000u64 {
        ask.insert(i % 97);
    }
    ask
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("asketch-persistence-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_fixture_snapshot(dir: &std::path::Path) -> std::path::PathBuf {
    write_snapshot(
        dir,
        SnapshotMeta {
            shard: 0,
            wal_seq: 9,
            ops: 5_000,
        },
        &fixture_kernel(),
    )
    .unwrap()
}

#[test]
fn pristine_snapshot_reads_back_exactly() {
    let dir = tmp_dir("pristine");
    let path = write_fixture_snapshot(&dir);
    let (meta, restored) = read_snapshot::<Kernel>(&path).unwrap();
    assert_eq!(meta.wal_seq, 9);
    assert_eq!(meta.ops, 5_000);
    let original = fixture_kernel();
    for k in 0..97 {
        assert_eq!(original.estimate(k), restored.estimate(k));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_header_magic_flip_is_bad_magic() {
    let dir = tmp_dir("magic");
    let path = write_fixture_snapshot(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[3] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        read_snapshot::<Kernel>(&path),
        Err(DurabilityError::BadMagic { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_body_bit_flips_are_checksum_mismatches() {
    let dir = tmp_dir("body");
    let path = write_fixture_snapshot(&dir);
    let pristine = std::fs::read(&path).unwrap();
    // Sweep flips through the metadata fields and payload alike: a single
    // flipped bit anywhere past the magic must trip the CRC.
    for offset in [8, 12, 20, 36, 60, pristine.len() / 2, pristine.len() - 9] {
        let mut bytes = pristine.clone();
        bytes[offset] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match read_snapshot::<Kernel>(&path) {
            Err(DurabilityError::ChecksumMismatch {
                stored, computed, ..
            }) => {
                assert_ne!(stored, computed);
            }
            other => panic!("flip at {offset}: expected ChecksumMismatch, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_crc_field_flip_is_checksum_mismatch() {
    let dir = tmp_dir("crc");
    let path = write_fixture_snapshot(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        read_snapshot::<Kernel>(&path),
        Err(DurabilityError::ChecksumMismatch { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_snapshot_is_typed_not_garbage() {
    let dir = tmp_dir("trunc-snap");
    let path = write_fixture_snapshot(&dir);
    let bytes = std::fs::read(&path).unwrap();
    // Below the fixed header: Truncated. At any longer prefix: the CRC
    // (stored at the end, now cut off) can no longer match.
    std::fs::write(&path, &bytes[..20]).unwrap();
    assert!(matches!(
        read_snapshot::<Kernel>(&path),
        Err(DurabilityError::Truncated { .. })
    ));
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    assert!(matches!(
        read_snapshot::<Kernel>(&path),
        Err(DurabilityError::ChecksumMismatch { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn future_version_with_valid_crc_is_unsupported_version() {
    let dir = tmp_dir("version");
    let path = write_fixture_snapshot(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    // Craft a structurally valid snapshot from the future: bump the
    // version field (first 4 body bytes) and recompute the trailing CRC
    // so the damage detector can't save us — the version check must.
    bytes[8] = 0x7F;
    let body_end = bytes.len() - 4;
    let crc = crc32c(&bytes[8..body_end]);
    bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match read_snapshot::<Kernel>(&path) {
        Err(DurabilityError::UnsupportedVersion { found, .. }) => {
            assert_eq!(found, 0x7F)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_wal_tail_is_reported_and_prefix_survives() {
    let dir = tmp_dir("trunc-wal");
    let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
    for seq in 1..=8u64 {
        w.append(seq, &[seq, seq + 50]).unwrap();
    }
    drop(w);
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .unwrap();
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 11]).unwrap();
    let mut seqs = Vec::new();
    let scan = replay(&dir, |seq, _| seqs.push(seq)).unwrap();
    assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6, 7], "intact prefix replays");
    let torn = scan.torn.expect("torn tail reported, not silently eaten");
    assert_eq!(torn.reason, "record body cut short");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_bit_flip_stops_replay_at_the_damage() {
    let dir = tmp_dir("flip-wal");
    let mut w = WalWriter::create(&dir, 0, FsyncPolicy::PerBatch, 1 << 20).unwrap();
    for seq in 1..=6u64 {
        w.append(seq, &[seq]).unwrap();
    }
    drop(w);
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    // 8 bytes before EOF is always inside the last record's body (the
    // record ends with a 4-byte CRC and the body is at least 12 bytes),
    // whatever width the keys packed to.
    let at = bytes.len() - 8;
    bytes[at] ^= 0x08;
    std::fs::write(&seg, &bytes).unwrap();
    let scan = replay(&dir, |_, _| {}).unwrap();
    assert!(scan.records < 6, "replay must stop at the flipped record");
    assert_eq!(
        scan.torn.expect("reported").reason,
        "record checksum mismatch"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn out_of_order_wal_is_structural_damage_not_a_torn_tail() {
    let dir = tmp_dir("ooo-wal");
    // Hand-craft a segment whose sequence numbers regress: 2 then 1. The
    // writer can't produce this, so build the records byte-by-byte.
    let mut bytes = Vec::new();
    for seq in [2u64, 1u64] {
        let mut body = Vec::new();
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&77u64.to_le_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc32c(&body).to_le_bytes());
    }
    std::fs::write(dir.join(format!("wal-{:020}.log", 1)), &bytes).unwrap();
    match replay(&dir, |_, _| {}) {
        Err(DurabilityError::OutOfOrder { found, after, .. }) => {
            assert_eq!((found, after), (1, 2));
        }
        other => panic!("expected OutOfOrder, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
