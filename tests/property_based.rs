//! Property-based tests (proptest) over the core invariants:
//! one-sidedness, filter-model equivalence, permutation bijectivity,
//! Space Saving error bounds, and metric algebra.

use proptest::collection::vec;
use proptest::prelude::*;

use asketch::filter::{Filter, FilterKind};
use asketch::AsketchBuilder;
use sketches::{CountMin, FrequencyEstimator, SpaceSaving, TopK, UnmonitoredEstimate};
use streamgen::KeyPermutation;

fn truth_of(ops: &[(u64, i64)]) -> std::collections::HashMap<u64, i64> {
    let mut t = std::collections::HashMap::new();
    for &(k, u) in ops {
        *t.entry(k).or_insert(0) += u;
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_min_never_undercounts(keys in vec(0u64..500, 1..2_000)) {
        let mut cms = CountMin::new(1, 4, 128).unwrap();
        for &k in &keys {
            cms.insert(k);
        }
        let truth = truth_of(&keys.iter().map(|&k| (k, 1)).collect::<Vec<_>>());
        for (&k, &t) in &truth {
            prop_assert!(cms.estimate(k) >= t);
        }
    }

    #[test]
    fn asketch_never_undercounts_any_filter(
        keys in vec(0u64..300, 1..1_500),
        kind_idx in 0usize..4,
    ) {
        let kind = FilterKind::ALL[kind_idx];
        let mut ask = AsketchBuilder {
            total_bytes: 4 * 1024,
            filter_items: 8,
            filter_kind: kind,
            seed: 1,
            ..Default::default()
        }
        .build_count_min()
        .unwrap();
        for &k in &keys {
            ask.insert(k);
        }
        let truth = truth_of(&keys.iter().map(|&k| (k, 1)).collect::<Vec<_>>());
        for (&k, &t) in &truth {
            prop_assert!(ask.estimate(k) >= t, "{}: key {k}", kind.name());
        }
    }

    #[test]
    fn asketch_turnstile_never_undercounts(
        seed_keys in vec(0u64..100, 1..800),
        del_frac in 0u32..3,
    ) {
        // Build strict ops: delete only what is still live.
        let mut live: std::collections::HashMap<u64, i64> = Default::default();
        let mut ops = Vec::new();
        for (i, &k) in seed_keys.iter().enumerate() {
            ops.push((k, 1i64));
            *live.entry(k).or_insert(0) += 1;
            if del_frac > 0 && i % (4 - del_frac as usize) == 0 {
                if let Some((&dk, _)) = live.iter().find(|(_, &c)| c > 0) {
                    ops.push((dk, -1));
                    *live.get_mut(&dk).unwrap() -= 1;
                }
            }
        }
        let mut ask = AsketchBuilder {
            total_bytes: 4 * 1024,
            filter_items: 8,
            seed: 2,
            ..Default::default()
        }
        .build_count_min()
        .unwrap();
        for &(k, u) in &ops {
            ask.update(k, u);
        }
        for (&k, &c) in live.iter().filter(|(_, &c)| c > 0) {
            prop_assert!(ask.estimate(k) >= c, "key {k}: {} < {c}", ask.estimate(k));
        }
    }

    #[test]
    fn filters_agree_with_reference_model(
        ops in vec((0u64..20, 1i64..10), 1..600),
        kind_idx in 0usize..4,
    ) {
        // All four filters must agree with a naive model on the
        // update-or-insert-or-overflow discipline of Algorithm 1's hot path.
        let kind = FilterKind::ALL[kind_idx];
        let mut f = kind.build(6);
        let mut model: Vec<(u64, i64)> = Vec::new();
        for &(k, u) in &ops {
            match f.update_existing(k, u) {
                Some(got) => {
                    let m = model.iter_mut().find(|(mk, _)| *mk == k).unwrap();
                    m.1 += u;
                    prop_assert_eq!(got, m.1);
                }
                None => {
                    prop_assert!(model.iter().all(|(mk, _)| *mk != k));
                    if model.len() < 6 {
                        f.insert(k, u, 0);
                        model.push((k, u));
                    }
                }
            }
            let want_min = model.iter().map(|(_, c)| *c).min();
            prop_assert_eq!(f.min_count(), want_min);
        }
    }

    #[test]
    fn batched_ingest_is_exactly_scalar(
        ops in vec((0u64..150, -3i64..8), 1..1_200),
        batch in 1usize..300,
        kind_idx in 0usize..4,
    ) {
        // The batched hot path stages filter misses into runs and spills
        // them to the sketch at run boundaries (sign flip, exchange, chunk
        // end). Whatever the spill pattern, the result must be *identical*
        // to the scalar path: same estimates, same stats, same exchanges.
        let builder = AsketchBuilder {
            total_bytes: 4 * 1024,
            filter_items: 8,
            filter_kind: FilterKind::ALL[kind_idx],
            seed: 3,
            ..Default::default()
        };
        let mut scalar = builder.build_count_min().unwrap();
        let mut batched = builder.build_count_min().unwrap();
        for &(k, u) in &ops {
            scalar.update(k, u);
        }
        for part in ops.chunks(batch) {
            batched.update_batch(part);
        }
        prop_assert_eq!(scalar.stats(), batched.stats());
        for k in 0u64..150 {
            prop_assert_eq!(scalar.estimate(k), batched.estimate(k), "key {}", k);
        }
    }

    #[test]
    fn permutation_is_bijective(m in 1u64..5_000, seed in any::<u64>()) {
        let perm = KeyPermutation::new(seed, m);
        let mut seen = vec![false; m as usize];
        for x in 0..m {
            let y = perm.permute(x);
            prop_assert!(y < m);
            prop_assert!(!seen[y as usize]);
            seen[y as usize] = true;
        }
    }

    #[test]
    fn space_saving_bounds_hold(keys in vec(0u64..200, 1..1_500)) {
        let mut ss = SpaceSaving::new(10, UnmonitoredEstimate::Min).unwrap();
        for &k in &keys {
            ss.insert(k);
        }
        ss.check_invariants().map_err(TestCaseError::fail)?;
        let truth = truth_of(&keys.iter().map(|&k| (k, 1)).collect::<Vec<_>>());
        for (k, count) in ss.top_k(10) {
            let t = truth.get(&k).copied().unwrap_or(0);
            // count >= true >= count - error
            prop_assert!(count >= t);
            let (c, e) = ss.get(k).unwrap();
            prop_assert_eq!(c, count);
            prop_assert!(c - e <= t);
        }
        // Guarantee: any key with count > N/m is monitored.
        let n: i64 = keys.len() as i64;
        for (&k, &t) in &truth {
            if t > n / 10 {
                prop_assert!(ss.get(k).is_some(), "heavy key {k} evicted");
            }
        }
    }

    #[test]
    fn observed_error_is_zero_iff_exact(truths in vec(1i64..1000, 1..50)) {
        let exact: Vec<eval_metrics::EstimatePair> = truths
            .iter()
            .map(|&t| eval_metrics::EstimatePair { estimated: t, truth: t })
            .collect();
        prop_assert_eq!(eval_metrics::observed_error(&exact), Some(0.0));
        let off: Vec<eval_metrics::EstimatePair> = truths
            .iter()
            .map(|&t| eval_metrics::EstimatePair { estimated: t + 1, truth: t })
            .collect();
        prop_assert!(eval_metrics::observed_error(&off).unwrap() > 0.0);
    }

    #[test]
    fn zipf_probabilities_sum_to_one(n in 1u64..2_000, z in 0.0f64..3.0) {
        let zipf = streamgen::Zipf::new(n, z);
        let total: f64 = (1..=n).map(|k| zipf.probability(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }
}
