//! Cross-crate integration tests: the accuracy guarantees the paper states,
//! exercised on real generated workloads through the public API.

use asketch::filter::FilterKind;
use asketch::AsketchBuilder;
use sketches::{CountMin, FrequencyEstimator};
use streamgen::{ExactCounter, StreamSpec};

fn workload(skew: f64, seed: u64) -> (Vec<u64>, ExactCounter) {
    let spec = StreamSpec {
        len: 200_000,
        distinct: 50_000,
        skew,
        seed,
    };
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);
    (stream, truth)
}

#[test]
fn one_sided_guarantee_every_filter_kind() {
    let (stream, truth) = workload(1.2, 1);
    for kind in FilterKind::ALL {
        let mut ask = AsketchBuilder {
            total_bytes: 32 * 1024,
            filter_kind: kind,
            seed: 7,
            ..Default::default()
        }
        .build_count_min()
        .unwrap();
        for &k in &stream {
            ask.insert(k);
        }
        for (key, t) in truth.iter() {
            let est = ask.estimate(key);
            assert!(
                est >= t,
                "{}: estimate {est} under-counts true {t} for key {key}",
                kind.name()
            );
        }
    }
}

#[test]
fn one_sided_guarantee_fcm_backend() {
    let (stream, truth) = workload(1.0, 2);
    let mut ask = AsketchBuilder {
        total_bytes: 32 * 1024,
        seed: 3,
        ..Default::default()
    }
    .build_fcm()
    .unwrap();
    for &k in &stream {
        ask.insert(k);
    }
    for (key, t) in truth.iter() {
        assert!(ask.estimate(key) >= t, "ASketch-FCM under-counts {key}");
    }
}

#[test]
fn heavy_hitters_are_exact_at_real_world_skew() {
    // The paper's central accuracy claim: items resident in the filter are
    // counted exactly. At skew 1.5 the top items stay resident.
    let (stream, truth) = workload(1.5, 3);
    let mut ask = AsketchBuilder {
        total_bytes: 64 * 1024,
        seed: 9,
        ..Default::default()
    }
    .build_count_min()
    .unwrap();
    for &k in &stream {
        ask.insert(k);
    }
    let top = truth.top_k(8);
    let exact = top.iter().filter(|&&(k, t)| ask.estimate(k) == t).count();
    assert!(
        exact >= 6,
        "only {exact}/8 heavy hitters exact; filter not capturing the head"
    );
}

#[test]
fn asketch_never_less_accurate_than_cms_on_heavy_queries() {
    for skew in [1.0, 1.5, 2.0] {
        let (stream, truth) = workload(skew, 4);
        let budget = 16 * 1024;
        let mut ask = AsketchBuilder {
            total_bytes: budget,
            seed: 5,
            ..Default::default()
        }
        .build_count_min()
        .unwrap();
        let mut cms = CountMin::with_byte_budget(5, 8, budget).unwrap();
        for &k in &stream {
            ask.insert(k);
            cms.insert(k);
        }
        let mut ask_err = 0i64;
        let mut cms_err = 0i64;
        for (key, t) in truth.top_k(32) {
            ask_err += ask.estimate(key) - t;
            cms_err += cms.estimate(key) - t;
        }
        assert!(
            ask_err <= cms_err,
            "skew {skew}: ASketch head error {ask_err} exceeds CMS {cms_err}"
        );
    }
}

#[test]
fn total_mass_is_conserved_in_sketch_rows() {
    // Lemma 1 consequence: the sketch's per-row mass never exceeds the
    // total stream mass (no double-insertion through exchanges).
    let (stream, truth) = workload(0.8, 6);
    let mut ask = AsketchBuilder {
        total_bytes: 32 * 1024,
        seed: 11,
        ..Default::default()
    }
    .build_count_min()
    .unwrap();
    for &k in &stream {
        ask.insert(k);
    }
    for row in 0..ask.sketch().depth() {
        assert!(
            ask.sketch().row_sum(row) <= truth.total(),
            "row {row} holds more mass than the stream carries"
        );
    }
}

#[test]
fn same_budget_for_asketch_and_cms() {
    // The fairness invariant behind every comparison in the paper.
    let budget = 128 * 1024;
    let ask = AsketchBuilder {
        total_bytes: budget,
        ..Default::default()
    }
    .build_count_min()
    .unwrap();
    let cms = CountMin::with_byte_budget(1, 8, budget).unwrap();
    assert!(ask.size_bytes() <= budget);
    assert!(cms.size_bytes() <= budget);
    let gap = (ask.size_bytes() as i64 - cms.size_bytes() as i64).abs();
    assert!(gap <= 1024, "budgets drifted apart by {gap} bytes");
}
