//! Snapshot integration tests: every summary is `Clone` (and `Serialize`,
//! exercised by the type system at compile time below), and a snapshot is a
//! fully independent deep copy — the state-migration property a production
//! deployment relies on.
//!
//! No serde *format* crate is in the approved dependency set, so the
//! runtime round-trip is exercised via `Clone`; `Serialize`/`Deserialize`
//! bounds are asserted statically.

use asketch::filter::{RelaxedHeapFilter, StrictHeapFilter, VectorFilter};
use asketch::ASketch;
use sketches::{
    CountMin, CountMin32, CountMinCu, CountSketch, Fcm, FrequencyEstimator, SpaceSaving,
    UnmonitoredEstimate,
};
use streamgen::StreamSpec;

/// Compile-time assertion that the persistent summaries implement serde.
#[allow(dead_code)]
fn assert_serde_bounds() {
    fn takes<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    takes::<CountMin>();
    takes::<CountMin32>();
    takes::<CountMinCu>();
    takes::<CountSketch>();
    takes::<Fcm>();
    takes::<SpaceSaving>();
    takes::<sketches::HolisticUdaf>();
    takes::<ASketch<RelaxedHeapFilter, CountMin>>();
    takes::<ASketch<VectorFilter, CountMin32>>();
}

fn stream() -> Vec<u64> {
    StreamSpec {
        len: 30_000,
        distinct: 5_000,
        skew: 1.3,
        seed: 0x5E2D,
    }
    .materialize()
}

fn assert_same_estimates<M: FrequencyEstimator>(a: &M, b: &M, keys: &[u64]) {
    for &k in keys.iter().take(2_000) {
        assert_eq!(
            a.estimate(k),
            b.estimate(k),
            "estimates diverge for key {k}"
        );
    }
}

#[test]
fn clones_are_independent_snapshots() {
    let keys = stream();
    let mut cms = CountMin::with_byte_budget(1, 8, 32 * 1024).unwrap();
    for &k in &keys[..20_000] {
        cms.insert(k);
    }
    let snapshot = cms.clone();
    // Continue the live instance past the snapshot point.
    for &k in &keys[20_000..] {
        cms.insert(k);
    }
    // The snapshot answers as of snapshot time: one-sided for the prefix,
    // and never above the live instance.
    let mut prefix_truth = std::collections::HashMap::new();
    for &k in &keys[..20_000] {
        *prefix_truth.entry(k).or_insert(0i64) += 1;
    }
    for (&k, &t) in prefix_truth.iter().take(2_000) {
        assert!(snapshot.estimate(k) >= t);
        assert!(cms.estimate(k) >= snapshot.estimate(k));
    }
}

#[test]
fn asketch_clone_snapshot() {
    let keys = stream();
    let mut ask = ASketch::new(
        RelaxedHeapFilter::new(16),
        CountMin::with_byte_budget(7, 8, 16 * 1024).unwrap(),
    );
    for &k in &keys {
        ask.insert(k);
    }
    let snap = ask.clone();
    assert_same_estimates(&ask, &snap, &keys);
    assert_eq!(ask.stats(), snap.stats());
    // Divergence after the snapshot does not leak back.
    let mut live = ask;
    live.insert(424242);
    assert!(live.estimate(424242) >= 1);
    assert_eq!(
        snap.stats().filter_updates + snap.stats().sketch_updates,
        30_000
    );
}

#[test]
fn all_summaries_clone_consistently() {
    let keys = stream();
    macro_rules! check {
        ($m:expr) => {{
            let mut m = $m;
            for &k in &keys[..10_000] {
                m.insert(k);
            }
            let c = m.clone();
            assert_same_estimates(&m, &c, &keys);
        }};
    }
    check!(CountMin32::with_byte_budget(3, 8, 16 * 1024).unwrap());
    check!(CountMinCu::with_byte_budget(3, 8, 16 * 1024).unwrap());
    check!(CountSketch::with_byte_budget(3, 5, 16 * 1024).unwrap());
    check!(Fcm::with_byte_budget(3, 8, 16 * 1024, Some(16)).unwrap());
    check!(SpaceSaving::with_byte_budget(4 * 1024, UnmonitoredEstimate::Zero).unwrap());
    check!(ASketch::new(
        VectorFilter::new(8),
        CountMin::with_byte_budget(3, 8, 8 * 1024).unwrap()
    ));
    check!(ASketch::new(
        StrictHeapFilter::new(8),
        CountMin::with_byte_budget(3, 8, 8 * 1024).unwrap()
    ));
}
