//! Differential tests: the batched ingest path must be *exactly* the
//! scalar path — same estimates, same `AsketchStats` (exchange count,
//! filter/sketch mass split), same deletion handling — across every
//! filter kind and both sketch backends, including negative deltas.
//!
//! Batching reorders only *address computation* (hash hoisting, prefetch),
//! never the read-modify-write sequence, so equality here is `==`, not a
//! tolerance.

use asketch::filter::FilterKind;
use asketch::{ASketch, AsketchBuilder};
use sketches::{CountMin, Fcm, FrequencyEstimator, UpdateEstimate};

/// Deterministic skewed stream with interleaved negative deltas: roughly
/// one tuple in seven retracts part of an earlier key's mass, exercising
/// the turnstile path that splits batched runs.
fn mixed_stream(seed: u64, len: usize, distinct: u64) -> Vec<(u64, i64)> {
    let mut x = seed | 1;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Squaring the draw skews mass toward low keys (cheap Zipf stand-in).
        let r = (x >> 33) as f64 / (1u64 << 31) as f64;
        let key = ((r * r) * distinct as f64) as u64;
        let delta = if i % 7 == 3 {
            -((x >> 57) as i64 % 3 + 1)
        } else {
            (x >> 61) as i64 % 3 + 1
        };
        out.push((key, delta));
    }
    out
}

type BoxedAsketch = ASketch<Box<dyn asketch::filter::Filter + Send>, CountMin>;

fn build_pair(kind: FilterKind, seed: u64) -> (BoxedAsketch, BoxedAsketch) {
    let builder = AsketchBuilder {
        total_bytes: 16 * 1024,
        filter_items: 16,
        filter_kind: kind,
        seed,
        ..Default::default()
    };
    (
        builder.build_count_min().unwrap(),
        builder.build_count_min().unwrap(),
    )
}

fn assert_identical<F, S>(scalar: &ASketch<F, S>, batched: &ASketch<F, S>, keys: u64, tag: &str)
where
    F: asketch::filter::Filter,
    S: UpdateEstimate,
{
    assert_eq!(scalar.stats(), batched.stats(), "{tag}: stats diverged");
    for k in 0..keys {
        assert_eq!(
            scalar.estimate(k),
            batched.estimate(k),
            "{tag}: estimate diverged for key {k}"
        );
    }
    let all: Vec<u64> = (0..keys).collect();
    let point: Vec<i64> = all.iter().map(|&k| scalar.estimate(k)).collect();
    assert_eq!(
        batched.estimate_batch(&all),
        point,
        "{tag}: estimate_batch diverged from pointwise"
    );
}

#[test]
fn asketch_batch_matches_scalar_all_filters_count_min() {
    const DISTINCT: u64 = 400;
    let stream = mixed_stream(0xA5, 12_000, DISTINCT);
    for kind in FilterKind::ALL {
        // Batch sizes straddle the run-flush boundaries: singleton, odd,
        // exactly one prime chunk, and a large multi-run batch.
        for batch in [1usize, 3, 16, 257] {
            let (mut scalar, mut batched) = build_pair(kind, 0x5EED);
            for &(k, u) in &stream {
                scalar.update(k, u);
            }
            for part in stream.chunks(batch) {
                batched.update_batch(part);
            }
            assert_identical(
                &scalar,
                &batched,
                DISTINCT,
                &format!("{}/batch={batch}", kind.name()),
            );
        }
    }
}

#[test]
fn asketch_batch_matches_scalar_all_filters_fcm() {
    const DISTINCT: u64 = 400;
    let stream = mixed_stream(0xF0, 12_000, DISTINCT);
    for kind in FilterKind::ALL {
        for batch in [1usize, 64, 513] {
            let builder = AsketchBuilder {
                total_bytes: 16 * 1024,
                filter_items: 16,
                filter_kind: kind,
                seed: 0xFC,
                ..Default::default()
            };
            let mut scalar = builder.build_fcm().unwrap();
            let mut batched = builder.build_fcm().unwrap();
            for &(k, u) in &stream {
                scalar.update(k, u);
            }
            for part in stream.chunks(batch) {
                batched.update_batch(part);
            }
            assert_identical(
                &scalar,
                &batched,
                DISTINCT,
                &format!("fcm/{}/batch={batch}", kind.name()),
            );
        }
    }
}

#[test]
fn raw_sketches_batch_matches_scalar() {
    const DISTINCT: u64 = 600;
    let stream = mixed_stream(0xBEEF, 20_000, DISTINCT);
    let keys: Vec<u64> = (0..DISTINCT).collect();

    let mut cm_scalar = CountMin::with_byte_budget(3, 8, 32 * 1024).unwrap();
    let mut cm_batched = cm_scalar.clone();
    let mut fcm_scalar = Fcm::with_byte_budget(3, 8, 32 * 1024, Some(16)).unwrap();
    let mut fcm_batched = fcm_scalar.clone();

    for &(k, u) in &stream {
        cm_scalar.update(k, u);
        fcm_scalar.update(k, u);
    }
    for part in stream.chunks(113) {
        cm_batched.update_batch(part);
        fcm_batched.update_batch(part);
    }
    for &k in &keys {
        assert_eq!(
            cm_scalar.estimate(k),
            cm_batched.estimate(k),
            "count-min key {k}"
        );
        assert_eq!(
            fcm_scalar.estimate(k),
            fcm_batched.estimate(k),
            "fcm key {k}"
        );
    }
    assert_eq!(
        cm_batched.estimate_batch(&keys),
        keys.iter()
            .map(|&k| cm_scalar.estimate(k))
            .collect::<Vec<_>>()
    );
}

#[test]
fn unit_insert_batch_matches_scalar_inserts() {
    // insert_batch is the SPMD shard entry point; it stages through a fixed
    // stack buffer, so lengths around the 256-tuple staging size matter.
    let keys: Vec<u64> = mixed_stream(0x11, 5_000, 300)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    for len in [1usize, 255, 256, 257, 1024] {
        let mut scalar = CountMin::with_byte_budget(9, 4, 16 * 1024).unwrap();
        let mut batched = scalar.clone();
        for &k in &keys[..len.min(keys.len())] {
            scalar.update(k, 1);
        }
        batched.insert_batch(&keys[..len.min(keys.len())]);
        for k in 0..300 {
            assert_eq!(scalar.estimate(k), batched.estimate(k), "len={len} key={k}");
        }
    }
}
