//! End-to-end, small-scale versions of the paper's headline claims —
//! the same shapes the full `repro` harness checks, kept fast enough for
//! `cargo test`.

use asketch::analysis;
use asketch::AsketchBuilder;
use eval_metrics::{observed_error, precision_at_k, EstimatePair};
use sketches::{CountMin, FrequencyEstimator};
use streamgen::{query, ExactCounter, StreamSpec};

const LEN: usize = 300_000;
const DISTINCT: u64 = 75_000;

fn spec(skew: f64) -> StreamSpec {
    StreamSpec {
        len: LEN,
        distinct: DISTINCT,
        skew,
        seed: 0xC1A11,
    }
}

fn observed(est: impl Fn(u64) -> i64, queries: &[u64], truth: &ExactCounter) -> f64 {
    let pairs: Vec<EstimatePair> = queries
        .iter()
        .map(|&q| EstimatePair {
            estimated: est(q),
            truth: truth.count(q),
        })
        .collect();
    observed_error(&pairs).unwrap()
}

#[test]
fn claim_accuracy_improvement_grows_with_skew() {
    // Table 4's shape: the CMS/ASketch error ratio grows with skew.
    let budget = 16 * 1024;
    let mut ratios = Vec::new();
    for skew in [1.0, 1.5] {
        let s = spec(skew);
        let stream = s.materialize();
        let truth = ExactCounter::from_keys(&stream);
        let queries = query::sample_from_stream(1, &stream, 30_000);
        let mut ask = AsketchBuilder {
            total_bytes: budget,
            seed: s.seed,
            ..Default::default()
        }
        .build_count_min()
        .unwrap();
        let mut cms = CountMin::with_byte_budget(s.seed, 8, budget).unwrap();
        for &k in &stream {
            ask.insert(k);
            cms.insert(k);
        }
        let e_ask = observed(|q| ask.estimate(q), &queries, &truth).max(1e-12);
        let e_cms = observed(|q| cms.estimate(q), &queries, &truth);
        ratios.push(e_cms / e_ask);
    }
    assert!(
        ratios[1] > ratios[0],
        "improvement should grow with skew: {ratios:?}"
    );
    assert!(
        ratios[1] > 1.5,
        "no real accuracy win at skew 1.5: {ratios:?}"
    );
}

#[test]
fn claim_topk_precision_perfect_at_skew_one_plus() {
    // Table 5's shape.
    for skew in [1.0, 1.5] {
        let s = spec(skew);
        let stream = s.materialize();
        let truth = ExactCounter::from_keys(&stream);
        let mut ask = AsketchBuilder {
            seed: s.seed,
            ..Default::default()
        }
        .build_count_min()
        .unwrap();
        for &k in &stream {
            ask.insert(k);
        }
        let k = 32;
        let reported: Vec<u64> = ask.top_k(k).into_iter().map(|(key, _)| key).collect();
        let true_ids: Vec<u64> = truth.top_k(k).into_iter().map(|(key, _)| key).collect();
        let p = precision_at_k(&reported, &true_ids);
        assert!(p >= 0.95, "precision {p} at skew {skew}");
    }
}

#[test]
fn claim_exchanges_decrease_with_skew() {
    // Figure 9's shape.
    let mut counts = Vec::new();
    for skew in [0.0, 1.5, 3.0] {
        let s = spec(skew);
        let stream = s.materialize();
        let mut ask = AsketchBuilder {
            seed: s.seed,
            ..Default::default()
        }
        .build_count_min()
        .unwrap();
        for &k in &stream {
            ask.insert(k);
        }
        counts.push(ask.stats().exchanges);
    }
    assert!(
        counts[0] > counts[1] && counts[1] > counts[2],
        "exchanges must fall with skew: {counts:?}"
    );
    // Even at uniform, exchanges are a tiny fraction of the stream.
    assert!((counts[0] as f64) < LEN as f64 * 0.05, "{counts:?}");
}

#[test]
fn claim_selectivity_matches_closed_form() {
    // Figure 17's shape.
    for skew in [0.5, 1.5, 2.5] {
        let s = spec(skew);
        let stream = s.materialize();
        let mut ask = AsketchBuilder {
            seed: s.seed,
            ..Default::default()
        }
        .build_count_min()
        .unwrap();
        for &k in &stream {
            ask.insert(k);
        }
        let achieved = ask.stats().filter_selectivity().unwrap();
        let predicted = analysis::zipf_filter_selectivity(skew, DISTINCT, 32);
        assert!(
            (achieved - predicted).abs() < 0.06,
            "skew {skew}: achieved {achieved:.3} vs predicted {predicted:.3}"
        );
    }
}

#[test]
fn claim_no_misclassified_heavy_hitters_for_asketch() {
    // Table 3's shape at small scale: CMS may misclassify; ASketch must not.
    let s = spec(1.5);
    let stream = s.materialize();
    let truth = ExactCounter::from_keys(&stream);
    let budget = 8 * 1024; // tight enough for CMS to struggle
    let mut ask = AsketchBuilder {
        total_bytes: budget,
        seed: s.seed,
        ..Default::default()
    }
    .build_count_min()
    .unwrap();
    for &k in &stream {
        ask.insert(k);
    }
    let threshold = truth.kth_count(32);
    let ask_misclassified = eval_metrics::find_misclassified(
        truth.iter().map(|(key, t)| (key, ask.estimate(key), t)),
        threshold,
        0.1,
    );
    assert!(
        ask_misclassified.len() <= 1,
        "ASketch misclassified {} light items as heavy",
        ask_misclassified.len()
    );
}

#[test]
fn claim_generality_fcm_backend_also_improves() {
    // Figure 8's shape.
    let s = spec(1.5);
    let stream = s.materialize();
    let truth = ExactCounter::from_keys(&stream);
    let queries = query::sample_from_stream(2, &stream, 30_000);
    let budget = 16 * 1024;
    let mut fcm = sketches::Fcm::with_byte_budget(s.seed, 8, budget, Some(32)).unwrap();
    let mut askf = AsketchBuilder {
        total_bytes: budget,
        seed: s.seed,
        ..Default::default()
    }
    .build_fcm()
    .unwrap();
    for &k in &stream {
        fcm.insert(k);
        askf.insert(k);
    }
    let e_fcm = observed(|q| fcm.estimate(q), &queries, &truth);
    let e_askf = observed(|q| askf.estimate(q), &queries, &truth);
    assert!(
        e_askf <= e_fcm,
        "ASketch-FCM ({e_askf}) should not be worse than FCM ({e_fcm})"
    );
}
