//! Integration tests for the parallel runtimes: the pipeline and SPMD
//! configurations must preserve the guarantees of the sequential algorithm.

use asketch::filter::{Filter, RelaxedHeapFilter};
use asketch::{ASketch, AsketchBuilder};
use asketch_parallel::{round_robin_shards, PipelineASketch, PipelineHUdaf, SpmdGroup};
use sketches::CountMin;
use streamgen::{ExactCounter, StreamSpec};

fn workload(skew: f64) -> (Vec<u64>, ExactCounter) {
    let spec = StreamSpec {
        len: 150_000,
        distinct: 30_000,
        skew,
        seed: 0x9A7A11E1,
    };
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);
    (stream, truth)
}

#[test]
fn pipeline_matches_sequential_on_heavy_hitters() {
    let (stream, truth) = workload(1.5);
    let mk = || CountMin::with_byte_budget(3, 8, 31 * 1024).unwrap();

    let mut seq = ASketch::new(RelaxedHeapFilter::new(32), mk());
    let mut pipe = PipelineASketch::spawn(RelaxedHeapFilter::new(32), mk());
    for &k in &stream {
        seq.insert(k);
        pipe.insert(k);
    }
    for (key, t) in truth.top_k(16) {
        let s = seq.estimate(key);
        let p = pipe.estimate(key);
        assert!(s >= t && p >= t, "one-sidedness violated for {key}");
        // Heavy hitters should be *exact* in both at this skew.
        assert_eq!(s, t, "sequential heavy hitter {key} not exact");
        assert_eq!(p, t, "pipeline heavy hitter {key} not exact");
    }
}

#[test]
fn pipeline_one_sided_across_all_keys() {
    for skew in [0.0, 1.0, 2.0] {
        let (stream, truth) = workload(skew);
        let mut pipe = PipelineASketch::spawn(
            RelaxedHeapFilter::new(32),
            CountMin::with_byte_budget(5, 8, 31 * 1024).unwrap(),
        );
        for &k in &stream {
            pipe.insert(k);
        }
        for (key, t) in truth.iter() {
            let est = pipe.estimate(key);
            assert!(est >= t, "skew {skew}: {est} < {t} for key {key}");
        }
    }
}

#[test]
fn pipeline_hudaf_one_sided() {
    let (stream, truth) = workload(1.0);
    let mut p = PipelineHUdaf::spawn(CountMin::with_byte_budget(7, 8, 31 * 1024).unwrap(), 32);
    for &k in &stream {
        p.insert(k);
    }
    for (key, t) in truth.top_k(200) {
        assert!(p.estimate(key) >= t, "H-UDAF pipeline under-counts {key}");
    }
    let sketch = p.finish();
    assert!(sketch.row_sum(0) <= truth.total());
}

#[test]
fn spmd_combined_estimates_cover_truth() {
    let (stream, truth) = workload(1.5);
    for width in [1usize, 2, 4] {
        let shards = round_robin_shards(&stream, width);
        let (group, _) = SpmdGroup::ingest(&shards, |i| {
            AsketchBuilder {
                total_bytes: 32 * 1024,
                seed: 100 + i as u64,
                ..Default::default()
            }
            .build_count_min()
            .unwrap()
        });
        for (key, t) in truth.top_k(64) {
            let est = group.estimate(key);
            assert!(est >= t, "width {width}: combined {est} < true {t}");
        }
    }
}

#[test]
fn spmd_width_one_equals_sequential_asketch() {
    let (stream, truth) = workload(1.2);
    let build = || {
        AsketchBuilder {
            total_bytes: 32 * 1024,
            seed: 100,
            ..Default::default()
        }
        .build_count_min()
        .unwrap()
    };
    let shards = round_robin_shards(&stream, 1);
    let (group, _) = SpmdGroup::ingest(&shards, |_| build());
    let mut seq = build();
    for &k in &stream {
        seq.insert(k);
    }
    for (key, _) in truth.top_k(100) {
        assert_eq!(group.estimate(key), seq.estimate(key));
    }
}

#[test]
fn pipeline_filter_converges_to_heavy_hitters() {
    let (stream, truth) = workload(1.5);
    let mut pipe = PipelineASketch::spawn(
        RelaxedHeapFilter::new(16),
        CountMin::with_byte_budget(9, 8, 31 * 1024).unwrap(),
    );
    for &k in &stream {
        pipe.insert(k);
    }
    // Drain outstanding promotions.
    let _ = pipe.estimate(0);
    let (filter, _) = pipe.finish();
    let resident: std::collections::HashSet<u64> =
        filter.items().into_iter().map(|it| it.key).collect();
    let true_top: Vec<u64> = truth.top_k(16).into_iter().map(|(k, _)| k).collect();
    let captured = true_top.iter().filter(|k| resident.contains(k)).count();
    assert!(
        captured >= 12,
        "filter captured only {captured}/16 true heavy hitters"
    );
}
