//! Turnstile-stream integration tests (paper Appendix A): deletions routed
//! through the filter's two-counter bookkeeping must keep estimates
//! one-sided as long as no key's total ever goes negative.

use asketch::filter::FilterKind;
use asketch::AsketchBuilder;
use sketches::{CountMin, FrequencyEstimator};
use streamgen::StreamSpec;

/// Build a strict turnstile stream: inserts drawn from a Zipf stream, and
/// deletions that only retract previously inserted mass.
fn turnstile(len: usize, seed: u64) -> (Vec<(u64, i64)>, std::collections::HashMap<u64, i64>) {
    let spec = StreamSpec {
        len,
        distinct: 5_000,
        skew: 1.2,
        seed,
    };
    let keys = spec.materialize();
    let mut live: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    let mut ops = Vec::with_capacity(len + len / 4);
    let mut x = seed | 1;
    for &k in &keys {
        ops.push((k, 1));
        *live.entry(k).or_insert(0) += 1;
        // Occasionally retract one unit of something still live.
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        if x.is_multiple_of(5) {
            if let Some((&dk, _)) = live.iter().find(|(_, &c)| c > 0) {
                ops.push((dk, -1));
                *live.get_mut(&dk).unwrap() -= 1;
            }
        }
    }
    live.retain(|_, c| *c != 0);
    (ops, live)
}

#[test]
fn count_min_turnstile_one_sided() {
    let (ops, live) = turnstile(50_000, 17);
    let mut cms = CountMin::with_byte_budget(17, 8, 32 * 1024).unwrap();
    for &(k, u) in &ops {
        cms.update(k, u);
    }
    for (&k, &c) in &live {
        assert!(cms.estimate(k) >= c, "CMS under-counts {k} after deletions");
    }
}

#[test]
fn asketch_turnstile_one_sided_every_filter() {
    let (ops, live) = turnstile(50_000, 23);
    for kind in FilterKind::ALL {
        let mut ask = AsketchBuilder {
            total_bytes: 32 * 1024,
            filter_kind: kind,
            seed: 23,
            ..Default::default()
        }
        .build_count_min()
        .unwrap();
        for &(k, u) in &ops {
            ask.update(k, u);
        }
        for (&k, &c) in &live {
            let est = ask.estimate(k);
            assert!(
                est >= c,
                "{}: estimate {est} < live count {c} for key {k}",
                kind.name()
            );
        }
    }
}

#[test]
fn full_retraction_drives_heavy_item_to_its_floor() {
    let mut ask = AsketchBuilder {
        total_bytes: 32 * 1024,
        seed: 31,
        ..Default::default()
    }
    .build_count_min()
    .unwrap();
    for _ in 0..1_000 {
        ask.insert(42);
    }
    assert_eq!(ask.estimate(42), 1_000);
    ask.delete(42, 1_000);
    assert_eq!(ask.estimate(42), 0, "fully retracted item must read zero");
}

#[test]
fn interleaved_insert_delete_matches_running_truth() {
    // A heavy key oscillates; the filter-resident estimate must stay exact
    // because the key never leaves the filter.
    let mut ask = AsketchBuilder::default().build_count_min().unwrap();
    let mut truth = 0i64;
    let mut x = 7u64;
    for _ in 0..10_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
        if x.is_multiple_of(3) && truth > 0 {
            ask.delete(99, 1);
            truth -= 1;
        } else {
            ask.insert(99);
            truth += 1;
        }
        assert_eq!(ask.estimate(99), truth);
    }
}
