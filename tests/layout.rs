//! Differential property suite for the cache-line-blocked backend
//! (DESIGN.md §11): one-sidedness at both cell widths, exact
//! batch == scalar equivalence, and exact agreement with a sequential
//! reference through all three execution modes — the sequential builder,
//! the two-stage pipeline, and the sharded concurrent runtime (the latter
//! across every filter kind).

use proptest::collection::vec;
use proptest::prelude::*;

use asketch::filter::{
    Filter, FilterKind, RelaxedHeapFilter, StreamSummaryFilter, StrictHeapFilter, VectorFilter,
};
use asketch::{ASketch, AsketchBuilder};
use asketch_parallel::{ConcurrentASketch, ConcurrentConfig, PipelineASketch};
use sketches::{BlockedCountMin, BlockedCountMin32, FrequencyEstimator};

fn truth_of(keys: &[u64]) -> std::collections::HashMap<u64, i64> {
    let mut t = std::collections::HashMap::new();
    for &k in keys {
        *t.entry(k).or_insert(0i64) += 1;
    }
    t
}

fn blocked_builder(kind: FilterKind) -> AsketchBuilder {
    AsketchBuilder {
        total_bytes: 8 * 1024,
        filter_items: 8,
        filter_kind: kind,
        seed: 7,
        ..Default::default()
    }
}

/// Exact-equality differential against the concurrent runtime: the same
/// blocked kernels fed each key class in stream order must answer exactly
/// what the runtime answers after a `sync` barrier.
fn assert_concurrent_exact<F>(make_filter: impl Fn() -> F, stream: &[u64]) -> Result<(), String>
where
    F: Filter + Clone + Send + 'static,
{
    const SHARDS: usize = 2;
    let make_kernel = |shard: usize| {
        ASketch::new(
            make_filter(),
            BlockedCountMin::new(shard as u64, 4, 256).unwrap(),
        )
    };
    let cfg = ConcurrentConfig {
        shards: SHARDS,
        batch: 32,
        publish_interval: 128,
        view_interval: 512,
        ..ConcurrentConfig::default()
    };
    let mut rt = ConcurrentASketch::spawn(cfg, make_kernel);
    let partition = rt.partition();
    rt.insert_batch(stream);
    rt.sync();

    let mut reference: Vec<_> = (0..SHARDS).map(make_kernel).collect();
    for &k in stream {
        reference[partition.shard_of(k)].insert(k);
    }
    let handle = rt.query_handle();
    for &k in truth_of(stream).keys() {
        let expect = reference[partition.shard_of(k)].estimate(k);
        if handle.estimate(k) != expect {
            return Err(format!("handle diverged from sequential for key {k}"));
        }
        if rt.estimate(k) != expect {
            return Err(format!("dispatcher diverged from sequential for key {k}"));
        }
    }
    rt.finish();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_never_undercounts_either_cell_width(
        keys in vec(0u64..500, 1..2_000),
        depth in 1usize..8,
    ) {
        let mut wide = BlockedCountMin::new(11, depth, 64).unwrap();
        let mut narrow = BlockedCountMin32::new(11, depth, 64).unwrap();
        for &k in &keys {
            wide.insert(k);
            narrow.insert(k);
        }
        for (&k, &t) in &truth_of(&keys) {
            prop_assert!(wide.estimate(k) >= t, "i64 cells under-count key {}", k);
            prop_assert!(narrow.estimate(k) >= t, "i32 cells under-count key {}", k);
        }
    }

    #[test]
    fn blocked_batch_is_exactly_scalar(
        ops in vec((0u64..150, -3i64..8), 1..1_200),
        batch in 1usize..300,
    ) {
        let mut scalar = BlockedCountMin::new(13, 4, 64).unwrap();
        let mut batched = BlockedCountMin::new(13, 4, 64).unwrap();
        for &(k, u) in &ops {
            scalar.update(k, u);
        }
        for part in ops.chunks(batch) {
            batched.update_batch(part);
        }
        for k in 0u64..150 {
            prop_assert_eq!(scalar.estimate(k), batched.estimate(k), "key {}", k);
        }
    }

    #[test]
    fn asketch_blocked_batch_is_exactly_scalar(
        ops in vec((0u64..150, -3i64..8), 1..1_200),
        batch in 1usize..300,
        kind_idx in 0usize..4,
    ) {
        // Sequential-builder execution mode: the blocked backend behind
        // every filter kind, batched hot path vs the scalar loop.
        let builder = blocked_builder(FilterKind::ALL[kind_idx]);
        let mut scalar = builder.build_blocked().unwrap();
        let mut batched = builder.build_blocked().unwrap();
        for &(k, u) in &ops {
            scalar.update(k, u);
        }
        for part in ops.chunks(batch) {
            batched.update_batch(part);
        }
        prop_assert_eq!(scalar.stats(), batched.stats());
        for k in 0u64..150 {
            prop_assert_eq!(scalar.estimate(k), batched.estimate(k), "key {}", k);
        }
    }

    #[test]
    fn blocked_one_sided_through_pipeline(keys in vec(0u64..300, 1..2_000)) {
        // Pipeline execution mode: exchange timing differs from the
        // sequential schedule (stages run asynchronously), so estimates may
        // differ from the sequential ASketch's — but one-sidedness must
        // hold at the handle and on the finished sketch alike.
        let mk = || BlockedCountMin::new(5, 4, 128).unwrap();
        let mut seq = ASketch::new(RelaxedHeapFilter::new(8), mk());
        let mut pipe = PipelineASketch::spawn(RelaxedHeapFilter::new(8), mk());
        for &k in &keys {
            seq.insert(k);
            pipe.insert(k);
        }
        let truth = truth_of(&keys);
        for (&k, &t) in &truth {
            prop_assert!(seq.estimate(k) >= t, "sequential under-counts key {}", k);
            prop_assert!(pipe.estimate(k) >= t, "pipeline under-counts key {}", k);
        }
        let (filter, sketch) = pipe.finish();
        for (&k, &t) in &truth {
            let drained = filter.query(k).unwrap_or(0) + sketch.estimate(k);
            prop_assert!(drained >= t, "finished pipeline under-counts key {}", k);
        }
    }
}

proptest! {
    // Thread spawns per case: keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn blocked_exact_through_concurrent_runtime(
        keys in vec(0u64..400, 50..3_000),
        kind_idx in 0usize..4,
    ) {
        // Concurrent execution mode, every filter kind x blocked backend.
        match FilterKind::ALL[kind_idx] {
            FilterKind::Vector => assert_concurrent_exact(|| VectorFilter::new(8), &keys),
            FilterKind::StrictHeap => assert_concurrent_exact(|| StrictHeapFilter::new(8), &keys),
            FilterKind::RelaxedHeap => {
                assert_concurrent_exact(|| RelaxedHeapFilter::new(8), &keys)
            }
            FilterKind::StreamSummary => {
                assert_concurrent_exact(|| StreamSummaryFilter::new(8), &keys)
            }
        }
        .map_err(TestCaseError::fail)?;
    }
}
