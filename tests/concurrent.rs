//! Differential tests for the concurrent sharded runtime: after a `sync`
//! barrier, every per-key answer must be *exactly* what the sequential
//! ASketch fed that key's sub-stream would return — for every filter kind
//! and both sketch backends — and mid-ingest snapshot reads must stay
//! one-sided (never above the true final count on insert-only streams) and
//! never regress behind the last published epoch.

use asketch::filter::{
    Filter, RelaxedHeapFilter, StreamSummaryFilter, StrictHeapFilter, VectorFilter,
};
use asketch::ASketch;
use asketch_parallel::{ConcurrentASketch, ConcurrentConfig, FaultPlan, FaultyEstimator};
use sketches::{CountMin, Fcm, SharedView, UpdateEstimate};
use streamgen::{ExactCounter, StreamSpec};

const FILTER_ITEMS: usize = 24;
const SHARDS: usize = 3;

fn workload(len: usize, distinct: u64, skew: f64) -> (Vec<u64>, ExactCounter) {
    let spec = StreamSpec {
        len,
        distinct,
        skew,
        seed: 0xC0C0_2026,
    };
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);
    (stream, truth)
}

fn small_config(shards: usize) -> ConcurrentConfig {
    ConcurrentConfig {
        shards,
        batch: 64,
        publish_interval: 256,
        view_interval: 1024,
        ..ConcurrentConfig::default()
    }
}

/// The core differential check: run the concurrent runtime and a per-shard
/// sequential reference over the same stream, then demand exact per-key
/// equality for every distinct key — through the wait-free handle, through
/// the dispatcher, and on the finished kernels.
fn assert_exactly_sequential<F, S>(make_kernel: impl Fn(usize) -> ASketch<F, S> + Copy)
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    let (stream, truth) = workload(60_000, 8_000, 1.2);

    let mut rt = ConcurrentASketch::spawn(small_config(SHARDS), make_kernel);
    let partition = rt.partition();
    rt.insert_batch(&stream);
    rt.sync();

    // Sequential reference: the exact same kernels fed each key class in
    // stream order, one at a time.
    let mut reference: Vec<ASketch<F, S>> = (0..SHARDS).map(make_kernel).collect();
    for &k in &stream {
        reference[partition.shard_of(k)].insert(k);
    }

    let handle = rt.query_handle();
    for (key, _) in truth.iter() {
        let expect = reference[partition.shard_of(key)].estimate(key);
        assert_eq!(
            handle.estimate(key),
            expect,
            "handle diverged from sequential for key {key}"
        );
        assert_eq!(
            rt.estimate(key),
            expect,
            "dispatcher diverged from sequential for key {key}"
        );
    }

    let finished = rt.finish();
    for (key, _) in truth.iter() {
        let expect = reference[partition.shard_of(key)].estimate(key);
        assert_eq!(
            finished[partition.shard_of(key)].estimate(key),
            expect,
            "finished kernel diverged for key {key}"
        );
    }
}

fn cms(seed: u64) -> CountMin {
    CountMin::with_byte_budget(seed, 4, 64 * 1024).unwrap()
}

fn fcm(seed: u64) -> Fcm {
    // mg_capacity = None: the ASketch front filter plays the high-frequency
    // detector, and the shared view is exact in this configuration.
    Fcm::with_byte_budget(seed, 4, 64 * 1024, None).unwrap()
}

#[test]
fn vector_filter_count_min_is_exactly_sequential() {
    assert_exactly_sequential(|i| ASketch::new(VectorFilter::new(FILTER_ITEMS), cms(7 ^ i as u64)));
}

#[test]
fn strict_heap_filter_count_min_is_exactly_sequential() {
    assert_exactly_sequential(|i| {
        ASketch::new(StrictHeapFilter::new(FILTER_ITEMS), cms(11 ^ i as u64))
    });
}

#[test]
fn relaxed_heap_filter_count_min_is_exactly_sequential() {
    assert_exactly_sequential(|i| {
        ASketch::new(RelaxedHeapFilter::new(FILTER_ITEMS), cms(13 ^ i as u64))
    });
}

#[test]
fn stream_summary_filter_count_min_is_exactly_sequential() {
    assert_exactly_sequential(|i| {
        ASketch::new(StreamSummaryFilter::new(FILTER_ITEMS), cms(17 ^ i as u64))
    });
}

#[test]
fn vector_filter_fcm_is_exactly_sequential() {
    assert_exactly_sequential(|i| {
        ASketch::new(VectorFilter::new(FILTER_ITEMS), fcm(19 ^ i as u64))
    });
}

#[test]
fn strict_heap_filter_fcm_is_exactly_sequential() {
    assert_exactly_sequential(|i| {
        ASketch::new(StrictHeapFilter::new(FILTER_ITEMS), fcm(23 ^ i as u64))
    });
}

#[test]
fn relaxed_heap_filter_fcm_is_exactly_sequential() {
    assert_exactly_sequential(|i| {
        ASketch::new(RelaxedHeapFilter::new(FILTER_ITEMS), fcm(29 ^ i as u64))
    });
}

#[test]
fn stream_summary_filter_fcm_is_exactly_sequential() {
    assert_exactly_sequential(|i| {
        ASketch::new(StreamSummaryFilter::new(FILTER_ITEMS), fcm(31 ^ i as u64))
    });
}

/// Differential check for the grouped `estimate_batch` path: the batch
/// answer must be exactly the naive per-key answer, in query order, with
/// duplicates, absent keys, and shard-interleaved order all preserved —
/// grouping by shard is a routing optimization, never a semantic change.
fn assert_batch_matches_pointwise<F, S>(make_kernel: impl Fn(usize) -> ASketch<F, S> + Copy)
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    let (stream, truth) = workload(30_000, 4_000, 1.2);
    let mut rt = ConcurrentASketch::spawn(small_config(SHARDS), make_kernel);
    rt.insert_batch(&stream);
    rt.sync();
    let handle = rt.query_handle();

    // Shard-interleaved query order with duplicates and absent keys.
    let mut queries: Vec<u64> = truth.iter().map(|(k, _)| k).take(1_000).collect();
    let dup = queries.clone();
    queries.extend(dup);
    queries.push(u64::MAX);
    queries.push(0);

    let batched = handle.estimate_batch(&queries);
    assert_eq!(batched.len(), queries.len(), "one answer per query slot");
    for (slot, &key) in queries.iter().enumerate() {
        assert_eq!(
            batched[slot],
            handle.estimate(key),
            "grouped batch diverged from the per-key path at slot {slot} (key {key})"
        );
    }

    // The tiny-batch fast path answers identically too.
    for chunk in queries.chunks(2).take(64) {
        let small = handle.estimate_batch(chunk);
        for (i, &key) in chunk.iter().enumerate() {
            assert_eq!(small[i], handle.estimate(key), "fast path diverged");
        }
    }
    assert!(handle.estimate_batch(&[]).is_empty());
}

#[test]
fn estimate_batch_is_order_preserving_vector_filter() {
    assert_batch_matches_pointwise(|i| {
        ASketch::new(VectorFilter::new(FILTER_ITEMS), cms(43 ^ i as u64))
    });
}

#[test]
fn estimate_batch_is_order_preserving_strict_heap_filter() {
    assert_batch_matches_pointwise(|i| {
        ASketch::new(StrictHeapFilter::new(FILTER_ITEMS), cms(47 ^ i as u64))
    });
}

#[test]
fn estimate_batch_is_order_preserving_relaxed_heap_filter() {
    assert_batch_matches_pointwise(|i| {
        ASketch::new(RelaxedHeapFilter::new(FILTER_ITEMS), cms(53 ^ i as u64))
    });
}

#[test]
fn estimate_batch_is_order_preserving_stream_summary_filter() {
    assert_batch_matches_pointwise(|i| {
        ASketch::new(StreamSummaryFilter::new(FILTER_ITEMS), cms(59 ^ i as u64))
    });
}

/// `top_k` over the published filters: after sync, the returned counts
/// must equal the per-key answers, be sorted descending (ties by key
/// ascending), and contain no duplicate keys (each key is owned by exactly
/// one shard).
#[test]
fn top_k_is_sorted_exact_and_duplicate_free() {
    let (stream, _) = workload(30_000, 4_000, 1.2);
    let mut rt = ConcurrentASketch::spawn(small_config(SHARDS), |i| {
        ASketch::new(VectorFilter::new(FILTER_ITEMS), cms(61 ^ i as u64))
    });
    rt.insert_batch(&stream);
    rt.sync();
    let handle = rt.query_handle();
    let top = handle.top_k(16);
    assert!(!top.is_empty(), "hot keys must populate the filters");
    assert!(top.len() <= 16);
    let mut seen = std::collections::HashSet::new();
    for pair in top.windows(2) {
        assert!(
            pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
            "top-k order violated: {pair:?}"
        );
    }
    for &(key, count) in &top {
        assert!(seen.insert(key), "duplicate key {key} across shards");
        assert_eq!(
            count,
            handle.estimate(key),
            "top-k count diverges from the point query for {key}"
        );
    }
}

/// Staleness contract on an insert-only stream: a snapshot read never
/// under-reports the last published epoch's state for a hot key (reads are
/// monotone across publishes), and never over-reports the true final count
/// (one-sidedness holds mid-ingest, not just at the end).
#[test]
fn mid_ingest_reads_are_monotone_and_one_sided() {
    // One shard and a sketch wide enough to be collision-free at this key
    // count, so "one-sided" tightens to "bounded by the exact truth".
    let (stream, truth) = workload(40_000, 512, 1.1);
    let cfg = ConcurrentConfig {
        shards: 1,
        batch: 32,
        publish_interval: 64,
        view_interval: 256,
        ..ConcurrentConfig::default()
    };
    let mut rt = ConcurrentASketch::spawn(cfg, |_| {
        ASketch::new(
            VectorFilter::new(FILTER_ITEMS),
            CountMin::with_byte_budget(41, 4, 1 << 20).unwrap(),
        )
    });
    let handle = rt.query_handle();
    let hot = truth.top_k(1)[0].0;
    let total = truth.count(hot);

    let mut last_seen = 0i64;
    let mut last_epoch = 0u64;
    for chunk in stream.chunks(512) {
        rt.insert_batch(chunk);
        let epoch = handle.min_filter_epoch();
        let read = handle.estimate(hot);
        assert!(
            read <= total,
            "mid-ingest read {read} exceeds true final count {total}"
        );
        if epoch > last_epoch {
            assert!(
                read >= last_seen,
                "read {read} regressed below {last_seen} across publish \
                 epochs {last_epoch} -> {epoch}"
            );
            last_epoch = epoch;
            last_seen = read;
        }
    }
    rt.sync();
    assert_eq!(handle.estimate(hot), total, "post-sync read must be exact");
}

/// A worker panic mid-stream must be invisible in the answers: the journal
/// replays the lost batches into a restored kernel, and post-sync queries
/// still match the clean sequential reference exactly.
#[test]
fn worker_restart_preserves_exact_per_key_answers() {
    let (stream, truth) = workload(30_000, 4_000, 1.2);
    let make_faulty = |i: usize| {
        let plan = if i == 1 {
            FaultPlan::panic_at(2_000).with_message("injected shard fault")
        } else {
            FaultPlan::default()
        };
        ASketch::new(
            VectorFilter::new(FILTER_ITEMS),
            FaultyEstimator::new(cms(37 ^ i as u64), plan),
        )
    };

    let mut rt = ConcurrentASketch::spawn(small_config(SHARDS), make_faulty);
    let partition = rt.partition();
    rt.insert_batch(&stream);
    rt.sync();

    let health = rt.health();
    assert!(
        health.total_restarts() >= 1,
        "fault plan never fired; the test is vacuous"
    );
    assert!(
        !health.any_degraded(),
        "restart budget must absorb one panic"
    );

    let mut reference: Vec<ASketch<VectorFilter, CountMin>> = (0..SHARDS)
        .map(|i| ASketch::new(VectorFilter::new(FILTER_ITEMS), cms(37 ^ i as u64)))
        .collect();
    for &k in &stream {
        reference[partition.shard_of(k)].insert(k);
    }
    for (key, _) in truth.iter() {
        let expect = reference[partition.shard_of(key)].estimate(key);
        assert_eq!(
            rt.estimate(key),
            expect,
            "post-restart answer diverged for key {key}"
        );
    }
}
