//! Chaos suite: drives the supervised parallel runtimes through injected
//! worker panics, full queues, estimate timeouts, and wedged teardowns, and
//! checks that the paper's guarantees survive every fault:
//!
//! * no fault ever reaches the caller as a panic;
//! * estimates stay one-sided (`estimate >= true count`);
//! * heavy-hitter recall matches the sequential `ASketch` within tolerance;
//! * faults are observable through `PipelineStats` / `RuntimeHealth`;
//! * teardown is bounded even with a wedged worker.

use std::time::{Duration, Instant};

use asketch::filter::RelaxedHeapFilter;
use asketch::ASketch;
use asketch_parallel::{
    round_robin_shards, BackpressurePolicy, FaultPlan, FaultyEstimator, PipelineASketch,
    PipelineHUdaf, SpmdGroup, SupervisionConfig,
};
use sketches::{CountMin, FrequencyEstimator};
use streamgen::{ExactCounter, StreamSpec};

fn workload() -> (Vec<u64>, ExactCounter) {
    let spec = StreamSpec {
        len: 60_000,
        distinct: 10_000,
        skew: 1.5,
        seed: 0xC7A05EED,
    };
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);
    (stream, truth)
}

fn cms() -> CountMin {
    CountMin::with_byte_budget(3, 8, 31 * 1024).unwrap()
}

/// Top-`k` recall of `estimate` against the exact counts: the fraction of
/// the true top-`k` keys that rank in the predicted top-`k`.
fn top_k_recall(truth: &ExactCounter, k: usize, mut estimate: impl FnMut(u64) -> i64) -> f64 {
    let true_top: Vec<u64> = truth.top_k(k).into_iter().map(|(key, _)| key).collect();
    let mut predicted: Vec<(u64, i64)> =
        truth.iter().map(|(key, _)| (key, estimate(key))).collect();
    predicted.sort_by_key(|&(_, est)| std::cmp::Reverse(est));
    let predicted_top: Vec<u64> = predicted.iter().take(k).map(|&(key, _)| key).collect();
    let hits = true_top
        .iter()
        .filter(|key| predicted_top.contains(key))
        .count();
    hits as f64 / k as f64
}

/// A worker panic mid-stream with a zero restart budget: the pipeline must
/// report the fault, degrade, keep counting, and end with estimates that
/// are one-sided and as good as the sequential algorithm's.
#[test]
fn pipeline_survives_midstream_panic_in_degraded_mode() {
    let (stream, truth) = workload();

    let mut seq = ASketch::new(RelaxedHeapFilter::new(32), cms());
    for &k in &stream {
        seq.insert(k);
    }

    let cfg = SupervisionConfig {
        queue_capacity: 64,
        checkpoint_interval: 256,
        max_restarts: 0, // first fault degrades immediately
        ..SupervisionConfig::default()
    };
    let faulty = FaultyEstimator::new(cms(), FaultPlan::panic_at(500).with_message("chaos panic"));
    let mut pipe = PipelineASketch::spawn_with(RelaxedHeapFilter::new(32), faulty, cfg);
    for &k in &stream {
        pipe.insert(k); // must never panic the caller
    }

    let stats = pipe.stats();
    assert!(
        stats.worker_failures >= 1,
        "fault must be counted: {stats:?}"
    );
    assert!(stats.degraded, "restart budget 0 must degrade");
    assert!(stats.inline_updates > 0, "degraded mode must keep counting");
    let health = pipe.health();
    assert!(health.degraded);
    assert!(
        health
            .last_error
            .as_deref()
            .unwrap_or("")
            .contains("chaos panic"),
        "panic payload must surface: {:?}",
        health.last_error
    );

    for (key, t) in truth.top_k(64) {
        let est = pipe.estimate(key);
        assert!(est >= t, "one-sidedness lost after panic: {est} < {t}");
    }
    let seq_recall = top_k_recall(&truth, 16, |k| seq.estimate(k));
    let chaos_recall = top_k_recall(&truth, 16, |k| pipe.estimate(k));
    assert!(
        chaos_recall >= seq_recall - 0.2,
        "recall collapsed after fault: chaos {chaos_recall} vs sequential {seq_recall}"
    );
}

/// Same mid-stream panic but with restart budget: the worker is respawned
/// from checkpoint + journal, the pipeline stays in parallel mode, and no
/// mass is lost or double-counted.
#[test]
fn pipeline_restarts_worker_after_panic() {
    let (stream, truth) = workload();
    let cfg = SupervisionConfig {
        queue_capacity: 64,
        checkpoint_interval: 256,
        max_restarts: 3,
        restart_backoff: Duration::from_millis(1),
        ..SupervisionConfig::default()
    };
    let faulty = FaultyEstimator::new(cms(), FaultPlan::panic_at(500));
    let mut pipe = PipelineASketch::spawn_with(RelaxedHeapFilter::new(32), faulty, cfg);
    for &k in &stream {
        pipe.insert(k);
    }
    let stats = pipe.stats();
    assert!(stats.worker_failures >= 1);
    assert!(stats.restarts >= 1, "worker must be respawned: {stats:?}");
    assert!(!stats.degraded, "restart budget must keep parallel mode");
    for (key, t) in truth.top_k(64) {
        let est = pipe.estimate(key);
        assert!(est >= t, "restart lost mass for {key}: {est} < {t}");
    }
    // The journal replays exactly what the lost worker had not checkpointed,
    // so heavy hitters stay as accurate as a fault-free sequential run.
    let mut seq = ASketch::new(RelaxedHeapFilter::new(32), cms());
    for &k in &stream {
        seq.insert(k);
    }
    let seq_recall = top_k_recall(&truth, 16, |k| seq.estimate(k));
    let chaos_recall = top_k_recall(&truth, 16, |k| pipe.estimate(k));
    assert!(chaos_recall >= seq_recall - 0.2);
}

/// Slow worker under `Block`: the bounded queue fills (observable), the
/// caller waits, nothing spills, nothing is dropped.
#[test]
fn slow_worker_blocking_backpressure_drops_nothing() {
    let cfg = SupervisionConfig {
        queue_capacity: 8,
        backpressure: BackpressurePolicy::Block,
        checkpoint_interval: 64,
        ..SupervisionConfig::default()
    };
    let slow = FaultyEstimator::new(
        cms(),
        FaultPlan::slow_updates(1, Duration::from_micros(200)),
    );
    let mut pipe = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), slow, cfg);
    // Heavy residents pin the filter minimum high so every distinct key
    // below is forwarded to the (slow) worker.
    for _ in 0..1_000 {
        pipe.insert(1);
        pipe.insert(2);
    }
    for i in 0..2_000u64 {
        pipe.insert(10_000 + i % 50);
    }
    let stats = pipe.stats();
    assert!(stats.queue_full_events > 0, "queue must fill: {stats:?}");
    assert_eq!(stats.spilled, 0, "Block policy must not spill");
    assert!(!stats.degraded);
    for i in 0..50u64 {
        let est = pipe.estimate(10_000 + i);
        assert!(est >= 40, "update dropped under backpressure: {est} < 40");
    }
}

/// Slow worker under `InlineFallback`: the caller spills into its bounded
/// buffer instead of stalling, and every spilled update still lands.
#[test]
fn slow_worker_inline_fallback_spills_without_loss() {
    let cfg = SupervisionConfig {
        queue_capacity: 8,
        backpressure: BackpressurePolicy::InlineFallback,
        spill_capacity: 128,
        checkpoint_interval: 64,
        ..SupervisionConfig::default()
    };
    let slow = FaultyEstimator::new(
        cms(),
        FaultPlan::slow_updates(1, Duration::from_micros(200)),
    );
    let mut pipe = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), slow, cfg);
    for _ in 0..1_000 {
        pipe.insert(1);
        pipe.insert(2);
    }
    for i in 0..2_000u64 {
        pipe.insert(10_000 + i % 50);
    }
    let stats = pipe.stats();
    assert!(stats.queue_full_events > 0);
    assert!(stats.spilled > 0, "fallback policy must spill: {stats:?}");
    assert!(!stats.degraded);
    for i in 0..50u64 {
        let est = pipe.estimate(10_000 + i);
        assert!(est >= 40, "spilled update lost: {est} < 40");
    }
    // After finish, filter + sketch together still cover everything.
    let (filter, sketch) = pipe.finish();
    use asketch::filter::Filter;
    let covered = filter.query(1).unwrap_or_else(|| sketch.estimate(1));
    assert!(covered >= 1_000);
}

/// Estimate round trips against a worker that answers too slowly: the
/// timeout fires (observable), the runtime fails over, and the query is
/// still answered one-sidedly.
#[test]
fn estimate_timeout_fails_over_and_still_answers() {
    let cfg = SupervisionConfig {
        queue_capacity: 64,
        checkpoint_interval: 64,
        estimate_timeout: Duration::from_millis(20),
        estimate_retries: 1,
        max_restarts: 0,
        ..SupervisionConfig::default()
    };
    let mut plan = FaultPlan::slow_estimates(Duration::from_millis(200));
    plan.rearm_on_clone = true; // stay slow across checkpoints
    let slow = FaultyEstimator::new(cms(), plan);
    let mut pipe = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), slow, cfg);
    for _ in 0..100 {
        pipe.insert(1);
        pipe.insert(2);
    }
    for i in 0..200u64 {
        pipe.insert(100 + i % 10);
    }
    let est = pipe.estimate(100); // round trip must not hang
    assert!(est >= 20, "estimate must cover all updates: {est}");
    let stats = pipe.stats();
    assert!(
        stats.estimate_timeouts >= 1,
        "timeout must be counted: {stats:?}"
    );
    assert!(
        stats.degraded,
        "timeout with no restart budget must degrade"
    );
}

/// The batched H-UDAF pipeline under a worker panic: journaled batches are
/// replayed, estimates stay one-sided.
#[test]
fn hudaf_pipeline_survives_worker_panic() {
    let (stream, truth) = workload();
    let cfg = SupervisionConfig {
        queue_capacity: 16,
        checkpoint_interval: 128,
        max_restarts: 2,
        restart_backoff: Duration::from_millis(1),
        ..SupervisionConfig::default()
    };
    let faulty = FaultyEstimator::new(cms(), FaultPlan::panic_at(300).with_message("hudaf chaos"));
    let mut p = PipelineHUdaf::spawn_with(faulty, 32, cfg);
    for &k in &stream {
        p.insert(k);
    }
    let stats = p.stats();
    assert!(
        stats.worker_failures >= 1,
        "panic must be observed: {stats:?}"
    );
    for (key, t) in truth.top_k(200) {
        let est = p.estimate(key);
        assert!(
            est >= t,
            "H-UDAF under-counts {key} after panic: {est} < {t}"
        );
    }
}

/// SPMD with a kernel that panics once on one shard: the shard is replayed
/// from scratch on a fresh kernel, the recovery is reported, and combined
/// estimates stay one-sided.
#[test]
fn spmd_contains_shard_panic_and_replays() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let (stream, truth) = workload();
    let shards = round_robin_shards(&stream, 4);
    let armed = AtomicBool::new(true);
    let (group, _nanos, report) = SpmdGroup::ingest_supervised(
        &shards,
        |i| {
            if i == 2 && armed.swap(false, Ordering::SeqCst) {
                panic!("spmd chaos");
            }
            CountMin::with_byte_budget(90 + i as u64, 8, 31 * 1024).unwrap()
        },
        3,
    )
    .expect("one transient shard fault must be recoverable");
    assert_eq!(report.recovered.len(), 1);
    assert_eq!(report.recovered[0].shard, 2);
    assert!(report.recovered[0].error.contains("spmd chaos"));
    for (key, t) in truth.top_k(64) {
        let est = group.estimate(key);
        assert!(est >= t, "SPMD under-counts {key} after recovery");
    }
}

/// Dropping a pipeline whose worker is wedged behind a long backlog must
/// return within the shutdown bound instead of hanging on the join.
#[test]
fn drop_with_wedged_worker_is_bounded() {
    let cfg = SupervisionConfig {
        queue_capacity: 16,
        checkpoint_interval: 1024,
        shutdown_timeout: Duration::from_millis(200),
        ..SupervisionConfig::default()
    };
    let wedged = FaultyEstimator::new(
        cms(),
        FaultPlan::slow_updates(1, Duration::from_millis(100)),
    );
    let mut pipe = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), wedged, cfg);
    for _ in 0..10 {
        pipe.insert(1);
        pipe.insert(2);
    }
    for i in 0..16u64 {
        pipe.insert(100 + i); // backlog: ~1.6s of worker time queued
    }
    let start = Instant::now();
    drop(pipe);
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "drop must be bounded, took {:?}",
        start.elapsed()
    );
}

/// The nastiest fail-over race: under `InlineFallback` the worker dies
/// while the caller-side spill is non-empty *and* restart budget remains.
/// The fail-over folds every journaled op — including the one in flight —
/// into the restored sketch handed to the new worker, so the in-flight
/// message must be abandoned, not re-sent. A collision-free Count-Min makes
/// the check exact: any double count (or loss) shifts the estimate.
#[test]
fn inline_fallback_spill_plus_panic_plus_restart_is_exactly_once() {
    let cfg = SupervisionConfig {
        queue_capacity: 4,
        backpressure: BackpressurePolicy::InlineFallback,
        spill_capacity: 8,
        checkpoint_interval: 16,
        max_restarts: 3,
        restart_backoff: Duration::from_millis(1),
        ..SupervisionConfig::default()
    };
    // Slow enough that the queue and spill fill, then a panic mid-drain;
    // clones (checkpoints, the restored snapshot) are healthy and fast.
    let plan = FaultPlan {
        panic_on_op: Some(100),
        delay_every: Some((1, Duration::from_micros(300))),
        panic_message: Some("spill chaos".to_string()),
        ..FaultPlan::default()
    };
    let faulty = FaultyEstimator::new(CountMin::new(7, 4, 1 << 12).unwrap(), plan);
    let mut pipe = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), faulty, cfg);
    // Heavy residents pin the filter minimum far above key 3's count, so
    // every insert of 3 is forwarded and none is ever promoted back.
    for _ in 0..1_000 {
        pipe.insert(1);
        pipe.insert(2);
    }
    for _ in 0..400 {
        pipe.insert(3);
    }
    let est = pipe.estimate(3);
    assert_eq!(
        est, 400,
        "restore + replay must be exactly-once across a restart with a live spill"
    );
    let stats = pipe.stats();
    assert!(stats.spilled > 0, "spill path must be exercised: {stats:?}");
    assert!(
        stats.worker_failures >= 1,
        "panic must be observed: {stats:?}"
    );
    assert!(
        stats.restarts >= 1,
        "restart budget must be used: {stats:?}"
    );
    assert!(!stats.degraded, "restart budget not exhausted: {stats:?}");
    let health = pipe.health();
    assert!(
        health
            .last_error
            .as_deref()
            .unwrap_or("")
            .contains("spill chaos"),
        "panic payload must surface: {:?}",
        health.last_error
    );
}

/// Same race on the batched H-UDAF pipeline: a batch journaled but not yet
/// shipped when the worker dies must not be applied on top of the restored
/// sketch that already contains it.
#[test]
fn hudaf_spill_plus_panic_plus_restart_is_exactly_once() {
    let cfg = SupervisionConfig {
        queue_capacity: 4,
        backpressure: BackpressurePolicy::InlineFallback,
        spill_capacity: 8,
        checkpoint_interval: 8,
        max_restarts: 2,
        restart_backoff: Duration::from_millis(1),
        ..SupervisionConfig::default()
    };
    let plan = FaultPlan {
        panic_on_op: Some(60),
        delay_every: Some((1, Duration::from_micros(200))),
        panic_message: Some("hudaf spill chaos".to_string()),
        ..FaultPlan::default()
    };
    let faulty = FaultyEstimator::new(CountMin::new(3, 4, 1 << 12).unwrap(), plan);
    let mut p = PipelineHUdaf::spawn_with(faulty, 2, cfg);
    for i in 0..600u64 {
        p.insert(i % 5); // 5 keys through a 2-slot table: constant flushes
    }
    for key in 0..5u64 {
        let est = p.estimate(key);
        assert_eq!(est, 120, "batch double-counted or lost for key {key}");
    }
    let stats = p.stats();
    assert!(stats.spilled > 0, "spill path must be exercised: {stats:?}");
    assert!(
        stats.worker_failures >= 1,
        "panic must be observed: {stats:?}"
    );
    assert!(
        stats.restarts >= 1,
        "restart budget must be used: {stats:?}"
    );
    assert!(!stats.degraded, "restart budget not exhausted: {stats:?}");
}

/// Zero- and negative-amount deletes are documented no-ops end to end.
#[test]
fn zero_amount_delete_is_noop_under_load() {
    let mut pipe = PipelineASketch::spawn(RelaxedHeapFilter::new(4), cms());
    for _ in 0..100 {
        pipe.insert(5);
    }
    pipe.delete(5, 0);
    pipe.delete(5, -3);
    pipe.delete(999, 0);
    assert_eq!(pipe.estimate(5), 100);
    assert_eq!(pipe.estimate(999), 0);
}
