//! SPMD parallelism (paper §6.3): every core runs a full summary as a
//! sequential *counting kernel* over its own input stream; point queries
//! are answered by combining the kernels' responses.
//!
//! Frequency counting is commutative, so the combine step is a plain sum —
//! the sum of per-kernel over-estimates is an over-estimate of the total
//! count, preserving the one-sided guarantee. This is the configuration of
//! the paper's Figure 13 (linear scaling of ASketch vs Count-Min kernels
//! with core count).
//!
//! # Fault containment
//!
//! A kernel panic is contained to its own shard: each shard thread runs its
//! kernel inside `catch_unwind` and, on panic, rebuilds a *fresh* kernel
//! and replays the whole shard from the start (the old kernel is discarded,
//! so retries can never double-count). [`SpmdGroup::ingest_supervised`]
//! bounds the attempts and reports per-shard recoveries in an
//! [`SpmdReport`]; a shard that keeps failing surfaces as
//! [`PipelineError::ShardFailed`] instead of poisoning the join.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sketches::traits::FrequencyEstimator;

use crate::supervisor::{panic_message, PipelineError};

/// Per-shard result of a supervised ingest: the finished kernel, the number
/// of attempts it took, and the last recovered panic payload (if any).
type ShardOutcome<K> = Result<(K, u32, Option<String>), PipelineError>;

/// Default attempts per shard used by [`SpmdGroup::ingest`]: one initial
/// run plus two retries.
pub const DEFAULT_SHARD_ATTEMPTS: u32 = 3;

/// One shard that panicked and was recovered by replaying from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecovery {
    /// Index of the shard.
    pub shard: usize,
    /// Attempts consumed before the shard completed (>= 2: the first
    /// attempt failed).
    pub attempts: u32,
    /// Panic message of the last failed attempt.
    pub error: String,
}

/// Outcome summary of a supervised SPMD ingest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpmdReport {
    /// Shards that panicked at least once and completed on a retry.
    pub recovered: Vec<ShardRecovery>,
}

impl SpmdReport {
    /// `true` when every shard completed on its first attempt.
    pub fn is_clean(&self) -> bool {
        self.recovered.is_empty()
    }
}

/// A group of independently fed counting kernels.
pub struct SpmdGroup<K> {
    kernels: Vec<K>,
}

impl<K: FrequencyEstimator + Send> SpmdGroup<K> {
    /// Feed `shards[i]` through a fresh kernel built by `make_kernel(i)`,
    /// one OS thread per shard, and collect the finished kernels.
    ///
    /// Returns the group and the wall-clock nanoseconds of the parallel
    /// ingest phase (all threads started together, measured to the last
    /// join), which is what the throughput experiments report.
    ///
    /// Shard panics are retried up to [`DEFAULT_SHARD_ATTEMPTS`] total
    /// attempts; use [`ingest_supervised`](Self::ingest_supervised) to pick
    /// the budget and observe recoveries.
    ///
    /// # Panics
    /// Panics if `shards` is empty, or if a shard exhausts its attempts.
    pub fn ingest<F>(shards: &[Vec<u64>], make_kernel: F) -> (Self, u128)
    where
        F: Fn(usize) -> K + Sync,
    {
        match Self::ingest_supervised(shards, make_kernel, DEFAULT_SHARD_ATTEMPTS) {
            Ok((group, nanos, _report)) => (group, nanos),
            Err(e) => panic!("SPMD ingest failed: {e}"),
        }
    }

    /// Supervised ingest: each shard gets up to `max_attempts` full runs
    /// (a fresh kernel per attempt, so partial state from a panicked run is
    /// never counted).
    ///
    /// On success returns the group, the parallel wall-clock nanoseconds,
    /// and a report of any shards that needed recovery.
    ///
    /// # Errors
    /// Returns [`PipelineError::ShardFailed`] for the first shard (by
    /// index) that panicked on every permitted attempt.
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn ingest_supervised<F>(
        shards: &[Vec<u64>],
        make_kernel: F,
        max_attempts: u32,
    ) -> Result<(Self, u128, SpmdReport), PipelineError>
    where
        F: Fn(usize) -> K + Sync,
    {
        assert!(!shards.is_empty(), "need at least one shard");
        Self::ingest_with(
            shards.len(),
            |i, kernel: &mut K| kernel.insert_batch(&shards[i]),
            make_kernel,
            max_attempts,
        )
    }

    /// Supervised ingest over a key-partitioned view of one shared stream
    /// (see [`hash_shards`]): shard `i`'s kernel consumes exactly the keys
    /// that hash to partition `i`, scanned out of the shared slice — no
    /// per-shard `Vec` materialization.
    ///
    /// Because every key lives on exactly one shard, per-key queries can
    /// skip the commutative sum: [`SpmdGroup::estimate_partitioned`] asks
    /// only the owning kernel and returns *exactly* what a sequential
    /// summary fed that key's sub-stream would.
    ///
    /// # Errors
    /// As [`SpmdGroup::ingest_supervised`].
    ///
    /// # Panics
    /// Panics if `shards` has zero partitions (prevented by construction).
    pub fn ingest_keyed<F>(
        shards: &KeyShards<'_>,
        make_kernel: F,
        max_attempts: u32,
    ) -> Result<(Self, u128, SpmdReport), PipelineError>
    where
        F: Fn(usize) -> K + Sync,
    {
        Self::ingest_with(
            shards.width(),
            |i, kernel: &mut K| {
                // Stage matching keys through a stack buffer so the tuned
                // batched kernels (prefetch ring) see full chunks.
                let mut buf = [0u64; 256];
                let mut n = 0usize;
                for key in shards.iter(i) {
                    buf[n] = key;
                    n += 1;
                    if n == buf.len() {
                        kernel.insert_batch(&buf);
                        n = 0;
                    }
                }
                kernel.insert_batch(&buf[..n]);
            },
            make_kernel,
            max_attempts,
        )
    }

    /// Shared engine of the supervised ingest variants: one OS thread per
    /// shard, each building a kernel with `make_kernel(i)` and running
    /// `feed(i, &mut kernel)` under `catch_unwind` with replay-from-scratch
    /// retries.
    fn ingest_with<Feed, F>(
        n_shards: usize,
        feed: Feed,
        make_kernel: F,
        max_attempts: u32,
    ) -> Result<(Self, u128, SpmdReport), PipelineError>
    where
        Feed: Fn(usize, &mut K) + Sync,
        F: Fn(usize) -> K + Sync,
    {
        assert!(n_shards > 0, "need at least one shard");
        let max_attempts = max_attempts.max(1);
        let start = std::time::Instant::now();
        let outcomes: Vec<ShardOutcome<K>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_shards)
                .map(|i| {
                    let make_kernel = &make_kernel;
                    let feed = &feed;
                    scope.spawn(move || {
                        let mut attempts = 0u32;
                        let mut last_error: Option<String> = None;
                        loop {
                            attempts += 1;
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                let mut kernel = make_kernel(i);
                                feed(i, &mut kernel);
                                kernel
                            }));
                            match run {
                                Ok(kernel) => return Ok((kernel, attempts, last_error)),
                                Err(payload) => {
                                    let msg = panic_message(payload);
                                    if attempts >= max_attempts {
                                        return Err(PipelineError::ShardFailed {
                                            shard: i,
                                            attempts,
                                            payload: msg,
                                        });
                                    }
                                    last_error = Some(msg);
                                }
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(i, h)| match h.join() {
                    Ok(outcome) => outcome,
                    // The closure catches kernel panics itself; a panic
                    // escaping it (e.g. in thread shutdown) still maps
                    // to a shard failure rather than poisoning us.
                    Err(payload) => Err(PipelineError::ShardFailed {
                        shard: i,
                        attempts: max_attempts,
                        payload: panic_message(payload),
                    }),
                })
                .collect()
        });
        let elapsed = start.elapsed().as_nanos();

        let mut kernels = Vec::with_capacity(n_shards);
        let mut report = SpmdReport::default();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok((kernel, attempts, last_error)) => {
                    kernels.push(kernel);
                    if attempts > 1 {
                        report.recovered.push(ShardRecovery {
                            shard: i,
                            attempts,
                            error: last_error.unwrap_or_default(),
                        });
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok((Self { kernels }, elapsed, report))
    }

    /// Combined point estimate: the sum of every kernel's answer
    /// (commutative combine, paper §6.3).
    pub fn estimate(&self, key: u64) -> i64 {
        self.kernels.iter().map(|k| k.estimate(key)).sum()
    }

    /// Combined batched point estimates: `out[i]` is the saturating sum of
    /// every kernel's answer for `keys[i]`.
    ///
    /// Routing the query phase through each kernel's `estimate_batch`
    /// (instead of a per-key `estimate` loop) lets kernels with tuned
    /// batched lookups — hoisted hashing, prefetch rings — keep those wins
    /// in the SPMD configuration, which is what the throughput benchmarks
    /// time.
    ///
    pub fn estimate_batch(&self, keys: &[u64]) -> Vec<i64> {
        let mut out = vec![0i64; keys.len()];
        for kernel in &self.kernels {
            for (acc, v) in out.iter_mut().zip(kernel.estimate_batch(keys)) {
                *acc = acc.saturating_add(v);
            }
        }
        out
    }

    /// Point estimate under key partitioning: ask only the kernel that owns
    /// `key` in `partition`.
    ///
    /// Valid only for groups built with [`SpmdGroup::ingest_keyed`] (or fed
    /// an equivalent key-disjoint split) using the same `partition`; then
    /// the answer is *exactly* the sequential summary's answer for that
    /// key's sub-stream — no summing of per-kernel over-estimates.
    ///
    /// # Panics
    /// Panics if `partition.shards() != self.width()`.
    pub fn estimate_partitioned(&self, partition: KeyPartition, key: u64) -> i64 {
        assert_eq!(
            partition.shards(),
            self.width(),
            "partition width must match kernel count"
        );
        self.kernels[partition.shard_of(key)].estimate(key)
    }

    /// Number of kernels in the group.
    pub fn width(&self) -> usize {
        self.kernels.len()
    }

    /// Access the individual kernels.
    pub fn kernels(&self) -> &[K] {
        &self.kernels
    }
}

/// Split one stream into `n` round-robin shards, the multi-stream setting
/// of §6.3 ("every core is consuming a different stream").
pub fn round_robin_shards(stream: &[u64], n: usize) -> Vec<Vec<u64>> {
    assert!(n > 0, "need at least one shard");
    let mut shards: Vec<Vec<u64>> = (0..n)
        .map(|_| Vec::with_capacity(stream.len() / n + 1))
        .collect();
    for (i, &key) in stream.iter().enumerate() {
        shards[i % n].push(key);
    }
    shards
}

/// Stable hash partition of the key space into `shards` disjoint classes:
/// every key maps to exactly one shard, so a group of per-shard summaries
/// keeps the *sequential* per-key semantics (query only the owner) instead
/// of summing per-kernel over-estimates.
///
/// The map is a fixed 64-bit finalizer (SplitMix64) followed by a
/// multiply-shift range reduction, so it is uniform even on dense integer
/// key spaces and identical across processes — no per-instance seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPartition {
    shards: usize,
}

impl KeyPartition {
    /// A partition into `shards` classes.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self { shards }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(self) -> usize {
        self.shards
    }

    /// The shard owning `key`, in `0..self.shards()`.
    #[inline]
    pub fn shard_of(self, key: u64) -> usize {
        let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 32;
        // Lemire multiply-shift: maps the hash uniformly onto 0..shards
        // without a modulo.
        ((x as u128 * self.shards as u128) >> 64) as usize
    }
}

/// A key-partitioned view of one shared stream: shard `i` is the
/// subsequence of keys with `partition.shard_of(key) == i`, exposed as an
/// iterator over the original slice — nothing is cloned or materialized.
#[derive(Debug, Clone, Copy)]
pub struct KeyShards<'a> {
    stream: &'a [u64],
    partition: KeyPartition,
}

impl<'a> KeyShards<'a> {
    /// Number of shards.
    #[inline]
    pub fn width(&self) -> usize {
        self.partition.shards()
    }

    /// The partition function shared with query routing.
    #[inline]
    pub fn partition(&self) -> KeyPartition {
        self.partition
    }

    /// Iterate shard `i`'s keys in stream order.
    ///
    /// # Panics
    /// Panics if `shard >= self.width()`.
    pub fn iter(&self, shard: usize) -> impl Iterator<Item = u64> + 'a {
        assert!(shard < self.width(), "shard index out of range");
        let partition = self.partition;
        self.stream
            .iter()
            .copied()
            .filter(move |&key| partition.shard_of(key) == shard)
    }

    /// Per-shard key counts (one pass over the stream).
    pub fn counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.width()];
        for &key in self.stream {
            counts[self.partition.shard_of(key)] += 1;
        }
        counts
    }
}

/// Partition `stream` by key hash into `n` shards (see [`KeyPartition`]).
///
/// Unlike [`round_robin_shards`] this allocates nothing: the returned view
/// borrows the stream and filters it per shard. Use with
/// [`SpmdGroup::ingest_keyed`] for owner-exact per-key semantics.
///
/// # Panics
/// Panics if `n == 0`.
pub fn hash_shards(stream: &[u64], n: usize) -> KeyShards<'_> {
    KeyShards {
        stream,
        partition: KeyPartition::new(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asketch::AsketchBuilder;
    use sketches::CountMin;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn shards_partition_the_stream() {
        let stream: Vec<u64> = (0..10).collect();
        let shards = round_robin_shards(&stream, 3);
        assert_eq!(shards.len(), 3);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(shards[0], vec![0, 3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = round_robin_shards(&[1], 0);
    }

    #[test]
    fn combined_estimate_covers_truth_cms() {
        let stream: Vec<u64> = (0..40_000u64).map(|i| i % 100).collect();
        let shards = round_robin_shards(&stream, 4);
        let (group, _) = SpmdGroup::ingest(&shards, |i| {
            CountMin::new(100 + i as u64, 4, 1 << 12).unwrap()
        });
        assert_eq!(group.width(), 4);
        for key in 0..100u64 {
            assert!(group.estimate(key) >= 400, "key {key} under-counted");
        }
    }

    #[test]
    fn combined_estimate_covers_truth_asketch() {
        let stream: Vec<u64> = (0..30_000u64)
            .map(|i| if i % 3 == 0 { 7 } else { i % 500 })
            .collect();
        let shards = round_robin_shards(&stream, 3);
        let (group, _) = SpmdGroup::ingest(&shards, |i| {
            AsketchBuilder {
                total_bytes: 16 * 1024,
                seed: 2000 + i as u64,
                ..Default::default()
            }
            .build_count_min()
            .unwrap()
        });
        let est = group.estimate(7);
        assert!(est >= 10_000, "heavy key across kernels: {est}");
    }

    #[test]
    fn single_kernel_degenerates_to_sequential() {
        let stream: Vec<u64> = (0..1_000u64).map(|i| i % 10).collect();
        let (group, _) = SpmdGroup::ingest(&round_robin_shards(&stream, 1), |_| {
            CountMin::new(5, 4, 1 << 12).unwrap()
        });
        for key in 0..10u64 {
            assert_eq!(group.estimate(key), 100);
        }
    }

    /// A kernel whose first construction on shard 1 panics; retries get a
    /// healthy kernel. Exercises the contain-and-replay path.
    #[test]
    fn shard_panic_is_contained_and_replayed() {
        let armed = AtomicBool::new(true);
        let stream: Vec<u64> = (0..4_000u64).map(|i| i % 10).collect();
        let shards = round_robin_shards(&stream, 4);
        let (group, _nanos, report) = SpmdGroup::ingest_supervised(
            &shards,
            |i| {
                if i == 1 && armed.swap(false, Ordering::SeqCst) {
                    panic!("injected shard fault");
                }
                CountMin::new(40 + i as u64, 4, 1 << 12).unwrap()
            },
            3,
        )
        .expect("recoverable fault must not fail the ingest");
        assert_eq!(group.width(), 4);
        assert_eq!(report.recovered.len(), 1);
        assert_eq!(report.recovered[0].shard, 1);
        assert_eq!(report.recovered[0].attempts, 2);
        assert!(report.recovered[0].error.contains("injected"));
        // Replay-from-scratch: every key still fully covered, no double
        // counting possible (exact in a collision-free CMS).
        for key in 0..10u64 {
            assert!(group.estimate(key) >= 400, "key {key} under-counted");
        }
    }

    #[test]
    fn persistent_shard_failure_surfaces_as_error() {
        let shards = vec![vec![1u64, 2, 3], vec![4u64, 5, 6]];
        let result = SpmdGroup::<CountMin>::ingest_supervised(
            &shards,
            |i| {
                if i == 0 {
                    panic!("shard 0 always dies");
                }
                CountMin::new(9, 4, 1 << 10).unwrap()
            },
            2,
        );
        match result {
            Err(PipelineError::ShardFailed {
                shard,
                attempts,
                payload,
            }) => {
                assert_eq!(shard, 0);
                assert_eq!(attempts, 2);
                assert!(payload.contains("always dies"));
            }
            other => panic!("expected ShardFailed, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn key_partition_is_total_and_stable() {
        let p = KeyPartition::new(4);
        for key in 0..10_000u64 {
            let s = p.shard_of(key);
            assert!(s < 4);
            assert_eq!(s, p.shard_of(key), "must be deterministic");
        }
    }

    #[test]
    fn key_partition_is_roughly_uniform_on_dense_keys() {
        let stream: Vec<u64> = (0..40_000u64).collect();
        let counts = hash_shards(&stream, 4).counts();
        let total: usize = counts.iter().sum();
        assert_eq!(total, 40_000);
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (8_000..=12_000).contains(&c),
                "shard {i} holds {c} of 40000 — partition badly skewed"
            );
        }
    }

    #[test]
    fn hash_shards_iter_preserves_stream_order_and_disjointness() {
        let stream: Vec<u64> = (0..500u64).map(|i| i * 37 % 101).collect();
        let shards = hash_shards(&stream, 3);
        let rebuilt: Vec<Vec<u64>> = (0..3).map(|i| shards.iter(i).collect()).collect();
        // Disjoint key sets.
        for i in 0..3 {
            for j in (i + 1)..3 {
                for k in &rebuilt[i] {
                    assert!(!rebuilt[j].contains(k), "key {k} on two shards");
                }
            }
        }
        // Merging the shards by stream order reproduces the stream.
        let mut merged = Vec::new();
        let mut idx = [0usize; 3];
        for &key in &stream {
            let s = shards.partition().shard_of(key);
            assert_eq!(rebuilt[s][idx[s]], key, "shard order differs from stream");
            idx[s] += 1;
            merged.push(key);
        }
        assert_eq!(merged, stream);
    }

    #[test]
    fn ingest_keyed_matches_owner_kernel_exactly() {
        // Collision-free CMS per shard: partitioned per-key estimates are
        // exact, so they must equal the true per-key counts.
        let stream: Vec<u64> = (0..30_000u64).map(|i| i % 64).collect();
        let shards = hash_shards(&stream, 4);
        let (group, _, report) = SpmdGroup::ingest_keyed(
            &shards,
            |i| CountMin::new(77 + i as u64, 4, 1 << 14).unwrap(),
            3,
        )
        .unwrap();
        assert!(report.is_clean());
        let p = shards.partition();
        for key in 0..64u64 {
            let truth = stream.iter().filter(|&&k| k == key).count() as i64;
            assert_eq!(group.estimate_partitioned(p, key), truth, "key {key}");
        }
    }

    #[test]
    fn estimate_batch_matches_point_estimates() {
        let stream: Vec<u64> = (0..20_000u64).map(|i| i % 50).collect();
        let shards = round_robin_shards(&stream, 3);
        let (group, _) = SpmdGroup::ingest(&shards, |i| {
            CountMin::new(11 + i as u64, 4, 1 << 12).unwrap()
        });
        let keys: Vec<u64> = (0..50u64).chain(900..920).collect();
        let out = group.estimate_batch(&keys);
        assert_eq!(out.len(), keys.len());
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(out[i], group.estimate(key), "key {key}");
        }
    }

    #[test]
    #[should_panic(expected = "partition width must match")]
    fn estimate_partitioned_rejects_mismatched_width() {
        let stream: Vec<u64> = (0..100u64).collect();
        let (group, _) = SpmdGroup::ingest(&round_robin_shards(&stream, 2), |i| {
            CountMin::new(3 + i as u64, 4, 1 << 10).unwrap()
        });
        let _ = group.estimate_partitioned(KeyPartition::new(3), 5);
    }

    #[test]
    fn clean_ingest_reports_clean() {
        let shards = round_robin_shards(&(0..100u64).collect::<Vec<_>>(), 2);
        let (_, _, report) = SpmdGroup::ingest_supervised(
            &shards,
            |i| CountMin::new(7 + i as u64, 4, 1 << 10).unwrap(),
            3,
        )
        .unwrap();
        assert!(report.is_clean());
    }
}
