//! SPMD parallelism (paper §6.3): every core runs a full summary as a
//! sequential *counting kernel* over its own input stream; point queries
//! are answered by combining the kernels' responses.
//!
//! Frequency counting is commutative, so the combine step is a plain sum —
//! the sum of per-kernel over-estimates is an over-estimate of the total
//! count, preserving the one-sided guarantee. This is the configuration of
//! the paper's Figure 13 (linear scaling of ASketch vs Count-Min kernels
//! with core count).
//!
//! # Fault containment
//!
//! A kernel panic is contained to its own shard: each shard thread runs its
//! kernel inside `catch_unwind` and, on panic, rebuilds a *fresh* kernel
//! and replays the whole shard from the start (the old kernel is discarded,
//! so retries can never double-count). [`SpmdGroup::ingest_supervised`]
//! bounds the attempts and reports per-shard recoveries in an
//! [`SpmdReport`]; a shard that keeps failing surfaces as
//! [`PipelineError::ShardFailed`] instead of poisoning the join.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sketches::traits::FrequencyEstimator;

use crate::supervisor::{panic_message, PipelineError};

/// Per-shard result of a supervised ingest: the finished kernel, the number
/// of attempts it took, and the last recovered panic payload (if any).
type ShardOutcome<K> = Result<(K, u32, Option<String>), PipelineError>;

/// Default attempts per shard used by [`SpmdGroup::ingest`]: one initial
/// run plus two retries.
pub const DEFAULT_SHARD_ATTEMPTS: u32 = 3;

/// One shard that panicked and was recovered by replaying from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecovery {
    /// Index of the shard.
    pub shard: usize,
    /// Attempts consumed before the shard completed (>= 2: the first
    /// attempt failed).
    pub attempts: u32,
    /// Panic message of the last failed attempt.
    pub error: String,
}

/// Outcome summary of a supervised SPMD ingest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpmdReport {
    /// Shards that panicked at least once and completed on a retry.
    pub recovered: Vec<ShardRecovery>,
}

impl SpmdReport {
    /// `true` when every shard completed on its first attempt.
    pub fn is_clean(&self) -> bool {
        self.recovered.is_empty()
    }
}

/// A group of independently fed counting kernels.
pub struct SpmdGroup<K> {
    kernels: Vec<K>,
}

impl<K: FrequencyEstimator + Send> SpmdGroup<K> {
    /// Feed `shards[i]` through a fresh kernel built by `make_kernel(i)`,
    /// one OS thread per shard, and collect the finished kernels.
    ///
    /// Returns the group and the wall-clock nanoseconds of the parallel
    /// ingest phase (all threads started together, measured to the last
    /// join), which is what the throughput experiments report.
    ///
    /// Shard panics are retried up to [`DEFAULT_SHARD_ATTEMPTS`] total
    /// attempts; use [`ingest_supervised`](Self::ingest_supervised) to pick
    /// the budget and observe recoveries.
    ///
    /// # Panics
    /// Panics if `shards` is empty, or if a shard exhausts its attempts.
    pub fn ingest<F>(shards: &[Vec<u64>], make_kernel: F) -> (Self, u128)
    where
        F: Fn(usize) -> K + Sync,
    {
        match Self::ingest_supervised(shards, make_kernel, DEFAULT_SHARD_ATTEMPTS) {
            Ok((group, nanos, _report)) => (group, nanos),
            Err(e) => panic!("SPMD ingest failed: {e}"),
        }
    }

    /// Supervised ingest: each shard gets up to `max_attempts` full runs
    /// (a fresh kernel per attempt, so partial state from a panicked run is
    /// never counted).
    ///
    /// On success returns the group, the parallel wall-clock nanoseconds,
    /// and a report of any shards that needed recovery.
    ///
    /// # Errors
    /// Returns [`PipelineError::ShardFailed`] for the first shard (by
    /// index) that panicked on every permitted attempt.
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn ingest_supervised<F>(
        shards: &[Vec<u64>],
        make_kernel: F,
        max_attempts: u32,
    ) -> Result<(Self, u128, SpmdReport), PipelineError>
    where
        F: Fn(usize) -> K + Sync,
    {
        assert!(!shards.is_empty(), "need at least one shard");
        let max_attempts = max_attempts.max(1);
        let start = std::time::Instant::now();
        let outcomes: Vec<ShardOutcome<K>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(i, shard)| {
                    let make_kernel = &make_kernel;
                    scope.spawn(move || {
                        let mut attempts = 0u32;
                        let mut last_error: Option<String> = None;
                        loop {
                            attempts += 1;
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                let mut kernel = make_kernel(i);
                                // Batched ingest: kernels with tuned
                                // update_batch overrides (prefetch,
                                // hoisted hashing) get them here; the
                                // default is the same per-key loop as
                                // before.
                                kernel.insert_batch(shard);
                                kernel
                            }));
                            match run {
                                Ok(kernel) => return Ok((kernel, attempts, last_error)),
                                Err(payload) => {
                                    let msg = panic_message(payload);
                                    if attempts >= max_attempts {
                                        return Err(PipelineError::ShardFailed {
                                            shard: i,
                                            attempts,
                                            payload: msg,
                                        });
                                    }
                                    last_error = Some(msg);
                                }
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(i, h)| match h.join() {
                    Ok(outcome) => outcome,
                    // The closure catches kernel panics itself; a panic
                    // escaping it (e.g. in thread shutdown) still maps
                    // to a shard failure rather than poisoning us.
                    Err(payload) => Err(PipelineError::ShardFailed {
                        shard: i,
                        attempts: max_attempts,
                        payload: panic_message(payload),
                    }),
                })
                .collect()
        });
        let elapsed = start.elapsed().as_nanos();

        let mut kernels = Vec::with_capacity(shards.len());
        let mut report = SpmdReport::default();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok((kernel, attempts, last_error)) => {
                    kernels.push(kernel);
                    if attempts > 1 {
                        report.recovered.push(ShardRecovery {
                            shard: i,
                            attempts,
                            error: last_error.unwrap_or_default(),
                        });
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok((Self { kernels }, elapsed, report))
    }

    /// Combined point estimate: the sum of every kernel's answer
    /// (commutative combine, paper §6.3).
    pub fn estimate(&self, key: u64) -> i64 {
        self.kernels.iter().map(|k| k.estimate(key)).sum()
    }

    /// Number of kernels in the group.
    pub fn width(&self) -> usize {
        self.kernels.len()
    }

    /// Access the individual kernels.
    pub fn kernels(&self) -> &[K] {
        &self.kernels
    }
}

/// Split one stream into `n` round-robin shards, the multi-stream setting
/// of §6.3 ("every core is consuming a different stream").
pub fn round_robin_shards(stream: &[u64], n: usize) -> Vec<Vec<u64>> {
    assert!(n > 0, "need at least one shard");
    let mut shards: Vec<Vec<u64>> = (0..n)
        .map(|_| Vec::with_capacity(stream.len() / n + 1))
        .collect();
    for (i, &key) in stream.iter().enumerate() {
        shards[i % n].push(key);
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use asketch::AsketchBuilder;
    use sketches::CountMin;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn shards_partition_the_stream() {
        let stream: Vec<u64> = (0..10).collect();
        let shards = round_robin_shards(&stream, 3);
        assert_eq!(shards.len(), 3);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(shards[0], vec![0, 3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = round_robin_shards(&[1], 0);
    }

    #[test]
    fn combined_estimate_covers_truth_cms() {
        let stream: Vec<u64> = (0..40_000u64).map(|i| i % 100).collect();
        let shards = round_robin_shards(&stream, 4);
        let (group, _) = SpmdGroup::ingest(&shards, |i| {
            CountMin::new(100 + i as u64, 4, 1 << 12).unwrap()
        });
        assert_eq!(group.width(), 4);
        for key in 0..100u64 {
            assert!(group.estimate(key) >= 400, "key {key} under-counted");
        }
    }

    #[test]
    fn combined_estimate_covers_truth_asketch() {
        let stream: Vec<u64> = (0..30_000u64)
            .map(|i| if i % 3 == 0 { 7 } else { i % 500 })
            .collect();
        let shards = round_robin_shards(&stream, 3);
        let (group, _) = SpmdGroup::ingest(&shards, |i| {
            AsketchBuilder {
                total_bytes: 16 * 1024,
                seed: 2000 + i as u64,
                ..Default::default()
            }
            .build_count_min()
            .unwrap()
        });
        let est = group.estimate(7);
        assert!(est >= 10_000, "heavy key across kernels: {est}");
    }

    #[test]
    fn single_kernel_degenerates_to_sequential() {
        let stream: Vec<u64> = (0..1_000u64).map(|i| i % 10).collect();
        let (group, _) = SpmdGroup::ingest(&round_robin_shards(&stream, 1), |_| {
            CountMin::new(5, 4, 1 << 12).unwrap()
        });
        for key in 0..10u64 {
            assert_eq!(group.estimate(key), 100);
        }
    }

    /// A kernel whose first construction on shard 1 panics; retries get a
    /// healthy kernel. Exercises the contain-and-replay path.
    #[test]
    fn shard_panic_is_contained_and_replayed() {
        let armed = AtomicBool::new(true);
        let stream: Vec<u64> = (0..4_000u64).map(|i| i % 10).collect();
        let shards = round_robin_shards(&stream, 4);
        let (group, _nanos, report) = SpmdGroup::ingest_supervised(
            &shards,
            |i| {
                if i == 1 && armed.swap(false, Ordering::SeqCst) {
                    panic!("injected shard fault");
                }
                CountMin::new(40 + i as u64, 4, 1 << 12).unwrap()
            },
            3,
        )
        .expect("recoverable fault must not fail the ingest");
        assert_eq!(group.width(), 4);
        assert_eq!(report.recovered.len(), 1);
        assert_eq!(report.recovered[0].shard, 1);
        assert_eq!(report.recovered[0].attempts, 2);
        assert!(report.recovered[0].error.contains("injected"));
        // Replay-from-scratch: every key still fully covered, no double
        // counting possible (exact in a collision-free CMS).
        for key in 0..10u64 {
            assert!(group.estimate(key) >= 400, "key {key} under-counted");
        }
    }

    #[test]
    fn persistent_shard_failure_surfaces_as_error() {
        let shards = vec![vec![1u64, 2, 3], vec![4u64, 5, 6]];
        let result = SpmdGroup::<CountMin>::ingest_supervised(
            &shards,
            |i| {
                if i == 0 {
                    panic!("shard 0 always dies");
                }
                CountMin::new(9, 4, 1 << 10).unwrap()
            },
            2,
        );
        match result {
            Err(PipelineError::ShardFailed {
                shard,
                attempts,
                payload,
            }) => {
                assert_eq!(shard, 0);
                assert_eq!(attempts, 2);
                assert!(payload.contains("always dies"));
            }
            other => panic!("expected ShardFailed, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn clean_ingest_reports_clean() {
        let shards = round_robin_shards(&(0..100u64).collect::<Vec<_>>(), 2);
        let (_, _, report) = SpmdGroup::ingest_supervised(
            &shards,
            |i| CountMin::new(7 + i as u64, 4, 1 << 10).unwrap(),
            3,
        )
        .unwrap();
        assert!(report.is_clean());
    }
}
