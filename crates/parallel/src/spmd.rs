//! SPMD parallelism (paper §6.3): every core runs a full summary as a
//! sequential *counting kernel* over its own input stream; point queries
//! are answered by combining the kernels' responses.
//!
//! Frequency counting is commutative, so the combine step is a plain sum —
//! the sum of per-kernel over-estimates is an over-estimate of the total
//! count, preserving the one-sided guarantee. This is the configuration of
//! the paper's Figure 13 (linear scaling of ASketch vs Count-Min kernels
//! with core count).

use sketches::traits::FrequencyEstimator;

/// A group of independently fed counting kernels.
pub struct SpmdGroup<K> {
    kernels: Vec<K>,
}

impl<K: FrequencyEstimator + Send> SpmdGroup<K> {
    /// Feed `shards[i]` through a fresh kernel built by `make_kernel(i)`,
    /// one OS thread per shard, and collect the finished kernels.
    ///
    /// Returns the group and the wall-clock nanoseconds of the parallel
    /// ingest phase (all threads started together, measured to the last
    /// join), which is what the throughput experiments report.
    pub fn ingest<F>(shards: &[Vec<u64>], make_kernel: F) -> (Self, u128)
    where
        F: Fn(usize) -> K + Sync,
    {
        assert!(!shards.is_empty(), "need at least one shard");
        let start = std::time::Instant::now();
        let kernels: Vec<K> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(i, shard)| {
                    let make_kernel = &make_kernel;
                    scope.spawn(move || {
                        let mut kernel = make_kernel(i);
                        for &key in shard {
                            kernel.update(key, 1);
                        }
                        kernel
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kernel thread must not panic"))
                .collect()
        });
        let elapsed = start.elapsed().as_nanos();
        (Self { kernels }, elapsed)
    }

    /// Combined point estimate: the sum of every kernel's answer
    /// (commutative combine, paper §6.3).
    pub fn estimate(&self, key: u64) -> i64 {
        self.kernels.iter().map(|k| k.estimate(key)).sum()
    }

    /// Number of kernels in the group.
    pub fn width(&self) -> usize {
        self.kernels.len()
    }

    /// Access the individual kernels.
    pub fn kernels(&self) -> &[K] {
        &self.kernels
    }
}

/// Split one stream into `n` round-robin shards, the multi-stream setting
/// of §6.3 ("every core is consuming a different stream").
pub fn round_robin_shards(stream: &[u64], n: usize) -> Vec<Vec<u64>> {
    assert!(n > 0, "need at least one shard");
    let mut shards: Vec<Vec<u64>> = (0..n).map(|_| Vec::with_capacity(stream.len() / n + 1)).collect();
    for (i, &key) in stream.iter().enumerate() {
        shards[i % n].push(key);
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use asketch::AsketchBuilder;
    use sketches::CountMin;

    #[test]
    fn shards_partition_the_stream() {
        let stream: Vec<u64> = (0..10).collect();
        let shards = round_robin_shards(&stream, 3);
        assert_eq!(shards.len(), 3);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(shards[0], vec![0, 3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = round_robin_shards(&[1], 0);
    }

    #[test]
    fn combined_estimate_covers_truth_cms() {
        let stream: Vec<u64> = (0..40_000u64).map(|i| i % 100).collect();
        let shards = round_robin_shards(&stream, 4);
        let (group, _) = SpmdGroup::ingest(&shards, |i| {
            CountMin::new(100 + i as u64, 4, 1 << 12).unwrap()
        });
        assert_eq!(group.width(), 4);
        for key in 0..100u64 {
            assert!(group.estimate(key) >= 400, "key {key} under-counted");
        }
    }

    #[test]
    fn combined_estimate_covers_truth_asketch() {
        let stream: Vec<u64> = (0..30_000u64)
            .map(|i| if i % 3 == 0 { 7 } else { i % 500 })
            .collect();
        let shards = round_robin_shards(&stream, 3);
        let (group, _) = SpmdGroup::ingest(&shards, |i| {
            AsketchBuilder {
                total_bytes: 16 * 1024,
                seed: 2000 + i as u64,
                ..Default::default()
            }
            .build_count_min()
            .unwrap()
        });
        let est = group.estimate(7);
        assert!(est >= 10_000, "heavy key across kernels: {est}");
    }

    #[test]
    fn single_kernel_degenerates_to_sequential() {
        let stream: Vec<u64> = (0..1_000u64).map(|i| i % 10).collect();
        let (group, _) = SpmdGroup::ingest(&round_robin_shards(&stream, 1), |_| {
            CountMin::new(5, 4, 1 << 12).unwrap()
        });
        for key in 0..10u64 {
            assert_eq!(group.estimate(key), 100);
        }
    }
}
