//! Bounded per-session high-water-mark table for exactly-once network
//! ingest.
//!
//! A serving client identifies itself with a `session_id` and stamps every
//! write with a strictly increasing client sequence number. The runtime
//! keeps, per session, one high-water mark **per shard**: the highest
//! client sequence whose keys this shard has applied. A retried write is
//! re-applied only to the shards whose mark is still below its sequence —
//! so an ack lost in transit (the classic ambiguous-outcome window) leads
//! to a replay that is deduped shard-by-shard, never double-counted. The
//! ASketch estimate is one-sided (over-count only), which makes duplicate
//! application the *only* way a retry can corrupt results; this table plus
//! at-least-once client retries is therefore exactly-once end-to-end.
//!
//! # Bounded memory
//!
//! The table holds at most `cap` sessions. Inserting a new session past
//! the cap evicts the least-recently-touched one (every `hello` and every
//! sequenced write touches its session). An evicted session that later
//! reconnects starts from mark 0: its unacked replays degrade to
//! at-least-once for exactly the writes that were applied-but-unacked
//! before eviction. Size the cap above the live-client count to keep the
//! exactly-once guarantee; the durable side persists the same marks
//! piggyback on WAL records and snapshots so the guarantee survives
//! crash+replay (see `asketch-durable`).

use std::collections::HashMap;

/// What happened to one sequenced, pre-partitioned write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOutcome {
    /// Keys actually shipped to shard workers (0 for a full duplicate).
    pub applied: usize,
    /// Every non-empty shard slot was deduped by the session marks — the
    /// write had already been applied in full and this was a retry.
    pub duplicate: bool,
    /// Some shard has lost durability (disk-sick degraded mode): the
    /// write was applied and stays one-sided, but may not survive a
    /// crash. Serving layers surface this as a `DEGRADED` ack flag.
    pub degraded: bool,
}

/// One session's per-shard high-water marks plus its LRU clock.
struct SessionEntry {
    /// `hwm[shard]` = highest client seq whose keys that shard applied.
    hwm: Vec<u64>,
    /// Logical touch time for least-recently-used eviction.
    touched: u64,
}

/// Bounded map from `session_id` to per-shard high-water marks with
/// least-recently-used eviction. Single-writer (owned by the runtime's
/// ingest thread behind `&mut self`), so no interior synchronization.
pub struct SessionTable {
    cap: usize,
    clock: u64,
    map: HashMap<u64, SessionEntry>,
}

impl SessionTable {
    /// An empty table holding at most `cap` sessions (minimum 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            clock: 0,
            map: HashMap::new(),
        }
    }

    /// Live sessions currently tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no session is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The eviction capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Seed one shard's recovered mark for a session (from a
    /// `RecoveryReport`), without counting as a touch.
    pub fn seed(&mut self, sid: u64, shard: usize, hwm: u64, shards: usize) {
        let entry = self.entry(sid, shards);
        entry.hwm[shard] = entry.hwm[shard].max(hwm);
    }

    /// Handshake: register (or touch) the session, fold the client's
    /// claimed floor into every shard mark, and return the sequence the
    /// client may safely resume *after* — the **minimum** mark across
    /// shards, since a batch spans shards and is only fully applied once
    /// every shard that received a part has passed it.
    pub fn hello(&mut self, sid: u64, resume_seq: u64, shards: usize) -> u64 {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entry(sid, shards);
        entry.touched = clock;
        for h in entry.hwm.iter_mut() {
            *h = (*h).max(resume_seq);
        }
        entry.hwm.iter().copied().min().unwrap_or(0)
    }

    /// Touch the session and expose its per-shard marks for one sequenced
    /// write. The caller skips shards whose mark already covers the seq
    /// and bumps every mark afterwards.
    pub fn touch(&mut self, sid: u64, shards: usize) -> &mut [u64] {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entry(sid, shards);
        entry.touched = clock;
        &mut entry.hwm
    }

    /// Fetch-or-create the entry, evicting the least-recently-touched
    /// session when a new one would exceed the cap.
    fn entry(&mut self, sid: u64, shards: usize) -> &mut SessionEntry {
        if !self.map.contains_key(&sid) && self.map.len() >= self.cap {
            if let Some((&old, _)) = self.map.iter().min_by_key(|&(_, e)| e.touched) {
                self.map.remove(&old);
            }
        }
        let entry = self.map.entry(sid).or_insert_with(|| SessionEntry {
            hwm: vec![0; shards],
            touched: 0,
        });
        // A table created before the runtime knew its shard count (or a
        // seed from an older layout) widens in place; marks never shrink.
        if entry.hwm.len() < shards {
            entry.hwm.resize(shards, 0);
        }
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_returns_min_mark_across_shards() {
        let mut t = SessionTable::new(8);
        t.seed(7, 0, 5, 3);
        t.seed(7, 1, 3, 3);
        // Shard 2 never saw keys from this session: its mark stays 0, so
        // the resumable floor is 0 — the client replays everything
        // unacked and per-shard dedup drops the already-applied parts.
        assert_eq!(t.hello(7, 0, 3), 0);
        // A client floor lifts every mark.
        assert_eq!(t.hello(7, 4, 3), 4);
        assert_eq!(t.touch(7, 3), &[5, 4, 4]);
    }

    #[test]
    fn lru_eviction_keeps_recently_touched_sessions() {
        let mut t = SessionTable::new(2);
        t.hello(1, 0, 1);
        t.hello(2, 0, 1);
        t.touch(1, 1); // 2 is now the stalest
        t.hello(3, 0, 1);
        assert_eq!(t.len(), 2);
        t.touch(1, 1)[0] = 9;
        assert_eq!(t.touch(1, 1), &[9]);
        // Session 2 was evicted: it comes back fresh.
        assert_eq!(t.hello(2, 0, 1), 0);
    }

    #[test]
    fn seed_folds_by_max_and_never_regresses() {
        let mut t = SessionTable::new(4);
        t.seed(5, 0, 10, 2);
        t.seed(5, 0, 4, 2);
        assert_eq!(t.touch(5, 2), &[10, 0]);
    }
}
