//! Key routing for the concurrent runtime: accumulate incoming keys into
//! per-shard batches so workers see the PR-2 batched hot path
//! (`update_batch` with hoisted hashing / prefetch) instead of one channel
//! message per key.
//!
//! The router is deliberately free of channels and threads so its policy —
//! which shard owns a key, when a batch is considered full — is unit
//! testable in isolation; `concurrent.rs` owns the sending.

use crate::spmd::KeyPartition;

/// Accumulates keys into per-shard batches under a [`KeyPartition`].
///
/// [`push`](Self::push) returns a full batch the moment a shard reaches the
/// configured batch size; [`take`](Self::take) flushes a partial batch on
/// demand (sync points, shutdown). Batches are handed out as owned `Vec`s
/// ready to move into a channel message; the router immediately re-arms the
/// shard with a fresh buffer of the same capacity.
#[derive(Debug)]
pub struct KeyRouter {
    partition: KeyPartition,
    batch: usize,
    pending: Vec<Vec<u64>>,
}

impl KeyRouter {
    /// A router over `partition` that emits batches of `batch` keys.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn new(partition: KeyPartition, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Self {
            partition,
            batch,
            pending: (0..partition.shards())
                .map(|_| Vec::with_capacity(batch))
                .collect(),
        }
    }

    /// The partition shared with query routing.
    pub fn partition(&self) -> KeyPartition {
        self.partition
    }

    /// Route one key. Returns `Some((shard, batch))` when the owning
    /// shard's buffer just filled, else `None`.
    #[inline]
    pub fn push(&mut self, key: u64) -> Option<(usize, Vec<u64>)> {
        let shard = self.partition.shard_of(key);
        let buf = &mut self.pending[shard];
        buf.push(key);
        if buf.len() == self.batch {
            let full = std::mem::replace(buf, Vec::with_capacity(self.batch));
            Some((shard, full))
        } else {
            None
        }
    }

    /// Number of keys currently buffered for `shard`.
    pub fn buffered(&self, shard: usize) -> usize {
        self.pending[shard].len()
    }

    /// Take `shard`'s partial batch (empty `Vec` if nothing is buffered).
    pub fn take(&mut self, shard: usize) -> Vec<u64> {
        if self.pending[shard].is_empty() {
            return Vec::new();
        }
        std::mem::replace(&mut self.pending[shard], Vec::with_capacity(self.batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_emits_exactly_at_batch_size() {
        let p = KeyPartition::new(1);
        let mut r = KeyRouter::new(p, 3);
        assert!(r.push(1).is_none());
        assert!(r.push(2).is_none());
        let (shard, batch) = r.push(3).expect("third key fills the batch");
        assert_eq!(shard, 0);
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(r.buffered(0), 0);
    }

    #[test]
    fn batches_respect_ownership_and_order() {
        let p = KeyPartition::new(4);
        let mut r = KeyRouter::new(p, 8);
        let stream: Vec<u64> = (0..1_000u64).collect();
        let mut emitted: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for &key in &stream {
            if let Some((shard, batch)) = r.push(key) {
                assert_eq!(batch.len(), 8);
                for &k in &batch {
                    assert_eq!(p.shard_of(k), shard, "key {k} routed off-owner");
                }
                emitted[shard].extend(batch);
            }
        }
        for (shard, got) in emitted.iter_mut().enumerate() {
            got.extend(r.take(shard));
            assert!(r.take(shard).is_empty(), "second take must be empty");
            let expect: Vec<u64> = stream
                .iter()
                .copied()
                .filter(|&k| p.shard_of(k) == shard)
                .collect();
            assert_eq!(*got, expect, "shard {shard} lost or reordered keys");
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let _ = KeyRouter::new(KeyPartition::new(2), 0);
    }
}
