//! Concurrent sharded ASketch runtime: key-partitioned worker threads with
//! wait-free point queries served *during* ingest.
//!
//! # Architecture
//!
//! [`ConcurrentASketch`] owns N long-lived worker threads. Each worker owns
//! a full sequential `ASketch` kernel for one **key partition**
//! ([`KeyPartition`]): every key hashes to exactly one shard, so per-key
//! semantics are *exactly* those of the sequential algorithm run over that
//! key's sub-stream — not a sum of per-kernel over-estimates like the SPMD
//! combine. The caller routes keys through a [`KeyRouter`], accumulating
//! per-shard batches (the PR-2 `update_batch` hot path) before sending them
//! over bounded channels that reuse the supervision machinery of the
//! pipeline runtime: journaled sequence numbers, worker checkpoints,
//! bounded restarts with exponential backoff, and a degraded inline mode
//! once the restart budget is spent. No failure mode loses or double-counts
//! an update (checkpoint + journal replay, exactly as in
//! [`crate::pipeline`]).
//!
//! # Wait-free concurrent reads
//!
//! The headline property: point queries are served **concurrently with
//! ingest**, and readers never take a lock and never block a writer.
//! Each shard exposes a [`ShardSnapshot`]:
//!
//! * an exact filter snapshot behind a double-buffered seqlock
//!   ([`FilterSnapshot`]) — filter hits answer the key's `new_count`,
//!   matching the sequential filter-hit answer at the publish instant;
//! * a lock-free sketch replica ([`sketches::SharedView`]) for keys outside
//!   the filter.
//!
//! Workers republish the filter every [`ConcurrentConfig::publish_interval`]
//! applied keys and the sketch view every
//! [`ConcurrentConfig::view_interval`] applied keys (and always at sync /
//! shutdown). [`QueryHandle`]s are `Clone + Send + Sync` and can be handed
//! to any number of reader threads.
//!
//! # Staleness bound (in ops)
//!
//! A reader's answer for key `k` reflects the owning worker's state at the
//! last publish, which lags the *routed* stream by at most
//!
//! ```text
//! publish_interval                     (filter-resident keys)
//! view_interval                        (sketch-resident keys)
//!   + queue_capacity * batch           (batches queued, not yet applied)
//!   + batch - 1                        (keys buffered in the router)
//! ```
//!
//! ops for that shard. On insert-only streams every published count is
//! monotone non-decreasing and never exceeds the quiesced true estimate, so
//! staleness is one-sided: a concurrent read never over-reports a key
//! beyond what the sequential ASketch would answer at quiesce. After
//! [`ConcurrentASketch::sync`] returns, reads are exact (equal to the
//! sequential algorithm over the routed prefix).
//!
//! # Single-writer enforcement across fail-over
//!
//! [`FilterSnapshot`] (and the shared sketch view) tolerate exactly one
//! publisher at a time, but fail-over can *abandon* a wedged worker that
//! is still alive: it keeps draining its buffered channel and publishing,
//! while a replacement is spawned into the same snapshot. To keep the
//! single-writer invariant under that race, every publish goes through a
//! **writer-generation gate** on the snapshot: publishers hold a
//! writer-side mutex for the duration of a publish and compare their
//! generation against the snapshot's; fail-over bumps the generation
//! (waiting out any in-flight publish — the critical section is a bounded
//! memory copy, never user estimator code) before the replacement starts,
//! so a stale writer's later publishes are dropped. Readers never touch
//! the gate — the read path stays wait-free.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{
    self, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TryRecvError, TrySendError,
};

use asketch::{ASketch, DurabilityError, DurabilityOptions, Filter, FilterItem, RecoveryReport};
use asketch_durable::snapshot::{prune_snapshots_with, write_snapshot_sessions_with, SnapshotMeta};
use asketch_durable::vfs::Vfs;
use asketch_durable::wal::{list_segments_with, sync_segment_with};
use asketch_durable::{
    recover_kernel_with, scrub_shard_dir, FsyncPolicy, ScrubReport, StoragePolicy, WalWriter,
};
use eval_metrics::{ShardGauge, ShardedHealth, StorageFault};
use sketches::persist::Persist;
use sketches::traits::{FrequencyEstimator, Tuple, UpdateEstimate};
use sketches::SharedView;

use crate::affinity;
use crate::ring;
use crate::router::KeyRouter;
use crate::seqlock::FilterSnapshot;
use crate::session::{SessionOutcome, SessionTable};
use crate::spmd::KeyPartition;
use crate::supervisor::{
    panic_message, BackpressurePolicy, Journal, PipelineError, SupervisionConfig,
};

/// Which transport carries data batches from the router to each shard
/// worker (the **hot path**). Control messages (sync barriers, shutdown
/// via disconnect) always ride the supervised crossbeam channel — the
/// cold control plane — so supervision semantics are identical on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataPlane {
    /// Bounded lock-free SPSC ring per shard ([`crate::ring`]):
    /// cache-padded head/tail, park/unpark only on empty↔full
    /// transitions. The default — measurably faster than the channel on
    /// multi-core hosts.
    #[default]
    Ring,
    /// Everything over the crossbeam channel (the pre-ring behaviour);
    /// kept for comparison benchmarks and as a conservative fallback.
    Channel,
}

impl DataPlane {
    /// Stable gauge/CLI name: `"ring"` or `"channel"`.
    pub fn name(self) -> &'static str {
        match self {
            DataPlane::Ring => "ring",
            DataPlane::Channel => "channel",
        }
    }
}

/// Tunables for the concurrent sharded runtime.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Number of worker shards (key partitions).
    pub shards: usize,
    /// Keys accumulated per shard before a batch message is sent.
    pub batch: usize,
    /// Applied keys between filter snapshot publishes on a worker.
    pub publish_interval: u64,
    /// Applied keys between sketch view publishes on a worker (a view
    /// publish copies the whole counter table, so it runs coarser than the
    /// 32-item filter publish).
    pub view_interval: u64,
    /// Transport for data batches: SPSC ring (default) or the channel.
    pub data_plane: DataPlane,
    /// Pin each shard worker to core `shard % cores` and herd background
    /// threads (snapshotter, scrubber, WAL syncer) onto the last core.
    /// Best-effort (see [`crate::affinity`]); off by default so CI
    /// containers with masked cpusets behave identically.
    pub pin_workers: bool,
    /// Most sessions tracked by the exactly-once ingest table (both the
    /// in-memory [`SessionTable`] and each shard's persisted mark map);
    /// past the cap the least-recently-touched session is evicted and its
    /// unacked retries degrade to at-least-once (see [`crate::session`]).
    pub session_cap: usize,
    /// Channel, journal, backpressure, restart, and timeout parameters,
    /// shared with the pipeline runtime.
    pub supervision: SupervisionConfig,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            batch: 256,
            publish_interval: 1024,
            view_interval: 8192,
            data_plane: DataPlane::default(),
            pin_workers: false,
            session_cap: 1024,
            supervision: SupervisionConfig::default(),
        }
    }
}

/// The reader-visible face of one shard: seqlock-published exact filter
/// snapshot plus the lock-free sketch view, with publish epochs.
pub struct ShardSnapshot<S: SharedView> {
    filter: FilterSnapshot,
    view: S::View,
    view_epoch: AtomicU64,
    /// Writer-generation gate (see the module docs): the current writer's
    /// generation, held for the duration of every publish so fail-over can
    /// retire an abandoned-but-alive worker without racing its replacement.
    /// Readers never touch this.
    writer_gen: Mutex<u64>,
}

impl<S: SharedView> ShardSnapshot<S> {
    /// Wait-free point query against the last published state: filter hit
    /// answers exactly, otherwise the sketch view answers one-sidedly.
    pub fn query(&self, key: u64) -> i64 {
        match self.filter.query(key) {
            Some(count) => count,
            None => S::view_estimate(&self.view, key),
        }
    }

    /// Wait-free point queries for a **group** of keys owned by this
    /// shard, paying one seqlock-stable filter read for the whole group
    /// instead of one per key. `scratch` is the caller's reusable table
    /// buffer; each `(slot, key)` pair writes its answer to `out[slot]`,
    /// so callers that grouped a batch by shard get order preservation
    /// for free.
    ///
    /// All keys in one group are answered against the *same* published
    /// filter state (a per-key loop could straddle a publish); like
    /// [`query`](Self::query), filter hits are exact at that publish and
    /// sketch-view misses are one-sided.
    pub fn query_group(
        &self,
        group: &[(usize, u64)],
        scratch: &mut Vec<FilterItem>,
        out: &mut [i64],
    ) {
        self.filter.read_table(scratch);
        for &(slot, key) in group {
            let hit = scratch
                .iter()
                .find(|item| item.key == key)
                .map(|item| item.new_count);
            out[slot] = match hit {
                Some(count) => count,
                None => S::view_estimate(&self.view, key),
            };
        }
    }

    /// Wait-free snapshot of this shard's published filter items (its
    /// heavy hitters), read in one seqlock-stable session into `out`.
    /// Returns the publish epoch.
    pub fn filter_items(&self, out: &mut Vec<FilterItem>) -> u64 {
        self.filter.read_table(out)
    }

    /// Applied-op count at the last filter publish (staleness clock).
    pub fn filter_epoch(&self) -> u64 {
        self.filter.epoch()
    }

    /// Applied-op count at the last sketch view publish.
    pub fn view_epoch(&self) -> u64 {
        self.view_epoch.load(Ordering::Acquire)
    }

    /// Seqlock reader retries on this shard (0 in steady state; a retry is
    /// not a block — the reader re-reads immediately).
    pub fn reader_retries(&self) -> u64 {
        self.filter.retries()
    }

    /// Claim the publish gate iff `gen` is still the current writer
    /// generation; a stale writer (abandoned by fail-over) gets `None` and
    /// must drop its publish. Holding the guard serializes publishers.
    fn begin_publish(&self, gen: u64) -> Option<MutexGuard<'_, u64>> {
        let guard = self
            .writer_gen
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (*guard == gen).then_some(guard)
    }

    /// Retire the current writer: wait out any in-flight publish, bump the
    /// generation so the old writer's future publishes no-op, and return
    /// the generation the replacement must publish under.
    fn retire_writer(&self) -> u64 {
        let mut guard = self
            .writer_gen
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *guard += 1;
        *guard
    }
}

/// Publish the kernel's filter into the snapshot, stamped with the
/// kernel's applied-op count. Dropped if `gen` is no longer the
/// snapshot's writer generation.
fn publish_filter<F: Filter, S: SharedView + UpdateEstimate>(
    kernel: &ASketch<F, S>,
    snap: &ShardSnapshot<S>,
    buf: &mut Vec<FilterItem>,
    gen: u64,
) {
    kernel.snapshot_filter_into(buf);
    let Some(_writer) = snap.begin_publish(gen) else {
        return;
    };
    snap.filter.publish(buf, kernel.ops_applied());
}

/// Publish the kernel's sketch into the snapshot's shared view. Dropped if
/// `gen` is no longer the snapshot's writer generation.
fn publish_view<F: Filter, S: SharedView + UpdateEstimate>(
    kernel: &ASketch<F, S>,
    snap: &ShardSnapshot<S>,
    gen: u64,
) {
    let Some(_writer) = snap.begin_publish(gen) else {
        return;
    };
    kernel.sketch().store_view(&snap.view);
    snap.view_epoch
        .store(kernel.ops_applied(), Ordering::Release);
}

/// Messages from the router to a shard worker.
enum ToShard {
    /// One batch of keys owned by this shard, under one journal sequence.
    Batch { seq: u64, keys: Vec<u64> },
    /// Publish everything and reply with the applied-op count (barrier).
    Sync { reply: Sender<u64> },
}

/// Messages from a shard worker back to the router.
enum FromShard<K> {
    /// Periodic snapshot for the replay journal, tagged with the last
    /// applied sequence number.
    Checkpoint { seq: u64, snapshot: K },
}

/// One data-plane batch on the SPSC ring: the journal sequence plus the
/// shard-owned keys (exactly `ToShard::Batch`, unboxed for the ring).
type RingBatch = (u64, Vec<u64>);

/// Channel endpoints and join handle of one live shard worker.
///
/// Two planes: when `ring` is installed ([`DataPlane::Ring`]) data
/// batches ride the lock-free SPSC ring and the crossbeam channel
/// carries only control traffic (sync barriers; shutdown is the channel
/// disconnecting). On [`DataPlane::Channel`] everything uses `tx`.
struct ShardLink<K> {
    tx: Sender<ToShard>,
    /// Producer half of the data ring (`None` on the channel plane).
    ring: Option<ring::Producer<RingBatch>>,
    /// Bound of the data plane actually in use (ring capacity rounds up
    /// to a power of two, so this can exceed the configured capacity).
    capacity: usize,
    rx: Receiver<FromShard<K>>,
    handle: JoinHandle<K>,
}

impl<K> ShardLink<K> {
    /// Non-blocking send on the data plane. Ring-full is reported as
    /// `Full`; a full ring whose worker has already exited is reported as
    /// `Disconnected` (the ring itself has no disconnect notion — the
    /// thread handle is the liveness source of truth).
    fn try_send_data(&self, msg: ToShard) -> Result<(), TrySendError<ToShard>> {
        match (&self.ring, msg) {
            (Some(rp), ToShard::Batch { seq, keys }) => match rp.try_push((seq, keys)) {
                Ok(()) => Ok(()),
                Err((seq, keys)) => {
                    let msg = ToShard::Batch { seq, keys };
                    if self.handle.is_finished() {
                        Err(TrySendError::Disconnected(msg))
                    } else {
                        Err(TrySendError::Full(msg))
                    }
                }
            },
            (_, msg) => self.tx.try_send(msg),
        }
    }

    /// Blocking send on the data plane with a wedge bound; same
    /// `Timeout`/`Disconnected` classification as the channel.
    fn send_data_timeout(
        &self,
        msg: ToShard,
        timeout: Duration,
    ) -> Result<(), SendTimeoutError<ToShard>> {
        match (&self.ring, msg) {
            (Some(rp), ToShard::Batch { seq, keys }) => match rp.push_timeout((seq, keys), timeout)
            {
                Ok(()) => Ok(()),
                Err((seq, keys)) => {
                    let msg = ToShard::Batch { seq, keys };
                    if self.handle.is_finished() {
                        Err(SendTimeoutError::Disconnected(msg))
                    } else {
                        Err(SendTimeoutError::Timeout(msg))
                    }
                }
            },
            (_, msg) => self.tx.send_timeout(msg, timeout),
        }
    }

    /// Wake a worker that may be parked on an empty ring — called after
    /// control-plane sends, which don't touch the ring's park flag.
    fn wake_worker(&self) {
        if let Some(rp) = &self.ring {
            rp.wake_consumer();
        }
    }
}

/// Convert a typed durability error into the health-gauge form: the
/// stable class name for programmatic branching plus the display detail.
fn storage_fault(e: &DurabilityError) -> StorageFault {
    StorageFault {
        class: e.class().name().to_string(),
        detail: e.to_string(),
    }
}

/// Run `op` under the storage policy: transient (retryable-class) faults
/// sleep the exponential backoff and retry up to `policy.retries` times,
/// counting each retry into `retries`; a persistent or non-retryable
/// fault is returned for the caller to degrade on.
fn with_storage_retries<T>(
    policy: &StoragePolicy,
    retries: &AtomicU64,
    mut op: impl FnMut() -> Result<T, DurabilityError>,
) -> Result<T, DurabilityError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt < policy.retries => {
                attempt += 1;
                retries.fetch_add(1, Ordering::Relaxed);
                let backoff = policy.backoff_for(attempt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Scrubber state shared between one shard's caller-side durability
/// state, the background scrubber thread, and the snapshotter.
#[derive(Default)]
struct ScrubShared {
    /// Completed scrub passes over this shard's directory.
    passes: AtomicU64,
    /// Corrupt artifacts found (snapshots + sealed WAL segments).
    corrupt_found: AtomicU64,
    /// Snapshots renamed to `.corrupt`.
    quarantined: AtomicU64,
    /// Set when a quarantine removed a snapshot from the recovery set:
    /// the next checkpoint must produce a fresh snapshot, and WAL pruning
    /// is suspended until it lands (the WAL is the only full copy).
    snap_needed: AtomicBool,
}

impl ScrubShared {
    /// Fold one finished scrub pass into the shared counters.
    fn absorb(&self, report: &ScrubReport) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        self.corrupt_found
            .fetch_add(report.corrupt_found(), Ordering::Relaxed);
        self.quarantined
            .fetch_add(report.quarantined.len() as u64, Ordering::Relaxed);
        if report.wants_fresh_snapshot() {
            self.snap_needed.store(true, Ordering::Release);
        }
    }
}

/// One scrub pass over a shard directory from the background thread: the
/// active WAL segment (highest base sequence) is skipped — only the live
/// writer knows its true tail, and sealed segments are the ones whose
/// damage is real. Directory-level failures are swallowed: scrubbing is
/// advisory and must never take the runtime down.
fn scrub_pass(vfs: &Arc<dyn Vfs>, dir: &Path, shared: &ScrubShared) {
    let active = list_segments_with(vfs, dir)
        .ok()
        .and_then(|segs| segs.last().map(|(_, p)| p.clone()));
    if let Ok(report) = scrub_shard_dir(vfs, dir, active.as_deref()) {
        shared.absorb(&report);
    }
}

/// One background snapshot: a kernel clone to serialize, checksum, and
/// rotate, entirely off the ingest path.
struct SnapshotJob<K> {
    dir: PathBuf,
    meta: SnapshotMeta,
    kernel: K,
    /// Session high-water marks as of `meta.wal_seq` (never the live
    /// table — marks durable only *past* the gate would dedup replayed
    /// retries against records a torn tail lost).
    sessions: Vec<(u64, u64)>,
    keep: usize,
    busy: Arc<AtomicBool>,
    snapped_seq: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
    vfs: Arc<dyn Vfs>,
    policy: StoragePolicy,
    retries: Arc<AtomicU64>,
    /// First persistent snapshot-write failure, promoted to shard
    /// degradation by the caller thread on its next durable operation.
    fatal: Arc<Mutex<Option<DurabilityError>>>,
    scrub: Arc<ScrubShared>,
}

/// One deferred WAL fsync for the background syncer thread: the segment
/// to make durable plus the owning shard's retry/fatal plumbing. Sent
/// when the writer defers an [`FsyncPolicy::Interval`] sync off the
/// ingest path (`fdatasync` flushes the inode's dirty pages regardless
/// of which descriptor wrote them, so the syncer uses its own handle).
struct SyncJob {
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    policy: StoragePolicy,
    retries: Arc<AtomicU64>,
    /// First persistent background-fsync failure, promoted to shard
    /// degradation by the caller thread on its next durable operation.
    fatal: Arc<Mutex<Option<DurabilityError>>>,
}

/// Execute one deferred fsync under the storage policy; a persistent
/// failure parks the typed error for the owning shard to degrade on.
fn run_sync_job(job: &SyncJob) {
    let synced = with_storage_retries(&job.policy, &job.retries, || {
        sync_segment_with(&job.vfs, &job.path)
    });
    if let Err(e) = synced {
        job.fatal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_or_insert(e);
    }
}

/// Monomorphized snapshot writer (`write_snapshot_sessions_with`), kept
/// as a plain fn pointer so the non-`Persist`-bounded `finish` path can
/// still write the final snapshot.
type SnapshotWriteFn<K> =
    fn(&Arc<dyn Vfs>, &Path, SnapshotMeta, &K, &[(u64, u64)]) -> Result<PathBuf, DurabilityError>;

/// Per-shard durability state: the WAL appender on the caller's ship path
/// plus the handles feeding the shared background snapshotter thread.
///
/// The WAL sequence space is `wal_base + journal_seq`, so sequence numbers
/// stay strictly monotone *across restarts*: `wal_base` is the highest
/// sequence recovered from disk at spawn, and the in-session journal
/// counts from 1.
struct DurableShard<K> {
    shard_idx: usize,
    dir: PathBuf,
    wal: WalWriter,
    wal_base: u64,
    keep: usize,
    /// Job sender feeding the shared snapshotter thread. `None` once
    /// [`close_snapshots`](Self::close_snapshots) ran at shutdown: the
    /// snapshotter exits when every shard's sender has dropped, and
    /// `finish` joins it **before** writing final snapshots so no
    /// background job can race the final write on the same directory.
    snap_tx: Option<Sender<SnapshotJob<K>>>,
    /// Set while a snapshot job for this shard is in flight; checkpoints
    /// arriving meanwhile skip their snapshot (the WAL covers the gap), so
    /// the ingest path pays at most one extra kernel clone per completed
    /// snapshot write.
    busy: Arc<AtomicBool>,
    /// WAL-space sequence covered by the last *completed* snapshot; the
    /// caller prunes covered WAL segments when this advances.
    snapped_seq: Arc<AtomicU64>,
    snap_errors: Arc<AtomicU64>,
    /// `snapped_seq` value at the last prune, to prune only on change.
    pruned_seq: u64,
    /// Writes the shard's snapshots (see [`SnapshotWriteFn`]).
    write: SnapshotWriteFn<K>,
    /// Whether spawn restored state from disk (snapshot or WAL).
    recovered: bool,
    /// Keys replayed from the WAL at spawn.
    replayed_keys: u64,
    /// Records appended this session.
    wal_records: u64,
    /// Storage backend (the real filesystem, or a fault-injecting one).
    vfs: Arc<dyn Vfs>,
    /// Retry/degrade policy for storage faults.
    policy: StoragePolicy,
    /// WAL operations retried after a transient fault.
    wal_retries: AtomicU64,
    /// Job sender feeding the background WAL-syncer thread (deferred
    /// interval fsyncs). `None` for non-deferring configs and after
    /// [`close_snapshots`](Self::close_snapshots) at shutdown.
    sync_tx: Option<Sender<SyncJob>>,
    /// Deferred fsyncs retried on the WAL-syncer thread.
    bg_sync_retries: Arc<AtomicU64>,
    /// Interval fsyncs handed to the background syncer this session.
    deferred_fsyncs: u64,
    /// Snapshot writes retried on the snapshotter thread.
    snap_retries: Arc<AtomicU64>,
    /// First persistent snapshotter failure, promoted to `degraded` here.
    snap_fatal: Arc<Mutex<Option<DurabilityError>>>,
    /// Session annotations appended this session and not yet folded into
    /// a snapshot's mark table: `(wal_seq, session_id, client_seq)` in
    /// WAL order. Drained up to the gate at every scheduled snapshot, so
    /// the queue holds at most one checkpoint interval of batches.
    pending_ann: VecDeque<(u64, u64, u64)>,
    /// Session high-water marks as of the last snapshot gate, carried
    /// across restarts via the snapshot's session section (seeded from
    /// the `RecoveryReport` at spawn — WAL pruning must not lose marks).
    snap_sessions: HashMap<u64, u64>,
    /// Eviction cap for `snap_sessions` (mirrors the in-memory table).
    session_cap: usize,
    /// Scrubber state shared with the background scrub thread.
    scrub: Arc<ScrubShared>,
    /// **Disk-sick degraded mode**: set when a storage fault survived the
    /// retry budget (or was structural). The WAL and snapshotting stop;
    /// ingest continues and stays correct/one-sided; the typed error is
    /// preserved so callers can branch on its class (`ENOSPC` vs
    /// corruption) through health and `wal_checkpoint`.
    degraded: Option<DurabilityError>,
}

impl<K> DurableShard<K> {
    /// Promote a persistent snapshotter-thread failure into disk-sick
    /// degraded mode (checked on every durable operation, so the caller
    /// thread notices within one batch).
    fn check_snapshotter(&mut self) {
        if self.degraded.is_some() {
            return;
        }
        let fatal = self
            .snap_fatal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(e) = fatal {
            self.degraded = Some(e);
        }
    }

    /// Whether the snapshotter has hit a persistent failure that this
    /// shard has not yet promoted to `degraded` (health must not lag the
    /// snapshotter by a batch).
    fn has_pending_fatal(&self) -> bool {
        self.snap_fatal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// The degrading fault in gauge form, if any.
    fn fault_gauge(&self) -> Option<StorageFault> {
        if let Some(e) = &self.degraded {
            return Some(storage_fault(e));
        }
        self.snap_fatal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(storage_fault)
    }

    /// Append one shipped batch to the WAL (journal seq space) and prune
    /// segments behind the last completed background snapshot.
    ///
    /// Storage faults follow the policy: the record write rolls back to
    /// the last committed length and is retried with backoff (same
    /// sequence — replay dedups nothing because nothing was committed);
    /// the fsync and roll phases are idempotent and retried in place. A
    /// fault that survives the budget degrades the shard.
    fn append(&mut self, seq: u64, keys: &[u64], ann: Option<(u64, u64)>) {
        self.check_snapshotter();
        if self.degraded.is_some() {
            return;
        }
        let wal_seq = self.wal_base + seq;
        let result = if self.wal.group_commit_enabled() {
            self.append_grouped(wal_seq, keys, ann)
        } else {
            self.append_immediate(wal_seq, keys, ann)
        };
        if let Err(e) = result {
            self.degraded = Some(e);
            return;
        }
        // The annotation is durable with the record; queue it for the
        // next snapshot's session-mark table.
        if let Some((sid, cseq)) = ann {
            self.pending_ann.push_back((wal_seq, sid, cseq));
        }
        // An interval fsync the writer deferred goes to the background
        // syncer so ingest never waits on writeback. The active segment
        // is the only one that can carry a deferral — rolling fsyncs the
        // old segment inline — and `wal_checkpoint`'s inline `sync()`
        // still covers it, so the ack barrier is unchanged.
        if self.wal.take_deferred_sync() {
            self.deferred_fsyncs += 1;
            if let Some(tx) = &self.sync_tx {
                let _ = tx.send(SyncJob {
                    path: self.wal.active_segment().to_path_buf(),
                    vfs: Arc::clone(&self.vfs),
                    policy: self.policy,
                    retries: Arc::clone(&self.bg_sync_retries),
                    fatal: Arc::clone(&self.snap_fatal),
                });
            }
        }
        self.wal_records += 1;
        // While a quarantine has the WAL as the only full copy, pruning
        // is suspended until a fresh snapshot lands.
        if self.scrub.snap_needed.load(Ordering::Acquire) {
            return;
        }
        let snapped = self.snapped_seq.load(Ordering::Acquire);
        if snapped > self.pruned_seq {
            self.wal.prune_covered(snapped);
            self.pruned_seq = snapped;
        }
    }

    /// The pre-group-commit append path: one write (+ policy fsync) per
    /// record.
    ///
    /// The record phase cannot use the generic retry helper verbatim: a
    /// failed write is rolled back to the committed length before any
    /// retry, and when that rollback *also* failed the writer is
    /// poisoned — retrying would just report the poisoning instead of
    /// the root cause (e.g. ENOSPC), so break out on the original error.
    fn append_immediate(
        &mut self,
        wal_seq: u64,
        keys: &[u64],
        ann: Option<(u64, u64)>,
    ) -> Result<(), DurabilityError> {
        let mut attempt = 0u32;
        loop {
            match self.wal.append_record_annotated(wal_seq, keys, ann) {
                Ok(()) => break,
                Err(e) => {
                    if !e.is_retryable() || self.wal.is_poisoned() || attempt >= self.policy.retries
                    {
                        return Err(e);
                    }
                    attempt += 1;
                    self.wal_retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.policy.backoff_for(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
        with_storage_retries(&self.policy, &self.wal_retries, || self.wal.policy_sync())?;
        with_storage_retries(&self.policy, &self.wal_retries, || self.wal.maybe_roll())
    }

    /// The group-commit append path: stage (pure buffering, no I/O),
    /// flush when a group bound is hit, apply the fsync policy per
    /// flushed group, maybe roll. The flush phase mirrors the immediate
    /// path's retry shape — a failed flush rolls back and *keeps* the
    /// staged group so the retry rewrites the identical bytes, but a
    /// failed rollback poisons the writer and must surface the root
    /// cause, not the poisoning.
    fn append_grouped(
        &mut self,
        wal_seq: u64,
        keys: &[u64],
        ann: Option<(u64, u64)>,
    ) -> Result<(), DurabilityError> {
        self.wal.stage_record_annotated(wal_seq, keys, ann)?;
        let mut attempt = 0u32;
        loop {
            match self.wal.flush_due() {
                Ok(()) => break,
                Err(e) => {
                    if !e.is_retryable() || self.wal.is_poisoned() || attempt >= self.policy.retries
                    {
                        return Err(e);
                    }
                    attempt += 1;
                    self.wal_retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.policy.backoff_for(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
        with_storage_retries(&self.policy, &self.wal_retries, || {
            self.wal.group_policy_sync()
        })?;
        with_storage_retries(&self.policy, &self.wal_retries, || self.wal.maybe_roll())
    }

    /// Hand a checkpointed kernel to the snapshotter unless one is already
    /// in flight for this shard (the clone is only paid when a job is
    /// actually scheduled).
    fn schedule_snapshot(&mut self, seq: u64, ops: u64, kernel: &K)
    where
        K: Clone,
    {
        self.check_snapshotter();
        if self.snap_tx.is_none() {
            return;
        }
        if self.degraded.is_some() || self.busy.swap(true, Ordering::AcqRel) {
            return;
        }
        let wal_seq = self.wal_base + seq;
        // Fold only once the job is definitely enqueued, and only marks
        // durable at or below the gate: a mark ahead of the snapshot's
        // WAL coverage would dedup retries whose records a crash lost.
        self.fold_sessions_upto(wal_seq);
        let job = SnapshotJob {
            dir: self.dir.clone(),
            meta: SnapshotMeta {
                shard: self.shard_idx as u64,
                wal_seq,
                ops,
            },
            kernel: kernel.clone(),
            sessions: self.sessions_vec(),
            keep: self.keep,
            busy: Arc::clone(&self.busy),
            snapped_seq: Arc::clone(&self.snapped_seq),
            errors: Arc::clone(&self.snap_errors),
            vfs: Arc::clone(&self.vfs),
            policy: self.policy,
            retries: Arc::clone(&self.snap_retries),
            fatal: Arc::clone(&self.snap_fatal),
            scrub: Arc::clone(&self.scrub),
        };
        let sent = self
            .snap_tx
            .as_ref()
            .expect("sender checked above")
            .send(job);
        if sent.is_err() {
            self.busy.store(false, Ordering::Release);
        }
    }

    /// `wal.sync()` under the storage policy's retry budget, with the
    /// append paths' poison handling: the flush inside `sync` rolls a
    /// failed write back, and when that rollback *also* failed the
    /// writer is poisoned — a generic retry would then report the
    /// poisoning instead of the root cause (e.g. a full disk), so break
    /// out on the original error.
    fn sync_with_retries(&mut self) -> Result<(), DurabilityError> {
        let mut attempt = 0u32;
        loop {
            match self.wal.sync() {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if !e.is_retryable() || self.wal.is_poisoned() || attempt >= self.policy.retries
                    {
                        return Err(e);
                    }
                    attempt += 1;
                    self.wal_retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.policy.backoff_for(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }

    /// Max-fold every pending session annotation whose WAL sequence is at
    /// or below `gate` into the persistent mark table, then enforce the
    /// eviction cap (stalest mark — the lowest client seq — goes first).
    fn fold_sessions_upto(&mut self, gate: u64) {
        while let Some(&(wal_seq, sid, cseq)) = self.pending_ann.front() {
            if wal_seq > gate {
                break;
            }
            self.pending_ann.pop_front();
            let hwm = self.snap_sessions.entry(sid).or_insert(0);
            *hwm = (*hwm).max(cseq);
        }
        while self.snap_sessions.len() > self.session_cap {
            let Some((&evict, _)) = self.snap_sessions.iter().min_by_key(|&(_, &c)| c) else {
                break;
            };
            self.snap_sessions.remove(&evict);
        }
    }

    /// The persistent mark table in snapshot-section form (sorted by
    /// session id for deterministic bytes).
    fn sessions_vec(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.snap_sessions.iter().map(|(&s, &c)| (s, c)).collect();
        v.sort_unstable();
        v
    }

    /// Drop this shard's background-job senders (snapshots + deferred
    /// fsyncs). Once every shard has closed, the snapshotter and WAL
    /// syncer drain their queues and exit, making their joins bounded —
    /// shutdown calls this on all shards before joining either thread.
    fn close_snapshots(&mut self) {
        self.snap_tx = None;
        self.sync_tx = None;
    }

    /// Final snapshot + WAL prune on clean shutdown: after this, recovery
    /// needs only the snapshot (the WAL is fully covered). A degraded
    /// shard skips it entirely — its durable prefix on disk is already
    /// the best state it can promise, and writing through a sick disk
    /// could corrupt that.
    fn finalize(&mut self, kernel: &K, ops: u64) {
        self.check_snapshotter();
        if self.degraded.is_some() {
            return;
        }
        let _ = self.wal.sync();
        let meta = SnapshotMeta {
            shard: self.shard_idx as u64,
            wal_seq: self.wal.last_seq(),
            ops,
        };
        // The final snapshot covers the whole WAL, so every pending
        // annotation is at or below its gate.
        self.fold_sessions_upto(u64::MAX);
        let sessions = self.sessions_vec();
        if (self.write)(&self.vfs, &self.dir, meta, kernel, &sessions).is_ok() {
            prune_snapshots_with(&self.vfs, &self.dir, self.keep);
            self.wal.prune_covered(meta.wal_seq);
        } else {
            self.snap_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Sentinel in the shared pinned-core slot meaning "not pinned".
const UNPINNED: usize = usize::MAX;

/// How long a ring-plane worker parks per slice while idle. Short enough
/// that a lost wakeup or a control message arriving mid-park costs at
/// most one slice; long enough that an idle shard burns no CPU.
const WORKER_PARK_SLICE: Duration = Duration::from_millis(1);

/// How long the background WAL syncer dwells after a deferred-fsync
/// request before issuing it, coalescing every request (across all
/// shards) that lands in the window into one fsync per segment. Bounds
/// the extra crash-window a deferral can accumulate beyond the interval
/// policy itself.
const WAL_SYNC_DWELL: Duration = Duration::from_millis(10);

/// The apply/publish/checkpoint machinery of one shard worker, factored
/// out of the loop so both data planes (ring and channel) share it.
struct WorkerCtx<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    kernel: ASketch<F, S>,
    out: Sender<FromShard<ASketch<F, S>>>,
    snap: Arc<ShardSnapshot<S>>,
    depth: Arc<AtomicUsize>,
    gen: u64,
    publish_interval: u64,
    view_interval: u64,
    checkpoint_interval: u64,
    items: Vec<FilterItem>,
    tuples: Vec<Tuple>,
    since_pub: u64,
    since_view: u64,
    since_ckpt: u64,
}

impl<F, S> WorkerCtx<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Apply one batch through the sequential kernel and run the interval
    /// publishes/checkpoints it triggers.
    fn apply(&mut self, seq: u64, keys: &[u64]) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
        self.tuples.clear();
        self.tuples.extend(keys.iter().map(|&k| (k, 1i64)));
        self.kernel.update_batch(&self.tuples);
        let n = keys.len() as u64;
        self.since_pub += n;
        self.since_view += n;
        self.since_ckpt += n;
        if self.since_pub >= self.publish_interval {
            self.since_pub = 0;
            publish_filter(&self.kernel, &self.snap, &mut self.items, self.gen);
        }
        if self.since_view >= self.view_interval {
            self.since_view = 0;
            publish_view(&self.kernel, &self.snap, self.gen);
        }
        if self.since_ckpt >= self.checkpoint_interval {
            self.since_ckpt = 0;
            let _ = self.out.send(FromShard::Checkpoint {
                seq,
                snapshot: self.kernel.clone(),
            });
        }
    }

    /// Publish both the filter snapshot and the sketch view.
    fn publish_all(&mut self) {
        publish_filter(&self.kernel, &self.snap, &mut self.items, self.gen);
        publish_view(&self.kernel, &self.snap, self.gen);
    }
}

/// The shard-worker loop: apply batches through the sequential kernel,
/// publish snapshots on their intervals, checkpoint for the journal, and
/// publish one final time when the control channel disconnects.
///
/// On the ring plane the loop greedily drains the data ring, polls the
/// control channel, and parks on the ring (short slices) only when both
/// are idle. Batches pushed before a control-plane `Sync` send
/// happen-before it, so draining the ring on `Sync` sees every batch
/// shipped before the barrier — the barrier's exactness is plane-
/// independent. Shutdown is the control channel disconnecting; the ring
/// is drained one last time first, so a clean shutdown loses nothing.
#[allow(clippy::too_many_arguments)]
fn run_shard_worker<F, S>(
    kernel: ASketch<F, S>,
    rx: Receiver<ToShard>,
    ring_rx: Option<ring::Consumer<RingBatch>>,
    out: Sender<FromShard<ASketch<F, S>>>,
    snap: Arc<ShardSnapshot<S>>,
    depth: Arc<AtomicUsize>,
    gen: u64,
    cfg: ConcurrentConfig,
    pin: Option<(usize, Arc<AtomicUsize>)>,
) -> ASketch<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    if let Some((core, slot)) = pin {
        if affinity::pin_current_thread(core).is_ok() {
            slot.store(core, Ordering::Release);
        }
    }
    let mut ctx = WorkerCtx {
        kernel,
        out,
        snap,
        depth,
        gen,
        publish_interval: cfg.publish_interval.max(1),
        view_interval: cfg.view_interval.max(1),
        checkpoint_interval: cfg.supervision.checkpoint_interval.max(1),
        items: Vec::new(),
        tuples: Vec::with_capacity(cfg.batch),
        since_pub: 0,
        since_view: 0,
        since_ckpt: 0,
    };
    // Fresh (or respawned) worker: make the snapshot reflect this kernel
    // immediately so readers never regress behind a restart.
    ctx.publish_all();
    match ring_rx {
        Some(ring) => loop {
            let mut busy = false;
            while let Some((seq, keys)) = ring.try_pop() {
                busy = true;
                ctx.apply(seq, &keys);
            }
            match rx.try_recv() {
                Ok(ToShard::Batch { seq, keys }) => ctx.apply(seq, &keys),
                Ok(ToShard::Sync { reply }) => {
                    // Everything pushed before the barrier is visible
                    // (see above): drain, then publish and answer.
                    while let Some((seq, keys)) = ring.try_pop() {
                        ctx.apply(seq, &keys);
                    }
                    ctx.publish_all();
                    let _ = reply.send(ctx.kernel.ops_applied());
                }
                Err(TryRecvError::Empty) => {
                    if !busy {
                        ring.park(WORKER_PARK_SLICE);
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    while let Some((seq, keys)) = ring.try_pop() {
                        ctx.apply(seq, &keys);
                    }
                    break;
                }
            }
        },
        None => {
            while let Ok(msg) = rx.recv() {
                match msg {
                    ToShard::Batch { seq, keys } => ctx.apply(seq, &keys),
                    ToShard::Sync { reply } => {
                        ctx.publish_all();
                        let _ = reply.send(ctx.kernel.ops_applied());
                    }
                }
            }
        }
    }
    // Disconnected: final publish so handles outlive the runtime
    // (dropped if this worker was abandoned and its generation retired).
    ctx.publish_all();
    ctx.kernel
}

/// The core a pinned worker for `shard_idx` targets, `None` when pinning
/// is off.
fn worker_core(cfg: &ConcurrentConfig, shard_idx: usize) -> Option<usize> {
    cfg.pin_workers
        .then(|| shard_idx % affinity::available_cores())
}

fn spawn_shard_worker<F, S>(
    kernel: ASketch<F, S>,
    snap: &Arc<ShardSnapshot<S>>,
    depth: &Arc<AtomicUsize>,
    gen: u64,
    cfg: &ConcurrentConfig,
    shard_idx: usize,
    pinned: &Arc<AtomicUsize>,
) -> ShardLink<ASketch<F, S>>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    let (tx, rx) = channel::bounded::<ToShard>(cfg.supervision.queue_capacity);
    // Checkpoints are unbounded: the worker must never block on the caller.
    let (out_tx, out_rx) = channel::unbounded::<FromShard<ASketch<F, S>>>();
    let (ring_tx, ring_rx, capacity) = match cfg.data_plane {
        DataPlane::Ring => {
            let (p, c) = ring::spsc::<RingBatch>(cfg.supervision.queue_capacity.max(2));
            let capacity = p.capacity();
            (Some(p), Some(c), capacity)
        }
        DataPlane::Channel => (None, None, cfg.supervision.queue_capacity),
    };
    let pin = worker_core(cfg, shard_idx).map(|core| (core, Arc::clone(pinned)));
    pinned.store(UNPINNED, Ordering::Release);
    let snap = Arc::clone(snap);
    let depth = Arc::clone(depth);
    let cfg = cfg.clone();
    let handle = std::thread::spawn(move || {
        run_shard_worker(kernel, rx, ring_rx, out_tx, snap, depth, gen, cfg, pin)
    });
    ShardLink {
        tx,
        ring: ring_tx,
        capacity,
        rx: out_rx,
        handle,
    }
}

/// Caller-side state of one shard: the live worker (or the degraded inline
/// kernel), its journal, snapshot, spill buffer, and fault counters.
struct ShardState<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    shard_idx: usize,
    link: Option<ShardLink<ASketch<F, S>>>,
    journal: Journal<ASketch<F, S>>,
    snap: Arc<ShardSnapshot<S>>,
    /// Core the live worker pinned itself to ([`UNPINNED`] when pinning
    /// is off, failed, or the worker hasn't started yet). Written by the
    /// worker thread at startup, read by the gauge.
    pinned: Arc<AtomicUsize>,
    /// The snapshot's current writer generation: held by the live worker
    /// (or the inline kernel once degraded), bumped on every fail-over.
    writer_gen: u64,
    /// Batches sent and not yet applied by the worker (queue depth gauge).
    /// Replaced wholesale on fail-over — an abandoned worker keeps
    /// decrementing its own (old) counter, which would otherwise wrap.
    depth: Arc<AtomicUsize>,
    spill: VecDeque<ToShard>,
    /// The kernel applied inline once the restart budget is spent.
    inline: Option<ASketch<F, S>>,
    /// Durability state (WAL + snapshot scheduling); `None` for a
    /// non-durable runtime.
    durable: Option<DurableShard<ASketch<F, S>>>,
    routed: u64,
    queue_full_events: u64,
    spilled: u64,
    restarts: u64,
    failures: u64,
    checkpoints: u64,
    last_error: Option<PipelineError>,
}

impl<F, S> ShardState<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    fn new(
        shard_idx: usize,
        kernel: ASketch<F, S>,
        cfg: &ConcurrentConfig,
        durable: Option<DurableShard<ASketch<F, S>>>,
    ) -> Self {
        let mut items = Vec::new();
        kernel.snapshot_filter_into(&mut items);
        let snap = Arc::new(ShardSnapshot {
            filter: FilterSnapshot::new(kernel.filter().capacity().max(items.len())),
            view: kernel.sketch().new_view(),
            view_epoch: AtomicU64::new(kernel.ops_applied()),
            writer_gen: Mutex::new(0),
        });
        snap.filter.publish(&items, kernel.ops_applied());
        let journal = Journal::new(kernel.clone());
        let depth = Arc::new(AtomicUsize::new(0));
        let pinned = Arc::new(AtomicUsize::new(UNPINNED));
        let link = spawn_shard_worker(kernel, &snap, &depth, 0, cfg, shard_idx, &pinned);
        Self {
            shard_idx,
            link: Some(link),
            journal,
            snap,
            pinned,
            writer_gen: 0,
            depth,
            spill: VecDeque::new(),
            inline: None,
            durable,
            routed: 0,
            queue_full_events: 0,
            spilled: 0,
            restarts: 0,
            failures: 0,
            checkpoints: 0,
            last_error: None,
        }
    }

    /// Harvest queued checkpoints; prunes the replay journal and (durable
    /// runtimes) schedules a background snapshot from the checkpointed
    /// kernel — the snapshot clone rides the checkpoint clone the worker
    /// already paid for, and serialization happens on the snapshotter
    /// thread, never here.
    fn drain_checkpoints(&mut self) {
        let Some(link) = self.link.as_ref() else {
            return;
        };
        let mut received = Vec::new();
        while let Ok(FromShard::Checkpoint { seq, snapshot }) = link.rx.try_recv() {
            received.push((seq, snapshot));
        }
        for (seq, snapshot) in received {
            self.checkpoints += 1;
            if let Some(d) = self.durable.as_mut() {
                d.schedule_snapshot(seq, snapshot.ops_applied(), &snapshot);
            }
            self.journal.on_checkpoint(seq, snapshot);
        }
    }

    /// Apply a batch inline (degraded mode) and republish snapshots so
    /// readers keep seeing fresh state.
    fn apply_inline(&mut self, keys: &[u64]) {
        let kernel = self
            .inline
            .as_mut()
            .expect("degraded shard has an inline kernel");
        kernel.insert_batch(keys);
        let kernel = self
            .inline
            .as_ref()
            .expect("degraded shard has an inline kernel");
        let mut items = Vec::new();
        publish_filter(kernel, &self.snap, &mut items, self.writer_gen);
        publish_view(kernel, &self.snap, self.writer_gen);
    }

    /// Tear down a failed worker, reconstruct from checkpoint + journal,
    /// and respawn or degrade. Mirrors the pipeline's fail-over (including
    /// the no-resend rule: in-flight journaled batches are folded into the
    /// restore, never retransmitted).
    fn fail_over(&mut self, err: Option<PipelineError>, cfg: &ConcurrentConfig) {
        let Some(link) = self.link.take() else { return };
        self.failures += 1;
        while let Ok(FromShard::Checkpoint { seq, snapshot }) = link.rx.try_recv() {
            self.checkpoints += 1;
            self.journal.on_checkpoint(seq, snapshot);
        }
        drop(link.tx);
        let mut finished = link.handle.is_finished();
        if !finished {
            std::thread::sleep(Duration::from_millis(2));
            finished = link.handle.is_finished();
        }
        let error = if finished {
            match link.handle.join() {
                Err(payload) => PipelineError::WorkerPanicked(panic_message(payload)),
                Ok(_) => err.unwrap_or(PipelineError::Disconnected),
            }
        } else {
            err.unwrap_or(PipelineError::EstimateTimeout)
        };
        self.last_error = Some(error);
        // Spilled-but-unsent batches are journaled; the restore replays
        // them, so the spill queue resets.
        self.spill.clear();
        // Retire the old writer before anything republishes: an abandoned
        // worker that is still alive keeps draining its channel and
        // publishing, and the gate drops those stale publishes instead of
        // letting them race the replacement (torn pairs, epoch regression).
        // The journal restore covers everything routed, so the replacement
        // republishes at an epoch >= anything the old worker published.
        self.writer_gen = self.snap.retire_writer();
        // Fresh depth gauge: the abandoned worker keeps fetch_sub-ing its
        // own counter for every batch it drains, which would wrap a shared
        // one to ~2^64.
        self.depth = Arc::new(AtomicUsize::new(0));
        let restored = self.journal.restore();
        if self.restarts < u64::from(cfg.supervision.max_restarts) {
            self.restarts += 1;
            let backoff = cfg.supervision.backoff_for(self.restarts);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            self.journal.reset(restored.clone());
            // The respawned worker publishes the restored state on entry,
            // so readers catch up without waiting a publish interval. It
            // gets a *fresh* ring (like the fresh depth gauge): batches
            // stranded in the abandoned worker's ring are journaled, so
            // the restore already covers them.
            self.link = Some(spawn_shard_worker(
                restored,
                &self.snap,
                &self.depth,
                self.writer_gen,
                cfg,
                self.shard_idx,
                &self.pinned,
            ));
        } else {
            let mut items = Vec::new();
            publish_filter(&restored, &self.snap, &mut items, self.writer_gen);
            publish_view(&restored, &self.snap, self.writer_gen);
            self.inline = Some(restored);
        }
    }

    /// Flush as much of the spill queue as fits without blocking.
    ///
    /// The depth gauge is incremented *before* each send and rolled back
    /// on failure (here and in every other send path): the worker
    /// decrements on receive, so an increment-after-send would let the
    /// decrement land first and transiently wrap the unsigned gauge.
    fn flush_spill_try(&mut self, cfg: &ConcurrentConfig) {
        while let Some(msg) = self.spill.pop_front() {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            self.depth.fetch_add(1, Ordering::Relaxed);
            match link.try_send_data(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(m)) => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    self.spill.push_front(m);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    self.fail_over(None, cfg);
                    return;
                }
            }
        }
    }

    /// Flush the whole spill queue, waiting for channel space; a wedged
    /// worker is failed over (the journal preserves every spilled batch).
    fn flush_spill_sync(&mut self, cfg: &ConcurrentConfig) {
        while let Some(msg) = self.spill.pop_front() {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            self.depth.fetch_add(1, Ordering::Relaxed);
            match link.send_data_timeout(msg, cfg.supervision.send_timeout) {
                Ok(()) => {}
                Err(SendTimeoutError::Timeout(_)) => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    self.fail_over(Some(PipelineError::EstimateTimeout), cfg);
                    return;
                }
                Err(SendTimeoutError::Disconnected(_)) => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    self.fail_over(None, cfg);
                    return;
                }
            }
        }
    }

    /// Append to the spill queue, degrading to a synchronous flush when the
    /// spill itself is full — memory stays bounded, nothing is dropped.
    fn push_spill(&mut self, msg: ToShard, cfg: &ConcurrentConfig) {
        if self.spill.len() >= cfg.supervision.spill_capacity.max(1) {
            let generation = self.failures;
            self.flush_spill_sync(cfg);
            if self.failures != generation || self.link.is_none() {
                // Failed over mid-flush: `msg` is journaled and folded
                // into the restore — abandon it or it double-counts.
                return;
            }
        }
        self.spilled += 1;
        self.spill.push_back(msg);
    }

    /// Blocking send with a wedge bound.
    fn send_sync(&mut self, msg: ToShard, cfg: &ConcurrentConfig) {
        let Some(link) = self.link.as_ref() else {
            return;
        };
        self.depth.fetch_add(1, Ordering::Relaxed);
        match link.send_data_timeout(msg, cfg.supervision.send_timeout) {
            Ok(()) => {}
            Err(SendTimeoutError::Timeout(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.fail_over(Some(PipelineError::EstimateTimeout), cfg);
            }
            Err(SendTimeoutError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.fail_over(None, cfg);
            }
        }
    }

    /// Ship one full batch to this shard's worker: journal and WAL first
    /// (so no failure mode can lose it), then send under the backpressure
    /// policy. The WAL record piggybacks on the journal's sequence number
    /// — one durable record per batch, written before the batch can reach
    /// the worker, so the on-disk log is always a prefix-or-equal of what
    /// any worker has applied.
    fn ship(&mut self, keys: Vec<u64>, cfg: &ConcurrentConfig) {
        self.ship_annotated(keys, cfg, None);
    }

    /// [`ship`](Self::ship) with an optional exactly-once session
    /// annotation `(session_id, client_seq)` riding the batch's WAL
    /// record: the mark becomes durable atomically with the keys it
    /// covers, so crash replay can never dedup a write it lost (or
    /// re-apply one it kept).
    fn ship_annotated(&mut self, keys: Vec<u64>, cfg: &ConcurrentConfig, ann: Option<(u64, u64)>) {
        self.routed += keys.len() as u64;
        let seq = self.journal.next_seq();
        if let Some(d) = self.durable.as_mut() {
            d.append(seq, &keys, ann);
        }
        if self.link.is_none() {
            self.apply_inline(&keys);
            return;
        }
        for &k in &keys {
            self.journal.record_at(seq, k, 1);
        }
        self.drain_checkpoints();
        let msg = ToShard::Batch { seq, keys };
        // Fail-over generation discipline (see the pipeline): if the spill
        // flush fails over, the journaled `msg` is already folded into the
        // restored kernel — sending it too would double-count.
        let generation = self.failures;
        self.flush_spill_try(cfg);
        if self.failures != generation || self.link.is_none() {
            return;
        }
        if !self.spill.is_empty() {
            self.push_spill(msg, cfg);
            return;
        }
        self.depth.fetch_add(1, Ordering::Relaxed);
        let sent = self
            .link
            .as_ref()
            .expect("worker link checked above")
            .try_send_data(msg);
        match sent {
            Ok(()) => {}
            Err(TrySendError::Full(m)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.queue_full_events += 1;
                match cfg.supervision.backpressure {
                    BackpressurePolicy::Block => self.send_sync(m, cfg),
                    BackpressurePolicy::InlineFallback => self.push_spill(m, cfg),
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                self.fail_over(None, cfg);
            }
        }
    }

    /// Whether one more shipped batch stays within `bound` in-flight
    /// batches on this shard's data plane (clamped to the plane's real
    /// capacity). Degraded shards apply inline — always room; a non-empty
    /// spill means the plane is already backed up past its capacity.
    fn data_room(&self, bound: usize) -> bool {
        let Some(link) = self.link.as_ref() else {
            return true;
        };
        if !self.spill.is_empty() {
            return false;
        }
        self.depth.load(Ordering::Relaxed) < bound.min(link.capacity).max(1)
    }

    /// Barrier against this shard: every routed batch applied and published.
    /// Bounded retries — each failed round trip consumes a restart (or ends
    /// degraded, where state is already published inline).
    fn sync(&mut self, cfg: &ConcurrentConfig) {
        let max_rounds = u64::from(cfg.supervision.max_restarts) + 2;
        for _ in 0..max_rounds {
            self.flush_spill_sync(cfg);
            let Some(link) = self.link.as_ref() else {
                return; // degraded: apply_inline already published
            };
            let (reply_tx, reply_rx) = channel::bounded(1);
            let sent = link.tx.send_timeout(
                ToShard::Sync { reply: reply_tx },
                cfg.supervision.send_timeout,
            );
            // A ring-plane worker may be parked on an empty ring; the
            // control send doesn't touch the park flag, so nudge it
            // rather than waiting out a park slice.
            link.wake_worker();
            match sent {
                Ok(()) => match reply_rx.recv_timeout(cfg.supervision.send_timeout) {
                    Ok(_epoch) => {
                        self.drain_checkpoints();
                        return;
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        self.fail_over(Some(PipelineError::EstimateTimeout), cfg);
                    }
                    Err(RecvTimeoutError::Disconnected) => self.fail_over(None, cfg),
                },
                Err(SendTimeoutError::Timeout(_)) => {
                    self.fail_over(Some(PipelineError::EstimateTimeout), cfg);
                }
                Err(SendTimeoutError::Disconnected(_)) => self.fail_over(None, cfg),
            }
        }
    }

    fn gauge(&self, shard: usize, cfg: &ConcurrentConfig) -> ShardGauge {
        let pinned = self.pinned.load(Ordering::Acquire);
        ShardGauge {
            shard,
            queue_depth: self.depth.load(Ordering::Relaxed),
            queue_capacity: self
                .link
                .as_ref()
                .map_or(cfg.supervision.queue_capacity, |l| l.capacity),
            routed_ops: self.routed,
            published_epoch: self.snap.filter_epoch(),
            view_epoch: self.snap.view_epoch(),
            reader_retries: self.snap.reader_retries(),
            restarts: self.restarts,
            worker_failures: self.failures,
            degraded: self.inline.is_some(),
            recovered: self.durable.as_ref().is_some_and(|d| d.recovered),
            replayed_keys: self.durable.as_ref().map_or(0, |d| d.replayed_keys),
            wal_records: self.durable.as_ref().map_or(0, |d| d.wal_records),
            snapshot_seq: self
                .durable
                .as_ref()
                .map_or(0, |d| d.snapped_seq.load(Ordering::Acquire)),
            durability_degraded: self
                .durable
                .as_ref()
                .is_some_and(|d| d.degraded.is_some() || d.has_pending_fatal()),
            wal_retries: self.durable.as_ref().map_or(0, |d| {
                d.wal_retries.load(Ordering::Relaxed) + d.bg_sync_retries.load(Ordering::Relaxed)
            }),
            snapshot_retries: self
                .durable
                .as_ref()
                .map_or(0, |d| d.snap_retries.load(Ordering::Relaxed)),
            last_durability_error: self.durable.as_ref().and_then(DurableShard::fault_gauge),
            scrub_passes: self
                .durable
                .as_ref()
                .map_or(0, |d| d.scrub.passes.load(Ordering::Relaxed)),
            scrub_corruptions: self
                .durable
                .as_ref()
                .map_or(0, |d| d.scrub.corrupt_found.load(Ordering::Relaxed)),
            snapshots_quarantined: self
                .durable
                .as_ref()
                .map_or(0, |d| d.scrub.quarantined.load(Ordering::Relaxed)),
            data_plane: cfg.data_plane.name().to_string(),
            ring_depth: self
                .link
                .as_ref()
                .and_then(|l| l.ring.as_ref())
                .map_or(0, ring::Producer::len),
            wal_group_commits: self.durable.as_ref().map_or(0, |d| d.wal.group_commits()),
            wal_deferred_fsyncs: self.durable.as_ref().map_or(0, |d| d.deferred_fsyncs),
            pinned_core: (pinned != UNPINNED).then_some(pinned),
        }
    }
}

/// A cloneable, thread-safe handle for concurrent point queries against a
/// [`ConcurrentASketch`]'s published snapshots.
///
/// Reads are wait-free: no lock, no channel round trip, no writer stall.
/// Answers reflect each shard's last publish (see the module-level
/// staleness bound); handles stay valid (and frozen at the final state)
/// after the runtime finishes.
pub struct QueryHandle<S: SharedView> {
    snaps: Arc<Vec<Arc<ShardSnapshot<S>>>>,
    partition: KeyPartition,
}

impl<S: SharedView> Clone for QueryHandle<S> {
    fn clone(&self) -> Self {
        Self {
            snaps: Arc::clone(&self.snaps),
            partition: self.partition,
        }
    }
}

impl<S: SharedView> QueryHandle<S> {
    /// Wait-free point query: exact for filter-resident keys (at the last
    /// publish), one-sided via the sketch view otherwise.
    pub fn estimate(&self, key: u64) -> i64 {
        self.snaps[self.partition.shard_of(key)].query(key)
    }

    /// Point queries for a batch of keys, in order.
    ///
    /// Keys are grouped by owning shard **once per batch**: the partition
    /// is resolved exactly once per key and each shard's group is answered
    /// under a single seqlock-stable filter read
    /// ([`ShardSnapshot::query_group`]), so a pipelined `ESTIMATE_BATCH`
    /// does not re-acquire the snapshot per element. Results are
    /// positionally identical to calling [`estimate`](Self::estimate) on
    /// each key in order (differentially tested across every filter kind).
    pub fn estimate_batch(&self, keys: &[u64]) -> Vec<i64> {
        // Tiny batches: grouping buys nothing over the direct path.
        if keys.len() <= 2 {
            return keys.iter().map(|&k| self.estimate(k)).collect();
        }
        let shards = self.partition.shards();
        let mut groups: Vec<Vec<(usize, u64)>> = vec![Vec::new(); shards];
        for (slot, &key) in keys.iter().enumerate() {
            groups[self.partition.shard_of(key)].push((slot, key));
        }
        let mut out = vec![0i64; keys.len()];
        let mut scratch = Vec::new();
        for (shard, group) in groups.iter().enumerate() {
            if !group.is_empty() {
                self.snaps[shard].query_group(group, &mut scratch, &mut out);
            }
        }
        out
    }

    /// Wait-free top-k over the published filter snapshots: each shard's
    /// filter holds its partition's heavy hitters with exact counts, keys
    /// are owned by exactly one shard (no duplicates to merge), so the
    /// global answer is the k largest of the union. Ordered by count
    /// descending, ties by key ascending. Subject to the same staleness
    /// bound as point queries; exact after a `sync`.
    pub fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        let mut items: Vec<(u64, i64)> = Vec::new();
        let mut scratch = Vec::new();
        for snap in self.snaps.iter() {
            snap.filter_items(&mut scratch);
            items.extend(scratch.iter().map(|it| (it.key, it.new_count)));
        }
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items.truncate(k);
        items
    }

    /// The key partition (for callers that co-locate work by shard).
    pub fn partition(&self) -> KeyPartition {
        self.partition
    }

    /// Per-shard snapshot access (epochs, retries).
    pub fn shard(&self, shard: usize) -> &ShardSnapshot<S> {
        &self.snaps[shard]
    }

    /// Oldest filter publish epoch across shards.
    pub fn min_filter_epoch(&self) -> u64 {
        self.snaps
            .iter()
            .map(|s| s.filter_epoch())
            .min()
            .unwrap_or(0)
    }

    /// Total seqlock reader retries across shards (0 in steady state).
    pub fn reader_retries(&self) -> u64 {
        self.snaps.iter().map(|s| s.reader_retries()).sum()
    }
}

/// The concurrent sharded runtime. See the module docs.
pub struct ConcurrentASketch<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    shards: Vec<ShardState<F, S>>,
    router: KeyRouter,
    snaps: Arc<Vec<Arc<ShardSnapshot<S>>>>,
    cfg: ConcurrentConfig,
    /// Per-session per-shard high-water marks for exactly-once sequenced
    /// ingest ([`insert_sessioned`](Self::insert_sessioned)); bounded by
    /// [`ConcurrentConfig::session_cap`] with LRU eviction. Durable
    /// runtimes seed it from recovery and persist it piggyback on WAL
    /// records and snapshots.
    sessions: SessionTable,
    /// Background snapshot writer (durable runtimes only); exits when the
    /// last shard's job sender drops, joined in `finish`.
    snapshotter: Option<JoinHandle<()>>,
    /// Background WAL fsync thread (durable runtimes only): runs the
    /// interval fsyncs the writers defer so ingest never blocks on
    /// writeback. Exits when the last shard's job sender drops; joined in
    /// `finish` before the final snapshots.
    wal_syncer: Option<JoinHandle<()>>,
    /// Background integrity scrubber (durable runtimes with a scrub
    /// interval only): stop flag + thread, joined in `finish`.
    scrubber: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
}

impl<F, S> ConcurrentASketch<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Spawn `cfg.shards` workers, shard `i` owning the kernel built by
    /// `make_kernel(i)`.
    ///
    /// # Panics
    /// Panics if `cfg.shards == 0`.
    pub fn spawn(cfg: ConcurrentConfig, make_kernel: impl Fn(usize) -> ASketch<F, S>) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        let shards: Vec<ShardState<F, S>> = (0..cfg.shards)
            .map(|i| ShardState::new(i, make_kernel(i), &cfg, None))
            .collect();
        let snaps = Arc::new(shards.iter().map(|s| Arc::clone(&s.snap)).collect());
        let router = KeyRouter::new(KeyPartition::new(cfg.shards), cfg.batch.max(1));
        let sessions = SessionTable::new(cfg.session_cap);
        Self {
            shards,
            router,
            snaps,
            cfg,
            sessions,
            snapshotter: None,
            wal_syncer: None,
            scrubber: None,
        }
    }

    /// Route one key to its owning shard (batched; a full batch is shipped
    /// immediately).
    #[inline]
    pub fn insert(&mut self, key: u64) {
        if let Some((shard, batch)) = self.router.push(key) {
            self.shards[shard].ship(batch, &self.cfg);
        }
    }

    /// Route a slice of keys.
    pub fn insert_batch(&mut self, keys: &[u64]) {
        for &key in keys {
            self.insert(key);
        }
    }

    /// Ship pre-partitioned mega-batches straight to their shards,
    /// bypassing the router's per-key accumulation: `batches[i]` goes to
    /// shard `i` whole — one journal sequence, one WAL record, and one
    /// data-plane push per non-empty shard batch, however many network
    /// requests were coalesced into it. The caller owns partitioning
    /// (via [`KeyPartition::shard_of`] from [`partition`](Self::partition))
    /// and per-shard key order; within a shard this is equivalent to
    /// routing the same keys through [`insert_batch`](Self::insert_batch).
    /// Shipped batches are drained to empty; empty slots are untouched.
    ///
    /// # Panics
    /// Panics if `batches.len()` differs from the shard count; debug
    /// builds also assert every key is in its owning shard's batch.
    pub fn insert_sharded(&mut self, batches: &mut [Vec<u64>]) {
        assert_eq!(batches.len(), self.shards.len(), "one batch slot per shard");
        for (shard, batch) in batches.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            debug_assert!(
                batch
                    .iter()
                    .all(|&k| self.router.partition().shard_of(k) == shard),
                "mis-partitioned key in shard {shard} batch"
            );
            let keys = std::mem::take(batch);
            self.shards[shard].ship(keys, &self.cfg);
        }
    }

    /// All-or-nothing [`insert_sharded`](Self::insert_sharded): ship only
    /// if every targeted shard's data plane has room under `max_depth`
    /// in-flight batches (capacity-clamped). Returns `false` — leaving
    /// every batch untouched for the caller to retry or shed — when any
    /// target is backed up. The probe-then-ship pair is race-free because
    /// `&mut self` is the sole producer and workers only drain.
    ///
    /// # Panics
    /// Same contract as [`insert_sharded`](Self::insert_sharded).
    pub fn try_insert_sharded(&mut self, batches: &mut [Vec<u64>], max_depth: usize) -> bool {
        assert_eq!(batches.len(), self.shards.len(), "one batch slot per shard");
        let room = batches
            .iter()
            .enumerate()
            .all(|(shard, batch)| batch.is_empty() || self.shards[shard].data_room(max_depth));
        if room {
            self.insert_sharded(batches);
        }
        room
    }

    /// Session handshake for exactly-once sequenced ingest: register (or
    /// touch) `session_id`, lift every shard mark to at least
    /// `resume_seq` (the client's claimed floor), and return the highest
    /// client sequence that is **fully applied** across shards — the
    /// client may discard everything at or below it and must replay the
    /// rest, which [`insert_sessioned`](Self::insert_sessioned) dedups
    /// shard-by-shard.
    pub fn hello(&mut self, session_id: u64, resume_seq: u64) -> u64 {
        let shards = self.shards.len();
        self.sessions.hello(session_id, resume_seq, shards)
    }

    /// Exactly-once [`insert_sharded`](Self::insert_sharded): apply one
    /// client write (`session_id`, strictly increasing `seq`) at most
    /// once per shard. Shards whose session mark already covers `seq`
    /// skip their part (a retry of an acked-or-applied write); the rest
    /// ship with the `(session_id, seq)` annotation riding their WAL
    /// record so the dedup decision survives crash+replay. Batches are
    /// drained whether shipped or deduped.
    ///
    /// Client sequences must be issued in order per session; replaying a
    /// suffix of unacked writes (in order, any number of times) is the
    /// supported retry shape and never double-counts.
    ///
    /// # Panics
    /// Same contract as [`insert_sharded`](Self::insert_sharded).
    pub fn insert_sessioned(
        &mut self,
        session_id: u64,
        seq: u64,
        batches: &mut [Vec<u64>],
    ) -> SessionOutcome {
        assert_eq!(batches.len(), self.shards.len(), "one batch slot per shard");
        let hwms = self.sessions.touch(session_id, batches.len());
        let mut applied = 0usize;
        let mut any_nonempty = false;
        let mut shipped = false;
        for (shard, batch) in batches.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            any_nonempty = true;
            if hwms[shard] >= seq {
                batch.clear();
                continue;
            }
            debug_assert!(
                batch
                    .iter()
                    .all(|&k| self.router.partition().shard_of(k) == shard),
                "mis-partitioned key in shard {shard} batch"
            );
            let keys = std::mem::take(batch);
            applied += keys.len();
            shipped = true;
            self.shards[shard].ship_annotated(keys, &self.cfg, Some((session_id, seq)));
        }
        // Every shard's in-memory mark advances — including shards that
        // received no keys this seq — so a later retry of the same seq is
        // a full duplicate. Only shards that wrote a record advance
        // durably; after a crash the replayed retry re-partitions
        // identically, so the unmarked shards see only parts they never
        // applied.
        for h in hwms.iter_mut() {
            *h = (*h).max(seq);
        }
        SessionOutcome {
            applied,
            duplicate: any_nonempty && !shipped,
            degraded: self.durability_degraded(),
        }
    }

    /// All-or-nothing [`insert_sessioned`](Self::insert_sessioned):
    /// admission-probe the data plane of every shard that would actually
    /// receive keys (non-empty and not deduped) and return `None` —
    /// batches untouched, marks unmoved — when any is backed up past
    /// `max_depth` in-flight batches. A write the marks fully cover is
    /// applied as a duplicate regardless of backpressure: dedup is free
    /// and the client needs the ack.
    ///
    /// # Panics
    /// Same contract as [`insert_sharded`](Self::insert_sharded).
    pub fn try_insert_sessioned(
        &mut self,
        session_id: u64,
        seq: u64,
        batches: &mut [Vec<u64>],
        max_depth: usize,
    ) -> Option<SessionOutcome> {
        assert_eq!(batches.len(), self.shards.len(), "one batch slot per shard");
        let hwms = self.sessions.touch(session_id, batches.len());
        let room = batches.iter().enumerate().all(|(shard, batch)| {
            batch.is_empty() || hwms[shard] >= seq || self.shards[shard].data_room(max_depth)
        });
        if !room {
            return None;
        }
        Some(self.insert_sessioned(session_id, seq, batches))
    }

    /// Deepest data-plane queue across shards, in in-flight batches — the
    /// admission-control signal serving layers compare against their
    /// high-water mark.
    pub fn max_queue_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Whether any shard has lost durability (disk-sick degraded mode or
    /// a pending background fault): writes are still applied one-sidedly
    /// but may not survive a crash, so serving acks should carry a
    /// `DEGRADED` flag.
    pub fn durability_degraded(&self) -> bool {
        self.shards.iter().any(|s| {
            s.durable
                .as_ref()
                .is_some_and(|d| d.degraded.is_some() || d.has_pending_fatal())
        })
    }

    /// Sessions currently tracked by the exactly-once table.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Flush every router partial to its shard.
    fn flush_router(&mut self) {
        for shard in 0..self.shards.len() {
            let partial = self.router.take(shard);
            if !partial.is_empty() {
                self.shards[shard].ship(partial, &self.cfg);
            }
        }
    }

    /// Barrier: every key routed so far is applied and published. After
    /// this returns, [`QueryHandle`] answers are exact (equal to the
    /// sequential ASketch over each shard's sub-stream).
    pub fn sync(&mut self) {
        self.flush_router();
        for shard in 0..self.shards.len() {
            self.shards[shard].sync(&self.cfg);
        }
    }

    /// A wait-free concurrent query handle (cheap; clone freely across
    /// reader threads).
    pub fn query_handle(&self) -> QueryHandle<S> {
        QueryHandle {
            snaps: Arc::clone(&self.snaps),
            partition: self.router.partition(),
        }
    }

    /// Point query from the owning thread: reads the same published
    /// snapshots as [`QueryHandle`] (subject to the same staleness bound;
    /// call [`sync`](Self::sync) first for exact answers).
    pub fn estimate(&self, key: u64) -> i64 {
        self.snaps[self.router.partition().shard_of(key)].query(key)
    }

    /// The key partition used for routing and query ownership.
    pub fn partition(&self) -> KeyPartition {
        self.router.partition()
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &ConcurrentConfig {
        &self.cfg
    }

    /// Per-shard health gauges: queue depth/occupancy, publish epochs,
    /// reader retries, restart/fault counters.
    pub fn health(&self) -> ShardedHealth {
        ShardedHealth {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.gauge(i, &self.cfg))
                .collect(),
            reactors: Vec::new(),
        }
    }

    /// Shut every worker down and return the per-shard kernels (shard
    /// order). Never hangs: a healthy worker is joined (publishing its
    /// final state on the way out); a panicked or wedged one is replaced by
    /// its journal reconstruction. Durable shards write a final snapshot
    /// covering everything routed and prune their WAL behind it.
    pub fn finish(self) -> Vec<ASketch<F, S>> {
        self.finish_with_health().0
    }

    /// [`finish`](Self::finish), also returning the post-teardown health
    /// gauges. After a graceful shutdown every queue-depth gauge reads
    /// exactly zero — nothing residual, nothing underflowed — even when a
    /// wedged worker had to be abandoned.
    ///
    /// # Shutdown ordering (durable runtimes)
    ///
    /// 1. flush the router and spill queues, drain checkpoints;
    /// 2. join (or abandon-and-reconstruct) every shard worker;
    /// 3. stop and join the **scrubber**, close every snapshot-job sender
    ///    and join the **snapshotter** — every queued/in-flight background
    ///    snapshot completes or fails *now*, deterministically;
    /// 4. only then write each shard's **final snapshot** and prune its
    ///    WAL behind it.
    ///
    /// Step 3 must precede step 4: a background job still in flight would
    /// otherwise race the final write on the same shard directory — when
    /// the last checkpoint's sequence equals the final sequence both
    /// writers share one tmp path, and a torn "newest" snapshot whose WAL
    /// was pruned behind it silently drops acked writes at next recovery.
    pub fn finish_with_health(mut self) -> (Vec<ASketch<F, S>>, ShardedHealth) {
        self.flush_router();
        let mut kernels = Vec::with_capacity(self.shards.len());
        for st in self.shards.iter_mut() {
            st.flush_spill_sync(&self.cfg);
            st.drain_checkpoints();
            let kernel = if let Some(link) = st.link.take() {
                drop(link.tx);
                let deadline = Instant::now() + self.cfg.supervision.shutdown_timeout;
                while !link.handle.is_finished() && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let kernel = if link.handle.is_finished() {
                    match link.handle.join() {
                        Ok(kernel) => kernel,
                        Err(payload) => {
                            st.failures += 1;
                            st.last_error =
                                Some(PipelineError::WorkerPanicked(panic_message(payload)));
                            // The dead worker left its queued batches
                            // undrained; the gauge must not carry them
                            // (the journal restore below covers them).
                            st.depth = Arc::new(AtomicUsize::new(0));
                            st.journal.restore()
                        }
                    }
                } else {
                    // Wedged past the deadline: abandon the thread and
                    // reconstruct (it exits when it touches the dead
                    // channel). Retire its writer generation first so its
                    // final on-disconnect publish is dropped instead of
                    // racing (or landing after) the republish below, and
                    // detach the depth gauge — the abandoned worker keeps
                    // decrementing its own Arc as it drains.
                    st.failures += 1;
                    st.last_error = Some(PipelineError::EstimateTimeout);
                    st.writer_gen = st.snap.retire_writer();
                    st.depth = Arc::new(AtomicUsize::new(0));
                    st.journal.restore()
                };
                // The clean path already published on disconnect; republish
                // here so the restore paths leave handles coherent too.
                let mut items = Vec::new();
                publish_filter(&kernel, &st.snap, &mut items, st.writer_gen);
                publish_view(&kernel, &st.snap, st.writer_gen);
                kernel
            } else {
                st.inline
                    .take()
                    .expect("degraded shard has an inline kernel")
            };
            kernels.push(kernel);
        }
        // Quiesce the background threads BEFORE the final snapshots (see
        // the shutdown-ordering doc above). The scrubber goes first so a
        // mid-pass quarantine can't race the final writes either; then
        // every job sender closes and the snapshotter drains its queue and
        // exits — both joins are bounded (short stop-flag ticks, bounded
        // retry backoff per job).
        if let Some((stop, handle)) = self.scrubber.take() {
            stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
        for st in self.shards.iter_mut() {
            if let Some(d) = st.durable.as_mut() {
                d.close_snapshots();
            }
        }
        if let Some(handle) = self.snapshotter.take() {
            let _ = handle.join();
        }
        // The WAL syncer drains its deferred fsyncs and exits the same
        // way; joining it before `finalize` keeps each shard's caller the
        // sole toucher of its segments during the final snapshot + prune.
        if let Some(handle) = self.wal_syncer.take() {
            let _ = handle.join();
        }
        // Final snapshots: each shard's caller is now the *sole* writer to
        // its directory, and any persistent snapshotter failure parked by
        // a drained job is promoted (finalize → check_snapshotter) before
        // the shard decides whether writing through the disk is safe.
        for (st, kernel) in self.shards.iter_mut().zip(&kernels) {
            if let Some(d) = st.durable.as_mut() {
                d.finalize(kernel, kernel.ops_applied());
            }
        }
        // Gauges while durability state is still attached (so WAL/recovery
        // counters — now reflecting every *completed* background snapshot
        // — survive into the final health), then drop it.
        let health = ShardedHealth {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.gauge(i, &self.cfg))
                .collect(),
            reactors: Vec::new(),
        };
        for st in self.shards.iter_mut() {
            st.durable = None;
        }
        (kernels, health)
    }

    /// Durability barrier: flush router partials into the WAL and fsync
    /// every shard's log regardless of fsync policy. When it returns
    /// `Ok(n)`, all `n` keys routed so far survive a crash of this
    /// process. Returns the first recorded WAL failure, if durability was
    /// lost. No-op (beyond the router flush) on non-durable runtimes.
    ///
    /// # Errors
    /// The first WAL I/O failure across shards.
    pub fn wal_checkpoint(&mut self) -> Result<u64, DurabilityError> {
        self.flush_router();
        let mut total = 0u64;
        for st in self.shards.iter_mut() {
            total += st.routed;
            if let Some(d) = st.durable.as_mut() {
                d.check_snapshotter();
                if let Some(e) = &d.degraded {
                    return Err(e.clone());
                }
                let synced = d.sync_with_retries();
                if let Err(e) = synced {
                    d.degraded = Some(e.clone());
                    return Err(e);
                }
            }
        }
        Ok(total)
    }

    /// Run one synchronous integrity-scrub pass over every shard
    /// directory, exactly as the background scrubber would (the active
    /// WAL segment is taken from the live writer, so sealed-segment
    /// coverage is exact). Returns one [`ScrubReport`] per shard, in
    /// shard order; non-durable shards produce empty reports.
    ///
    /// Deterministic tests and operator tooling call this instead of
    /// waiting out [`DurabilityOptions::scrub_interval`].
    pub fn scrub_now(&mut self) -> Vec<ScrubReport> {
        self.shards
            .iter_mut()
            .map(|st| {
                let Some(d) = st.durable.as_mut() else {
                    return ScrubReport::default();
                };
                let active = d.wal.active_segment().to_path_buf();
                match scrub_shard_dir(&d.vfs, &d.dir, Some(&active)) {
                    Ok(report) => {
                        d.scrub.absorb(&report);
                        report
                    }
                    Err(_) => ScrubReport::default(),
                }
            })
            .collect()
    }
}

impl<F, S> ConcurrentASketch<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
    ASketch<F, S>: Persist,
{
    /// Spawn a **durable** runtime rooted at `opts.dir`: each shard first
    /// recovers its kernel from the latest valid snapshot plus a
    /// sequence-gated WAL replay (see `asketch-durable`), then runs
    /// exactly like [`spawn`](Self::spawn) with two additions — every
    /// shipped batch is appended to the shard's WAL *before* it can reach
    /// the worker, and worker checkpoints feed a shared background
    /// snapshotter thread that writes checksummed snapshots and prunes
    /// covered WAL segments without ever blocking ingest or readers.
    ///
    /// Returns the runtime plus one [`RecoveryReport`] per shard so
    /// callers can assert on (or log) what recovery found: rejected
    /// corrupt snapshots, torn WAL tails, and replayed/deduped records.
    ///
    /// # Errors
    /// Unrecoverable durability failures: I/O errors walking or creating
    /// the shard directories and structurally damaged WALs
    /// ([`DurabilityError::OutOfOrder`]). Corrupt snapshots and torn WAL
    /// tails are *not* errors — they are skipped/truncated and reported.
    ///
    /// # Panics
    /// Panics if `cfg.shards == 0`.
    pub fn spawn_durable(
        cfg: ConcurrentConfig,
        opts: &DurabilityOptions,
        make_kernel: impl Fn(usize) -> ASketch<F, S>,
    ) -> Result<(Self, Vec<RecoveryReport>), DurabilityError> {
        assert!(cfg.shards > 0, "need at least one shard");
        // With pinning on, every background thread (snapshotter, WAL
        // syncer, scrubber) is herded onto the last core so writeback
        // and serialization stalls stay off the ingest cores.
        let bg_core = cfg
            .pin_workers
            .then(|| affinity::available_cores().saturating_sub(1));
        let (snap_tx, snap_rx) = channel::unbounded::<SnapshotJob<ASketch<F, S>>>();
        let snapshotter = std::thread::spawn(move || {
            if let Some(core) = bg_core {
                let _ = affinity::pin_current_thread(core);
            }
            while let Ok(job) = snap_rx.recv() {
                let written = with_storage_retries(&job.policy, &job.retries, || {
                    write_snapshot_sessions_with(
                        &job.vfs,
                        &job.dir,
                        job.meta,
                        &job.kernel,
                        &job.sessions,
                    )
                });
                match written {
                    Ok(_) => {
                        prune_snapshots_with(&job.vfs, &job.dir, job.keep);
                        job.snapped_seq.store(job.meta.wal_seq, Ordering::Release);
                        // A fresh snapshot replaces whatever the scrubber
                        // quarantined; WAL pruning may resume.
                        job.scrub.snap_needed.store(false, Ordering::Release);
                    }
                    Err(e) => {
                        job.errors.fetch_add(1, Ordering::Relaxed);
                        // Persistent failure: park the typed error for the
                        // caller thread to promote to degraded mode.
                        job.fatal
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .get_or_insert(e);
                    }
                }
                job.busy.store(false, Ordering::Release);
            }
        });
        // Deferred interval fsyncs run here, off the ingest path.
        // `fdatasync` is cumulative — the newest request for a segment
        // covers every older one — so the syncer dwells briefly after the
        // first request and coalesces everything that arrives in the
        // window into one fsync per distinct segment. Under steady ingest
        // (shards requesting every few ms) this turns a train of
        // per-shard fsyncs into a handful per dwell window, which matters
        // on starved hosts where each fsync steals the core from ingest.
        // The dwell widens Interval's crash window by at most
        // WAL_SYNC_DWELL beyond the deferral itself; the `sync`/
        // `wal_checkpoint` ack barrier stays inline and is unaffected.
        let (sync_tx, sync_rx) = channel::unbounded::<SyncJob>();
        let wal_syncer = std::thread::spawn(move || {
            if let Some(core) = bg_core {
                let _ = affinity::pin_current_thread(core);
            }
            while let Ok(first) = sync_rx.recv() {
                let mut pending: Vec<SyncJob> = vec![first];
                let deadline = Instant::now() + WAL_SYNC_DWELL;
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match sync_rx.recv_timeout(deadline - now) {
                        Ok(next) => {
                            if let Some(p) = pending.iter_mut().find(|p| p.path == next.path) {
                                *p = next;
                            } else {
                                pending.push(next);
                            }
                        }
                        Err(_) => break,
                    }
                }
                for job in &pending {
                    run_sync_job(job);
                }
            }
        });
        let mut reports = Vec::with_capacity(cfg.shards);
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut scrub_targets = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let dir = opts.shard_dir(i);
            let (kernel, report) =
                recover_kernel_with(&opts.vfs, &dir, opts.dedup, || make_kernel(i))?;
            let mut wal = WalWriter::create_with(
                Arc::clone(&opts.vfs),
                &dir,
                report.last_seq,
                opts.fsync,
                opts.segment_bytes,
            )?;
            // Interval fsyncs defer to the background syncer; PerBatch
            // stays inline — its contract is "durable when append
            // returns", which a deferral would silently break.
            let defer = matches!(opts.fsync, FsyncPolicy::Interval(_));
            wal.set_group_commit(opts.group_commit, defer);
            let scrub = Arc::new(ScrubShared::default());
            scrub_targets.push((dir.clone(), Arc::clone(&scrub)));
            let durable = DurableShard {
                shard_idx: i,
                dir,
                wal,
                wal_base: report.last_seq,
                keep: opts.snapshot_keep,
                snap_tx: Some(snap_tx.clone()),
                busy: Arc::new(AtomicBool::new(false)),
                snapped_seq: Arc::new(AtomicU64::new(report.snapshot.map_or(0, |m| m.wal_seq))),
                snap_errors: Arc::new(AtomicU64::new(0)),
                pruned_seq: 0,
                write: write_snapshot_sessions_with::<ASketch<F, S>>,
                recovered: report.snapshot.is_some() || report.wal_records > 0,
                replayed_keys: report.replayed_keys,
                wal_records: 0,
                vfs: Arc::clone(&opts.vfs),
                policy: opts.policy,
                wal_retries: AtomicU64::new(0),
                sync_tx: defer.then(|| sync_tx.clone()),
                bg_sync_retries: Arc::new(AtomicU64::new(0)),
                deferred_fsyncs: 0,
                snap_retries: Arc::new(AtomicU64::new(0)),
                snap_fatal: Arc::new(Mutex::new(None)),
                scrub,
                pending_ann: VecDeque::new(),
                snap_sessions: report.sessions.iter().copied().collect(),
                session_cap: cfg.session_cap.max(1),
                degraded: None,
            };
            reports.push(report);
            shards.push(ShardState::new(i, kernel, &cfg, Some(durable)));
        }
        drop(snap_tx);
        drop(sync_tx);
        let scrubber = opts.scrub_interval.map(|interval| {
            let stop = Arc::new(AtomicBool::new(false));
            let thread_stop = Arc::clone(&stop);
            let vfs = Arc::clone(&opts.vfs);
            let handle = std::thread::spawn(move || {
                if let Some(core) = bg_core {
                    let _ = affinity::pin_current_thread(core);
                }
                // Sleep in short slices so shutdown never waits out a long
                // scrub interval.
                let tick = Duration::from_millis(10).min(interval);
                let mut next = Instant::now() + interval;
                while !thread_stop.load(Ordering::Acquire) {
                    if Instant::now() < next {
                        std::thread::sleep(tick);
                        continue;
                    }
                    for (dir, shared) in &scrub_targets {
                        scrub_pass(&vfs, dir, shared);
                    }
                    next = Instant::now() + interval;
                }
            });
            (stop, handle)
        });
        let snaps = Arc::new(shards.iter().map(|s| Arc::clone(&s.snap)).collect());
        let router = KeyRouter::new(KeyPartition::new(cfg.shards), cfg.batch.max(1));
        // Seed the in-memory session table from what recovery found so a
        // client reconnecting after a crash+restart deduplicates exactly
        // as it would have against the pre-crash process.
        let mut sessions = SessionTable::new(cfg.session_cap);
        for (shard, report) in reports.iter().enumerate() {
            for &(sid, hwm) in &report.sessions {
                sessions.seed(sid, shard, hwm, cfg.shards);
            }
        }
        Ok((
            Self {
                shards,
                router,
                snaps,
                cfg,
                sessions,
                snapshotter: Some(snapshotter),
                wal_syncer: Some(wal_syncer),
                scrubber,
            },
            reports,
        ))
    }
}

impl<F, S> Drop for ConcurrentASketch<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Best-effort teardown for runtimes dropped without
    /// [`finish`](Self::finish): disconnect every worker and wait a bounded
    /// time. Never hangs, never panics.
    fn drop(&mut self) {
        // Stop the scrubber promptly; dropping the handle detaches the
        // thread, which exits at its next (short) stop-flag check.
        if let Some((stop, _handle)) = self.scrubber.take() {
            stop.store(true, Ordering::Release);
        }
        let links: Vec<ShardLink<ASketch<F, S>>> = self
            .shards
            .iter_mut()
            .filter_map(|s| s.link.take())
            .collect();
        // Drop every sender first so all workers wind down in parallel.
        let handles: Vec<JoinHandle<ASketch<F, S>>> = links
            .into_iter()
            .map(|l| {
                drop(l.tx);
                l.handle
            })
            .collect();
        let deadline = Instant::now() + self.cfg.supervision.shutdown_timeout;
        for handle in handles {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyEstimator};
    use asketch::filter::VectorFilter;
    use sketches::CountMin;

    fn stream(len: usize) -> Vec<u64> {
        let mut x = 0x5EED_2016u64;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                match x % 10 {
                    0..=5 => x % 8,             // heavy keys
                    _ => 100 + (x >> 16) % 512, // tail
                }
            })
            .collect()
    }

    fn kernel(seed: u64) -> ASketch<VectorFilter, CountMin> {
        ASketch::new(
            VectorFilter::new(16),
            CountMin::new(seed, 4, 1 << 12).unwrap(),
        )
    }

    /// Sequential reference: each shard's sub-stream through its own
    /// sequential kernel, queried at the owner.
    fn sequential_reference(
        stream: &[u64],
        partition: KeyPartition,
        make: impl Fn(usize) -> ASketch<VectorFilter, CountMin>,
    ) -> Vec<ASketch<VectorFilter, CountMin>> {
        let mut kernels: Vec<_> = (0..partition.shards()).map(&make).collect();
        for &key in stream {
            kernels[partition.shard_of(key)].insert(key);
        }
        kernels
    }

    #[test]
    fn sync_makes_queries_exactly_sequential() {
        let cfg = ConcurrentConfig {
            shards: 3,
            batch: 64,
            publish_interval: 256,
            view_interval: 1024,
            ..ConcurrentConfig::default()
        };
        let data = stream(40_000);
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(10 + i as u64));
        rt.insert_batch(&data);
        rt.sync();
        let reference = sequential_reference(&data, rt.partition(), |i| kernel(10 + i as u64));
        let p = rt.partition();
        let handle = rt.query_handle();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            let expect = reference[p.shard_of(key)].estimate(key);
            assert_eq!(handle.estimate(key), expect, "key {key} diverges post-sync");
            assert_eq!(rt.estimate(key), expect, "owner query diverges for {key}");
        }
        // Finish and compare the final kernels per key as well.
        let kernels = rt.finish();
        for &key in &keys {
            let shard = p.shard_of(key);
            assert_eq!(
                kernels[shard].estimate(key),
                reference[shard].estimate(key),
                "finished kernel diverges for {key}"
            );
        }
        // Handles stay valid (frozen at final state) after finish.
        for &key in keys.iter().take(50) {
            assert_eq!(
                handle.estimate(key),
                reference[p.shard_of(key)].estimate(key)
            );
        }
    }

    /// The reactor's bypass path must be indistinguishable from routing
    /// the same stream through the router: pre-partition the stream into
    /// per-shard mega-batches (order preserved within each shard, as the
    /// serving layer does), ship via `insert_sharded`, and compare every
    /// distinct key against the sequential reference.
    #[test]
    fn insert_sharded_matches_routed_ingest_exactly() {
        let cfg = ConcurrentConfig {
            shards: 3,
            batch: 64,
            publish_interval: 256,
            view_interval: 1024,
            ..ConcurrentConfig::default()
        };
        let data = stream(40_000);
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(10 + i as u64));
        let p = rt.partition();
        // Coalesce in chunks, as a reactor would across wakeups.
        let mut staging: Vec<Vec<u64>> = vec![Vec::new(); p.shards()];
        for chunk in data.chunks(7_777) {
            for &key in chunk {
                staging[p.shard_of(key)].push(key);
            }
            rt.insert_sharded(&mut staging);
            assert!(staging.iter().all(Vec::is_empty), "batches drain on ship");
        }
        rt.sync();
        let reference = sequential_reference(&data, p, |i| kernel(10 + i as u64));
        let handle = rt.query_handle();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                handle.estimate(key),
                reference[p.shard_of(key)].estimate(key),
                "key {key} diverges via the sharded bypass"
            );
        }
        let health = rt.health();
        assert_eq!(health.total_routed(), data.len() as u64);
        rt.finish();
    }

    /// `try_insert_sharded` is all-or-nothing: with a worker wedged (slow
    /// kernel) and a depth bound of 1, the probe refuses while a batch is
    /// in flight and leaves the staging buffers untouched; accepted books
    /// stay exact (total routed == keys accepted).
    #[test]
    fn try_insert_sharded_is_all_or_nothing_under_depth_bound() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 64,
            publish_interval: 16,
            view_interval: 64,
            ..ConcurrentConfig::default()
        };
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(30 + i as u64));
        let p = rt.partition();
        let mut accepted = 0u64;
        let mut refused = 0u64;
        let mut staging: Vec<Vec<u64>> = vec![Vec::new(); p.shards()];
        for round in 0..200u64 {
            for i in 0..500u64 {
                let key = round * 1_000 + i;
                staging[p.shard_of(key)].push(key);
            }
            let staged: u64 = staging.iter().map(|b| b.len() as u64).sum();
            if rt.try_insert_sharded(&mut staging, 1) {
                accepted += staged;
                assert!(staging.iter().all(Vec::is_empty), "shipped batches drain");
            } else {
                refused += 1;
                assert_eq!(
                    staging.iter().map(|b| b.len() as u64).sum::<u64>(),
                    staged,
                    "a refused flush must leave staging untouched"
                );
                for b in staging.iter_mut() {
                    b.clear(); // caller sheds
                }
            }
        }
        rt.sync();
        assert_eq!(
            rt.health().total_routed(),
            accepted,
            "books must balance: accepted keys and only accepted keys routed \
             ({refused} flushes refused)"
        );
        rt.finish();
    }

    #[test]
    fn blocked_backend_slots_into_the_runtime() {
        // The cache-line-blocked backend implements the same SharedView /
        // UpdateEstimate surface as CountMin, so it must drop into the
        // sharded runtime unchanged — and answer exactly like the
        // sequential blocked kernel over each shard's sub-stream once
        // sync() has drained and published.
        use sketches::BlockedCountMin;
        let blocked = |seed: u64| {
            ASketch::new(
                VectorFilter::new(16),
                BlockedCountMin::new(seed, 4, 1 << 9).unwrap(),
            )
        };
        let cfg = ConcurrentConfig {
            shards: 3,
            batch: 64,
            publish_interval: 256,
            view_interval: 1024,
            ..ConcurrentConfig::default()
        };
        let data = stream(30_000);
        let mut rt = ConcurrentASketch::spawn(cfg, |i| blocked(20 + i as u64));
        rt.insert_batch(&data);
        rt.sync();
        let p = rt.partition();
        let mut reference: Vec<_> = (0..p.shards()).map(|i| blocked(20 + i as u64)).collect();
        for &key in &data {
            reference[p.shard_of(key)].insert(key);
        }
        let handle = rt.query_handle();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            let expect = reference[p.shard_of(key)].estimate(key);
            assert_eq!(handle.estimate(key), expect, "key {key} diverges post-sync");
            assert_eq!(rt.estimate(key), expect, "owner query diverges for {key}");
        }
        let kernels = rt.finish();
        for &key in &keys {
            let shard = p.shard_of(key);
            assert_eq!(
                kernels[shard].estimate(key),
                reference[shard].estimate(key),
                "finished blocked kernel diverges for {key}"
            );
        }
    }

    #[test]
    fn concurrent_reads_never_block_and_stay_one_sided() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 32,
            publish_interval: 64,
            view_interval: 256,
            ..ConcurrentConfig::default()
        };
        // Collision-free for the heavy key: one-sidedness becomes exactness
        // once quiesced; mid-ingest reads must be monotone and bounded.
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(99 + i as u64));
        let handle = rt.query_handle();
        let heavy = 7u64;
        let total = 60_000usize;
        let reader = std::thread::spawn(move || {
            let mut last = 0i64;
            let mut observations = 0u64;
            loop {
                let est = handle.estimate(heavy);
                assert!(est >= last, "estimate regressed: {est} < {last}");
                assert!(est <= total as i64, "read above quiesced truth");
                last = est;
                observations += 1;
                if est >= total as i64 {
                    return (observations, handle.reader_retries());
                }
                std::thread::yield_now();
            }
        });
        for _ in 0..total {
            rt.insert(heavy);
        }
        rt.sync();
        let (observations, retries) = reader.join().unwrap();
        assert!(observations > 0);
        // Wait-free: readers take zero locks, so a retry is the only
        // contention artifact possible, and it costs one immediate re-read
        // — it can never exceed the number of successful observations.
        assert!(
            retries <= observations,
            "retries ({retries}) outnumber reads ({observations})"
        );
        assert_eq!(rt.estimate(heavy), total as i64);
    }

    #[test]
    fn worker_panic_restarts_and_loses_nothing() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            supervision: SupervisionConfig {
                queue_capacity: 8,
                checkpoint_interval: 64,
                max_restarts: 3,
                restart_backoff: Duration::from_millis(1),
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let make = |i: usize| {
            ASketch::new(
                VectorFilter::new(8),
                FaultyEstimator::new(
                    CountMin::new(50 + i as u64, 4, 1 << 12).unwrap(),
                    FaultPlan::panic_at(300).with_message("injected shard crash"),
                ),
            )
        };
        let data = stream(30_000);
        let mut rt = ConcurrentASketch::spawn(cfg, make);
        rt.insert_batch(&data);
        rt.sync();
        let health = rt.health();
        assert!(
            health.total_restarts() >= 1,
            "fault plan must trigger at least one restart: {health:?}"
        );
        assert!(!health.any_degraded(), "restart budget not exhausted");
        // Checkpoint + journal replay: still exactly sequential per key.
        let p = rt.partition();
        let mut reference: Vec<_> = (0..2)
            .map(|i| {
                ASketch::new(
                    VectorFilter::new(8),
                    CountMin::new(50 + i as u64, 4, 1 << 12).unwrap(),
                )
            })
            .collect();
        for &key in &data {
            reference[p.shard_of(key)].insert(key);
        }
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt.estimate(key),
                reference[p.shard_of(key)].estimate(key),
                "post-restart divergence for key {key}"
            );
        }
    }

    #[test]
    fn stale_writer_generation_publish_is_dropped() {
        let mut k = kernel(1);
        for _ in 0..10 {
            k.insert(42);
        }
        let snap = ShardSnapshot::<CountMin> {
            filter: FilterSnapshot::new(16),
            view: k.sketch().new_view(),
            view_epoch: AtomicU64::new(0),
            writer_gen: Mutex::new(0),
        };
        let mut buf = Vec::new();
        publish_filter(&k, &snap, &mut buf, 0);
        publish_view(&k, &snap, 0);
        assert_eq!(snap.query(42), 10);
        assert_eq!(snap.filter_epoch(), 10);
        assert_eq!(snap.view_epoch(), 10);

        // Fail-over retires generation 0; the old writer keeps running.
        assert_eq!(snap.retire_writer(), 1);
        for _ in 0..10 {
            k.insert(42);
        }
        publish_filter(&k, &snap, &mut buf, 0);
        publish_view(&k, &snap, 0);
        assert_eq!(snap.query(42), 10, "stale publish must be dropped");
        assert_eq!(snap.filter_epoch(), 10);
        assert_eq!(snap.view_epoch(), 10);
        assert!(snap.begin_publish(0).is_none());

        // The replacement writer publishes under the new generation.
        publish_filter(&k, &snap, &mut buf, 1);
        publish_view(&k, &snap, 1);
        assert_eq!(snap.query(42), 20);
        assert_eq!(snap.filter_epoch(), 20);
        assert_eq!(snap.view_epoch(), 20);
    }

    /// The review scenario for timeout fail-over: the first worker wedges
    /// (injected sleep inside the sketch) long enough for the send path to
    /// time out and abandon it *alive*. The abandoned thread then drains
    /// its buffered channel and publishes at intervals and on disconnect —
    /// racing the respawned worker on the same snapshot unless the
    /// generation gate drops its publishes. A concurrent reader asserts
    /// the published epochs never regress, the depth gauge must not wrap,
    /// and post-sync answers must still be exactly sequential.
    #[test]
    fn abandoned_wedged_worker_cannot_corrupt_snapshots() {
        let cfg = ConcurrentConfig {
            shards: 1,
            batch: 8,
            publish_interval: 16,
            view_interval: 64,
            supervision: SupervisionConfig {
                queue_capacity: 2,
                backpressure: BackpressurePolicy::Block,
                checkpoint_interval: 64,
                send_timeout: Duration::from_millis(10),
                max_restarts: 3,
                restart_backoff: Duration::from_millis(1),
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        // Wedge for 100ms on the 200th sketch op; the restored clone is
        // disarmed (FaultPlan disarms on clone), so exactly one worker
        // ever wedges.
        let make = |_: usize| {
            ASketch::new(
                VectorFilter::new(8),
                FaultyEstimator::new(
                    CountMin::new(7, 4, 1 << 12).unwrap(),
                    FaultPlan::slow_updates(200, Duration::from_millis(100)),
                ),
            )
        };
        let data = stream(30_000);
        let mut rt = ConcurrentASketch::spawn(cfg, make);
        let handle = rt.query_handle();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let (mut last_filter, mut last_view) = (0u64, 0u64);
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let fe = handle.shard(0).filter_epoch();
                    let ve = handle.shard(0).view_epoch();
                    assert!(
                        fe >= last_filter,
                        "filter epoch regressed: {fe} < {last_filter}"
                    );
                    assert!(ve >= last_view, "view epoch regressed: {ve} < {last_view}");
                    last_filter = fe;
                    last_view = ve;
                    observations += 1;
                    std::thread::yield_now();
                }
                observations
            })
        };
        rt.insert_batch(&data);
        rt.sync();
        let health = rt.health();
        assert!(
            health.total_restarts() >= 1,
            "the wedge must force at least one timeout fail-over: {health:?}"
        );
        assert!(!health.any_degraded());
        // Depth gauge must be fresh, not wrapped by the abandoned worker.
        for g in &health.shards {
            assert_eq!(g.queue_depth, 0, "gauge corrupted: {g:?}");
        }
        stop.store(true, Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0);
        // Per-key answers still exactly sequential after the abandonment.
        let reference = {
            let mut k = ASketch::new(VectorFilter::new(8), CountMin::new(7, 4, 1 << 12).unwrap());
            for &key in &data {
                k.insert(key);
            }
            k
        };
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt.estimate(key),
                reference.estimate(key),
                "post-abandonment divergence for key {key}"
            );
        }
    }

    #[test]
    fn health_gauges_report_activity() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 8,
            ..ConcurrentConfig::default()
        };
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(3 + i as u64));
        let data = stream(5_000);
        rt.insert_batch(&data);
        rt.sync();
        let health = rt.health();
        assert_eq!(health.shards.len(), 2);
        assert_eq!(health.total_routed(), 5_000);
        assert!(!health.any_degraded());
        for g in &health.shards {
            assert_eq!(g.queue_depth, 0, "sync barrier must drain the queue");
            assert!(g.published_epoch > 0, "filter must have been published");
            assert!(g.view_epoch > 0, "view must have been published");
            assert_eq!(g.restarts, 0);
        }
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let mut rt = ConcurrentASketch::spawn(
            ConcurrentConfig {
                shards: 2,
                ..ConcurrentConfig::default()
            },
            |i| kernel(i as u64),
        );
        rt.insert_batch(&stream(1_000));
        drop(rt);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ConcurrentASketch::spawn(
            ConcurrentConfig {
                shards: 0,
                ..ConcurrentConfig::default()
            },
            |i| kernel(i as u64),
        );
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("asketch-conc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn durable_clean_shutdown_then_restart_recovers_exactly() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("clean");
        let opts = DurabilityOptions::new(&dir).fsync(FsyncPolicy::Interval(4));
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 32,
            publish_interval: 128,
            view_interval: 512,
            supervision: SupervisionConfig {
                checkpoint_interval: 256,
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let data = stream(20_000);
        let (mut rt, reports) =
            ConcurrentASketch::spawn_durable(cfg.clone(), &opts, |i| kernel(70 + i as u64))
                .unwrap();
        assert!(
            reports
                .iter()
                .all(|r| r.snapshot.is_none() && r.wal_records == 0),
            "fresh directory must recover nothing"
        );
        rt.insert_batch(&data);
        rt.sync();
        let (kernels, health) = rt.finish_with_health();
        for g in &health.shards {
            assert!(g.wal_records > 0, "WAL must have been written: {g:?}");
            assert!(!g.durability_degraded, "durability lost: {g:?}");
            assert_eq!(g.queue_depth, 0, "gauge residue after finish: {g:?}");
        }
        // Cold restart: recovery must reproduce the finished kernels
        // exactly (snapshot base + dedup-gated WAL replay).
        let (rt2, reports2) =
            ConcurrentASketch::spawn_durable(cfg, &opts, |i| kernel(70 + i as u64)).unwrap();
        assert!(
            reports2.iter().all(|r| r.snapshot.is_some()),
            "clean shutdown must leave a final snapshot: {reports2:?}"
        );
        let p = rt2.partition();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt2.estimate(key),
                kernels[p.shard_of(key)].estimate(key),
                "recovered state diverges for key {key}"
            );
        }
        for g in &rt2.health().shards {
            assert!(g.recovered, "restart must report recovery: {g:?}");
        }
        drop(rt2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_unclean_drop_recovers_acked_writes_from_wal() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("dirty");
        let opts = DurabilityOptions::new(&dir).fsync(FsyncPolicy::PerBatch);
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 16,
            publish_interval: 128,
            view_interval: 512,
            supervision: SupervisionConfig {
                checkpoint_interval: 128,
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let data = stream(12_000);
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(cfg.clone(), &opts, |i| kernel(30 + i as u64))
                .unwrap();
        rt.insert_batch(&data);
        let acked = rt.wal_checkpoint().unwrap();
        assert_eq!(acked, 12_000, "every key must be durable after the barrier");
        // Simulated crash: drop without finish — no final snapshot, only
        // background snapshots (if any landed) plus the fsynced WAL.
        drop(rt);
        let (rt2, reports) =
            ConcurrentASketch::spawn_durable(cfg, &opts, |i| kernel(30 + i as u64)).unwrap();
        assert!(
            reports.iter().map(|r| r.wal_records).sum::<u64>() > 0,
            "the WAL must hold the unsnapshotted tail: {reports:?}"
        );
        let p = rt2.partition();
        let reference = sequential_reference(&data, p, |i| kernel(30 + i as u64));
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt2.estimate(key),
                reference[p.shard_of(key)].estimate(key),
                "dedup recovery diverges from the sequential reference for {key}"
            );
        }
        drop(rt2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A [`VfsFile`] whose first write stalls: stretches the background
    /// snapshotter's in-flight window so `finish` can land mid-snapshot.
    struct StallFile {
        inner: Box<dyn VfsFile>,
        delay: Duration,
        armed: bool,
    }

    impl VfsFile for StallFile {
        fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
            if self.armed {
                self.armed = false;
                std::thread::sleep(self.delay);
            }
            self.inner.write_all(buf)
        }
        fn sync_data(&mut self) -> std::io::Result<()> {
            self.inner.sync_data()
        }
        fn set_len(&mut self, len: u64) -> std::io::Result<()> {
            self.inner.set_len(len)
        }
    }

    /// Delegating backend that stalls every snapshot `.tmp` write on its
    /// first byte. Regression harness for the shutdown ordering documented
    /// on [`ConcurrentASketch::finish_with_health`]: with the old
    /// finalize-before-join order, the final snapshot raced the stalled
    /// background job on the same tmp path.
    struct SlowSnapVfs {
        inner: Arc<dyn Vfs>,
        delay: Duration,
        snap_writes: AtomicU64,
    }

    impl SlowSnapVfs {
        fn new(delay: Duration) -> Self {
            Self {
                inner: asketch_durable::vfs::real(),
                delay,
                snap_writes: AtomicU64::new(0),
            }
        }
    }

    impl Vfs for SlowSnapVfs {
        fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
            self.inner.create_dir_all(dir)
        }
        fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
            self.inner.open_append(path)
        }
        fn create_truncate(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
            let file = self.inner.create_truncate(path)?;
            if path.extension().is_some_and(|e| e == "tmp") {
                self.snap_writes.fetch_add(1, Ordering::Release);
                return Ok(Box::new(StallFile {
                    inner: file,
                    delay: self.delay,
                    armed: true,
                }));
            }
            Ok(file)
        }
        fn open_write(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
            self.inner.open_write(path)
        }
        fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
            self.inner.read(path)
        }
        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            self.inner.rename(from, to)
        }
        fn remove_file(&self, path: &Path) -> std::io::Result<()> {
            self.inner.remove_file(path)
        }
        fn read_dir(&self, dir: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
            self.inner.read_dir(dir)
        }
        fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
            self.inner.sync_dir(dir)
        }
        fn exists(&self, path: &Path) -> bool {
            self.inner.exists(path)
        }
    }

    /// Shutdown-ordering regression (ISSUE 7 satellite): finish a durable
    /// runtime while a background snapshot is provably mid-write and the
    /// scrubber thread is live. The durable prefix must cover every acked
    /// write after a cold restart, the shard directory must hold no torn
    /// `.tmp` residue, and an offline scrub must find nothing.
    #[test]
    fn finish_mid_snapshot_keeps_every_acked_write_durable() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("midsnap");
        let slow = Arc::new(SlowSnapVfs::new(Duration::from_millis(300)));
        let vfs: Arc<dyn Vfs> = Arc::clone(&slow) as Arc<dyn Vfs>;
        let opts = DurabilityOptions::new(&dir)
            .fsync(FsyncPolicy::PerBatch)
            .vfs(vfs)
            // Both background threads live, exactly the server's shape.
            .scrub_interval(Some(Duration::from_millis(20)));
        let cfg = ConcurrentConfig {
            shards: 1,
            batch: 32,
            publish_interval: 128,
            view_interval: 512,
            supervision: SupervisionConfig {
                // 4096 keys / interval 1024: the last checkpoint's sequence
                // can equal the final sequence — the tmp-path collision case.
                checkpoint_interval: 1024,
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let data = stream(4_096);
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(cfg.clone(), &opts, |i| kernel(90 + i as u64))
                .unwrap();
        rt.insert_batch(&data);
        let acked = rt.wal_checkpoint().unwrap();
        assert_eq!(acked, 4_096, "every routed key must be acked durable");
        // Wait until the snapshotter is provably inside a `.tmp` write (the
        // counter bumps before the stalled first byte), then finish while
        // it sleeps.
        let deadline = Instant::now() + Duration::from_secs(10);
        while slow.snap_writes.load(Ordering::Acquire) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            slow.snap_writes.load(Ordering::Acquire) >= 1,
            "a background snapshot must have been scheduled"
        );
        let (kernels, health) = rt.finish_with_health();
        let g = &health.shards[0];
        assert!(!g.durability_degraded, "clean disk, clean shutdown: {g:?}");
        // No torn tmp residue: the background job was joined, its tmp
        // either renamed away or cleaned up, before the final snapshot.
        let shard_dir = opts.shard_dir(0);
        for entry in std::fs::read_dir(&shard_dir).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            assert!(
                !name.ends_with(".tmp"),
                "torn snapshot tmp left behind: {name}"
            );
        }
        // Offline scrub of the quiesced directory: nothing corrupt.
        let clean = asketch_durable::vfs::real();
        let report = scrub_shard_dir(&clean, &shard_dir, None).unwrap();
        assert_eq!(
            report.corrupt_found(),
            0,
            "mid-snapshot finish tore durable state: {report:?}"
        );
        // Cold restart over the clean backend: the durable prefix covers
        // every acked write exactly.
        let opts2 = DurabilityOptions::new(&dir).scrub_interval(None);
        let (rt2, _) =
            ConcurrentASketch::spawn_durable(cfg, &opts2, |i| kernel(90 + i as u64)).unwrap();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt2.estimate(key),
                kernels[0].estimate(key),
                "acked write lost across the mid-snapshot shutdown for key {key}"
            );
        }
        drop(rt2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Graceful-shutdown gauge invariant (and its hardest case): a wedged
    /// worker abandoned *during finish* left batches queued; the final
    /// health must read exactly zero queue depth — neither the residual
    /// count nor an underflow wrap from the abandoned worker's drain.
    #[test]
    fn queue_depth_gauge_is_exactly_zero_after_finish() {
        let cfg = ConcurrentConfig {
            shards: 1,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            supervision: SupervisionConfig {
                queue_capacity: 64,
                checkpoint_interval: 1 << 20,
                shutdown_timeout: Duration::from_millis(50),
                max_restarts: 3,
                restart_backoff: Duration::from_millis(1),
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let make = |_: usize| {
            ASketch::new(
                VectorFilter::new(8),
                FaultyEstimator::new(
                    CountMin::new(7, 4, 1 << 12).unwrap(),
                    FaultPlan::slow_updates(200, Duration::from_millis(600)),
                ),
            )
        };
        let data = stream(600);
        let mut rt = ConcurrentASketch::spawn(cfg, make);
        rt.insert_batch(&data);
        // Finish while the worker is wedged mid-queue: it gets abandoned
        // with batches still queued on its channel.
        let (kernels, health) = rt.finish_with_health();
        let g = &health.shards[0];
        assert!(
            g.worker_failures >= 1,
            "the wedge must force an abandonment: {g:?}"
        );
        assert_eq!(g.queue_depth, 0, "gauge must drain to exactly zero: {g:?}");
        assert!(g.queue_depth <= g.queue_capacity, "underflow wrap: {g:?}");
        assert_eq!(g.routed_ops, 600);
        // And the journal restore still makes the kernel exact.
        let reference = {
            let mut k = ASketch::new(VectorFilter::new(8), CountMin::new(7, 4, 1 << 12).unwrap());
            for &key in &data {
                k.insert(key);
            }
            k
        };
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(kernels[0].estimate(key), reference.estimate(key));
        }
    }

    use asketch_durable::vfs::{FaultKind, FaultPlan as StorageFaultPlan, FaultVfs, VfsFile};
    use asketch_durable::ErrorClass;

    /// One-shard durable config with tight intervals so every fault test
    /// exercises the WAL on a handful of batches.
    fn faulty_cfg() -> ConcurrentConfig {
        ConcurrentConfig {
            shards: 1,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            supervision: SupervisionConfig {
                checkpoint_interval: 1 << 30, // no background snapshots unless asked
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        }
    }

    #[test]
    fn transient_wal_fault_retries_and_stays_durable() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("transient");
        // Exactly one write op fails (the first WAL append); the rollback
        // and the retried append succeed, so durability survives.
        let fault = Arc::new(FaultVfs::over_real(
            StorageFaultPlan::new(7).fail_once(FaultKind::Eio, 0),
        ));
        let vfs: Arc<dyn Vfs> = Arc::clone(&fault) as Arc<dyn Vfs>;
        let opts = DurabilityOptions::new(&dir)
            .fsync(FsyncPolicy::PerBatch)
            .vfs(vfs)
            .scrub_interval(None);
        let data = stream(4_000);
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(faulty_cfg(), &opts, |i| kernel(80 + i as u64))
                .unwrap();
        rt.insert_batch(&data);
        let acked = rt
            .wal_checkpoint()
            .expect("transient fault must not surface");
        assert_eq!(acked, 4_000);
        assert_eq!(fault.injected(), 1, "the scripted fault must have fired");
        let health = rt.health();
        let g = &health.shards[0];
        assert!(
            !g.durability_degraded,
            "one transient fault must not degrade"
        );
        assert!(g.wal_retries >= 1, "the retry must be counted: {g:?}");
        assert!(g.last_durability_error.is_none());
        let (kernels, _) = rt.finish_with_health();
        // Cold restart over the clean backend: nothing acked was lost.
        let opts2 = DurabilityOptions::new(&dir).scrub_interval(None);
        let (rt2, _) =
            ConcurrentASketch::spawn_durable(faulty_cfg(), &opts2, |i| kernel(80 + i as u64))
                .unwrap();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(rt2.estimate(key), kernels[0].estimate(key), "key {key}");
        }
        drop(rt2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_enospc_degrades_with_typed_error_and_correct_counts() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("enospc");
        // Every write op fails with ENOSPC from the fourth on: the WAL
        // rollback also fails (poisoning the writer), and the degraded
        // error must still carry the NoSpace class — callers distinguish
        // a full disk from corruption programmatically.
        let fault = Arc::new(FaultVfs::over_real(
            StorageFaultPlan::new(7).fail_from(FaultKind::Enospc, 3),
        ));
        let vfs: Arc<dyn Vfs> = Arc::clone(&fault) as Arc<dyn Vfs>;
        let opts = DurabilityOptions::new(&dir)
            .fsync(FsyncPolicy::PerBatch)
            .vfs(vfs)
            .policy(StoragePolicy {
                retries: 2,
                retry_backoff: Duration::ZERO,
            })
            .scrub_interval(None);
        let data = stream(6_000);
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(faulty_cfg(), &opts, |i| kernel(81 + i as u64))
                .unwrap();
        rt.insert_batch(&data);
        rt.sync();
        let err = rt
            .wal_checkpoint()
            .expect_err("persistent ENOSPC must surface");
        assert_eq!(err.class(), ErrorClass::NoSpace, "typed root cause: {err}");
        let health = rt.health();
        let g = &health.shards[0];
        assert!(g.durability_degraded, "disk-sick mode must engage: {g:?}");
        assert!(health.any_durability_degraded());
        assert_eq!(health.degraded_durability_shards(), 1);
        assert_eq!(
            g.last_durability_error.as_ref().map(|f| f.class.as_str()),
            Some("no-space"),
            "gauge carries the class, not a string to parse: {g:?}"
        );
        // Ingest stays correct and one-sided while degraded.
        let reference = {
            let mut k = kernel(81);
            for &key in &data {
                k.insert(key);
            }
            k
        };
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(rt.estimate(key), reference.estimate(key), "key {key}");
        }
        let (kernels, final_health) = rt.finish_with_health();
        assert!(final_health.shards[0].durability_degraded);
        for &key in &keys {
            assert_eq!(kernels[0].estimate(key), reference.estimate(key));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A [`VfsFile`] whose writes always fail with one OS error code;
    /// everything else delegates (so `set_len` rollbacks succeed and the
    /// failure stays retryable → degrade, not poison).
    struct FailWriteFile {
        inner: Box<dyn VfsFile>,
        raw_os: i32,
    }

    impl VfsFile for FailWriteFile {
        fn write_all(&mut self, _: &[u8]) -> std::io::Result<()> {
            Err(std::io::Error::from_raw_os_error(self.raw_os))
        }
        fn sync_data(&mut self) -> std::io::Result<()> {
            self.inner.sync_data()
        }
        fn set_len(&mut self, len: u64) -> std::io::Result<()> {
            self.inner.set_len(len)
        }
    }

    /// Path-keyed fault backend: WAL appends under `shard-0000` fail with
    /// `EIO`, under `shard-0001` with `ENOSPC`, persistently. One
    /// [`FaultVfs`] plan cannot deterministically hand *different* classes
    /// to different shards, so this drives the multi-class health
    /// regression directly.
    struct ClassedShardVfs {
        inner: Arc<dyn Vfs>,
    }

    impl Vfs for ClassedShardVfs {
        fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
            self.inner.create_dir_all(dir)
        }
        fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
            let file = self.inner.open_append(path)?;
            let p = path.to_string_lossy();
            let raw_os = if p.contains("shard-0000") {
                5 // EIO
            } else if p.contains("shard-0001") {
                28 // ENOSPC
            } else {
                return Ok(file);
            };
            Ok(Box::new(FailWriteFile {
                inner: file,
                raw_os,
            }))
        }
        fn create_truncate(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
            self.inner.create_truncate(path)
        }
        fn open_write(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
            self.inner.open_write(path)
        }
        fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
            self.inner.read(path)
        }
        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            self.inner.rename(from, to)
        }
        fn remove_file(&self, path: &Path) -> std::io::Result<()> {
            self.inner.remove_file(path)
        }
        fn read_dir(&self, dir: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
            self.inner.read_dir(dir)
        }
        fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
            self.inner.sync_dir(dir)
        }
        fn exists(&self, path: &Path) -> bool {
            self.inner.exists(path)
        }
    }

    /// Multi-class degradation regression (ISSUE 7 satellite): two shards
    /// degrade with *distinct* `DurabilityError` classes and the health
    /// must carry both — the HEALTH frame reports per-shard classes and
    /// alarms on the worst, instead of the lossy first-shard-wins summary
    /// hiding `ENOSPC` behind `EIO`.
    #[test]
    fn two_shards_degraded_with_distinct_classes_both_surface_in_health() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("twoclass");
        let vfs: Arc<dyn Vfs> = Arc::new(ClassedShardVfs {
            inner: asketch_durable::vfs::real(),
        });
        let opts = DurabilityOptions::new(&dir)
            .fsync(FsyncPolicy::PerBatch)
            .vfs(vfs)
            .policy(StoragePolicy {
                retries: 1,
                retry_backoff: Duration::ZERO,
            })
            .scrub_interval(None);
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            supervision: SupervisionConfig {
                checkpoint_interval: 1 << 30,
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let data = stream(2_000);
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(cfg, &opts, |i| kernel(95 + i as u64)).unwrap();
        rt.insert_batch(&data);
        rt.sync();
        let health = rt.health();
        assert_eq!(health.degraded_durability_shards(), 2, "{health:?}");
        // The historical summary is lossy: shard 0's EIO wins, the ENOSPC
        // on shard 1 vanishes.
        assert_eq!(
            health.first_durability_error().map(|f| f.class.as_str()),
            Some("io")
        );
        // The per-shard view keeps both classes, keyed by shard.
        let errors = health.durability_errors();
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert_eq!(errors[0].0, 0);
        assert_eq!(errors[0].1.class, "io");
        assert_eq!(errors[1].0, 1);
        assert_eq!(errors[1].1.class, "no-space");
        // And the worst-class summary ranks exhaustion over plain I/O.
        let (worst_shard, worst) = health.worst_durability_error().unwrap();
        assert_eq!(worst_shard, 1);
        assert_eq!(worst.class, "no-space");
        // Counting stays exact on both degraded shards.
        let p = rt.partition();
        let reference = sequential_reference(&data, p, |i| kernel(95 + i as u64));
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(rt.estimate(key), reference[p.shard_of(key)].estimate(key));
        }
        drop(rt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_fsync_failure_degrades_without_losing_counts() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("fsyncfail");
        let fault = Arc::new(FaultVfs::over_real(
            StorageFaultPlan::new(7).fail_from(FaultKind::FsyncFail, 0),
        ));
        let vfs: Arc<dyn Vfs> = Arc::clone(&fault) as Arc<dyn Vfs>;
        let opts = DurabilityOptions::new(&dir)
            .fsync(FsyncPolicy::PerBatch)
            .vfs(vfs)
            .policy(StoragePolicy {
                retries: 1,
                retry_backoff: Duration::ZERO,
            })
            .scrub_interval(None);
        let data = stream(3_000);
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(faulty_cfg(), &opts, |i| kernel(82 + i as u64))
                .unwrap();
        rt.insert_batch(&data);
        rt.sync();
        assert!(rt.wal_checkpoint().is_err(), "fsync can never succeed");
        let health = rt.health();
        assert!(health.shards[0].durability_degraded);
        assert!(
            health.shards[0].wal_retries >= 1,
            "the failed fsync must have been retried: {:?}",
            health.shards[0]
        );
        // Counting is unaffected by the sick disk.
        let reference = {
            let mut k = kernel(82);
            for &key in &data {
                k.insert(key);
            }
            k
        };
        let (kernels, _) = rt.finish_with_health();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(kernels[0].estimate(key), reference.estimate(key));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_now_quarantines_bitrot_and_triggers_fresh_snapshot() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("scrubnow");
        let opts = DurabilityOptions::new(&dir)
            .fsync(FsyncPolicy::PerBatch)
            .scrub_interval(None); // driven by scrub_now, deterministically
        let cfg = ConcurrentConfig {
            shards: 1,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            supervision: SupervisionConfig {
                checkpoint_interval: 512, // frequent background snapshots
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let data = stream(8_000);
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(cfg, &opts, |i| kernel(83 + i as u64)).unwrap();
        rt.insert_batch(&data);
        rt.sync();
        // Wait for a background snapshot to land.
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.health().shards[0].snapshot_seq == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let shard_dir = opts.shard_dir(0);
        let snaps = asketch_durable::list_snapshots(&shard_dir).unwrap();
        assert!(!snaps.is_empty(), "a background snapshot must have landed");
        // Bit-rot the newest snapshot on disk.
        let victim = &snaps.last().unwrap().1;
        let mut bytes = std::fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(victim, &bytes).unwrap();

        let reports = rt.scrub_now();
        assert_eq!(reports.len(), 1);
        assert_eq!(
            reports[0].quarantined.len(),
            1,
            "the scrubber must detect and quarantine the rot: {:?}",
            reports[0]
        );
        assert!(reports[0].wants_fresh_snapshot());
        assert!(!victim.exists(), "corrupt snapshot renamed to .corrupt");
        let g = &rt.health().shards[0];
        assert_eq!(g.scrub_passes, 1);
        assert_eq!(g.scrub_corruptions, 1);
        assert_eq!(g.snapshots_quarantined, 1);
        assert!(!g.durability_degraded, "bit-rot is repaired, not degrading");

        // More ingest drives a checkpoint → a fresh snapshot replaces the
        // quarantined one and re-arms WAL pruning.
        rt.insert_batch(&data);
        rt.sync();
        let (kernels, health) = rt.finish_with_health();
        assert!(
            health.shards[0].snapshot_seq > 0
                || !asketch_durable::list_snapshots(&shard_dir)
                    .unwrap()
                    .is_empty(),
            "a fresh snapshot must exist after the quarantine"
        );
        // A second scrub of the quiesced directory finds nothing.
        let vfs = asketch_durable::vfs::real();
        let report = scrub_shard_dir(&vfs, &shard_dir, None).unwrap();
        assert_eq!(report.corrupt_found(), 0, "post-recovery state is clean");
        // Cold restart: recovery ignores the `.corrupt` file and lands on
        // the finished state exactly.
        let (rt2, _) =
            ConcurrentASketch::spawn_durable(faulty_cfg(), &opts, |i| kernel(83 + i as u64))
                .unwrap();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(rt2.estimate(key), kernels[0].estimate(key), "key {key}");
        }
        drop(rt2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_scrubber_thread_finds_rot_on_its_own() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("scrubbg");
        let opts = DurabilityOptions::new(&dir)
            .fsync(FsyncPolicy::PerBatch)
            .scrub_interval(Some(Duration::from_millis(30)));
        let cfg = ConcurrentConfig {
            shards: 1,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            supervision: SupervisionConfig {
                checkpoint_interval: 512,
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let data = stream(8_000);
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(cfg, &opts, |i| kernel(84 + i as u64)).unwrap();
        rt.insert_batch(&data);
        rt.sync();
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.health().shards[0].snapshot_seq == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let shard_dir = opts.shard_dir(0);
        let snaps = asketch_durable::list_snapshots(&shard_dir).unwrap();
        assert!(!snaps.is_empty());
        let victim = &snaps.last().unwrap().1;
        let mut bytes = std::fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(victim, &bytes).unwrap();
        // The background thread must find and quarantine it by itself.
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.health().shards[0].snapshots_quarantined == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let g = &rt.health().shards[0];
        assert!(g.scrub_passes >= 1, "scrubber must have run: {g:?}");
        assert_eq!(g.snapshots_quarantined, 1, "rot must be quarantined: {g:?}");
        drop(rt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The two data planes are semantically interchangeable: the same
    /// stream through a ring-plane and a channel-plane runtime answers
    /// every key identically, and both match the sequential reference.
    #[test]
    fn ring_and_channel_planes_answer_identically() {
        let data = stream(25_000);
        let mut results = Vec::new();
        for plane in [DataPlane::Ring, DataPlane::Channel] {
            let cfg = ConcurrentConfig {
                shards: 3,
                batch: 32,
                publish_interval: 128,
                view_interval: 512,
                data_plane: plane,
                ..ConcurrentConfig::default()
            };
            let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(200 + i as u64));
            rt.insert_batch(&data);
            rt.sync();
            let health = rt.health();
            for g in &health.shards {
                assert_eq!(g.data_plane, plane.name());
                assert_eq!(g.ring_depth, 0, "post-sync ring must be drained: {g:?}");
            }
            results.push(rt);
        }
        let p = results[0].partition();
        let reference = sequential_reference(&data, p, |i| kernel(200 + i as u64));
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            let expected = reference[p.shard_of(key)].estimate(key);
            assert_eq!(results[0].estimate(key), expected, "ring plane, key {key}");
            assert_eq!(
                results[1].estimate(key),
                expected,
                "channel plane, key {key}"
            );
        }
    }

    /// Chaos: a tiny ring under a panicking worker. The ring fills (Full →
    /// backpressure policy), the panic abandons batches *inside* the ring,
    /// and fail-over must replace the ring wholesale — the journal restore
    /// covers the stranded batches, so nothing is lost and nothing is
    /// applied twice (the PR-1 generation-check discipline, now over the
    /// ring plane).
    #[test]
    fn ring_full_backpressure_with_worker_panic_stays_exact() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            data_plane: DataPlane::Ring,
            supervision: SupervisionConfig {
                queue_capacity: 4, // ring rounds to 4 slots — fills constantly
                checkpoint_interval: 64,
                max_restarts: 3,
                restart_backoff: Duration::from_millis(1),
                send_timeout: Duration::from_millis(50),
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let make = |i: usize| {
            ASketch::new(
                VectorFilter::new(8),
                FaultyEstimator::new(
                    CountMin::new(140 + i as u64, 4, 1 << 12).unwrap(),
                    FaultPlan::panic_at(500).with_message("injected ring-plane crash"),
                ),
            )
        };
        let data = stream(30_000);
        let mut rt = ConcurrentASketch::spawn(cfg, make);
        rt.insert_batch(&data);
        rt.sync();
        let health = rt.health();
        assert!(
            health.total_restarts() >= 1,
            "fault plan must trigger at least one restart: {health:?}"
        );
        assert!(!health.any_degraded(), "restart budget not exhausted");
        let p = rt.partition();
        let mut reference: Vec<_> = (0..2)
            .map(|i| {
                ASketch::new(
                    VectorFilter::new(8),
                    CountMin::new(140 + i as u64, 4, 1 << 12).unwrap(),
                )
            })
            .collect();
        for &key in &data {
            reference[p.shard_of(key)].insert(key);
        }
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt.estimate(key),
                reference[p.shard_of(key)].estimate(key),
                "post-restart divergence for key {key}"
            );
        }
    }

    /// Pinning is best-effort: with `pin_workers` on, the runtime must
    /// behave identically whether or not the host lets `taskset` through,
    /// and the per-shard gauge must report a coherent outcome.
    #[test]
    fn pinned_workers_are_best_effort_and_exact() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            pin_workers: true,
            ..ConcurrentConfig::default()
        };
        let data = stream(10_000);
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(300 + i as u64));
        rt.insert_batch(&data);
        rt.sync();
        let cores = affinity::available_cores();
        for g in &rt.health().shards {
            if let Some(core) = g.pinned_core {
                assert_eq!(core, g.shard % cores, "worker pinned to the wrong core");
            }
        }
        let p = rt.partition();
        let reference = sequential_reference(&data, p, |i| kernel(300 + i as u64));
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(rt.estimate(key), reference[p.shard_of(key)].estimate(key));
        }
    }

    /// Group commit + deferred fsync surface through health, the deferred
    /// fsyncs actually run (no fatal parked), and the ack barrier still
    /// holds: after `wal_checkpoint` a reopened runtime answers exactly.
    #[test]
    fn group_commit_defers_fsyncs_and_survives_reopen() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("groupdefer");
        let opts = DurabilityOptions::new(&dir).fsync(FsyncPolicy::Interval(8));
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            supervision: SupervisionConfig {
                checkpoint_interval: 1 << 30,
                ..SupervisionConfig::default()
            },
            ..ConcurrentConfig::default()
        };
        let data = stream(20_000);
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(cfg.clone(), &opts, |i| kernel(400 + i as u64))
                .unwrap();
        rt.insert_batch(&data);
        rt.sync();
        let acked = rt.wal_checkpoint().unwrap();
        assert_eq!(acked, data.len() as u64);
        let health = rt.health();
        assert!(
            health.total_group_commits() >= 2,
            "records must coalesce into groups: {health:?}"
        );
        assert!(
            health.total_deferred_fsyncs() >= 1,
            "interval fsyncs must defer to the background syncer: {health:?}"
        );
        assert!(
            !health.any_durability_degraded(),
            "background fsyncs must not park a fatal: {health:?}"
        );
        let kernels = rt.finish();
        let (rt2, _) =
            ConcurrentASketch::spawn_durable(cfg, &opts, |i| kernel(400 + i as u64)).unwrap();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        let p = rt2.partition();
        for &key in &keys {
            assert_eq!(
                rt2.estimate(key),
                kernels[p.shard_of(key)].estimate(key),
                "reopen divergence for key {key}"
            );
        }
        drop(rt2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Split one client batch into per-shard slots for `insert_sessioned`.
    fn partitioned(p: KeyPartition, keys: &[u64]) -> Vec<Vec<u64>> {
        let mut slots = vec![Vec::new(); p.shards()];
        for &k in keys {
            slots[p.shard_of(k)].push(k);
        }
        slots
    }

    #[test]
    fn sessioned_retries_are_deduped_exactly_once() {
        let cfg = ConcurrentConfig {
            shards: 3,
            batch: 8,
            publish_interval: 16,
            view_interval: 64,
            ..ConcurrentConfig::default()
        };
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(i as u64));
        let p = rt.partition();
        assert_eq!(rt.hello(42, 0), 0);
        let batches: Vec<Vec<u64>> = (0..6u64)
            .map(|i| (0..5).map(|j| i * 3 + j % 4).collect())
            .collect();
        for (i, batch) in batches.iter().enumerate() {
            let seq = i as u64 + 1;
            let out = rt.insert_sessioned(42, seq, &mut partitioned(p, batch));
            assert_eq!(out.applied, batch.len());
            assert!(!out.duplicate);
            // Retry storm: the same seq any number of times is a no-op.
            for _ in 0..3 {
                let retry = rt.insert_sessioned(42, seq, &mut partitioned(p, batch));
                assert_eq!(retry.applied, 0, "retry of seq {seq} re-applied keys");
                assert!(retry.duplicate);
            }
        }
        // Replay the entire window once more, in order.
        for (i, batch) in batches.iter().enumerate() {
            let out = rt.insert_sessioned(42, i as u64 + 1, &mut partitioned(p, batch));
            assert_eq!(out.applied, 0);
        }
        rt.sync();
        let all: Vec<u64> = batches.iter().flatten().copied().collect();
        let reference = sequential_reference(&all, p, |i| kernel(i as u64));
        let mut keys = all.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt.estimate(key),
                reference[p.shard_of(key)].estimate(key),
                "retries double-counted key {key}"
            );
        }
        rt.finish();
    }

    #[test]
    fn sessioned_marks_survive_restart_and_still_dedup() {
        use asketch::FsyncPolicy;
        let dir = tmp_dir("sess");
        let opts = DurabilityOptions::new(&dir).fsync(FsyncPolicy::PerBatch);
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 8,
            publish_interval: 16,
            view_interval: 64,
            ..ConcurrentConfig::default()
        };
        let batches: Vec<Vec<u64>> = (0..4u64).map(|i| vec![i, i + 1, 7]).collect();
        let (mut rt, _) =
            ConcurrentASketch::spawn_durable(cfg.clone(), &opts, |i| kernel(50 + i as u64))
                .unwrap();
        let p = rt.partition();
        rt.hello(9, 0);
        for (i, batch) in batches.iter().enumerate() {
            let out = rt.insert_sessioned(9, i as u64 + 1, &mut partitioned(p, batch));
            assert_eq!(out.applied, batch.len());
        }
        rt.sync();
        rt.wal_checkpoint().unwrap();
        rt.finish();
        // Restart: the client reconnects knowing nothing was acked past
        // seq 2 (say) and replays 3 and 4 — plus a stale retry of 1.
        let (mut rt2, reports) =
            ConcurrentASketch::spawn_durable(cfg, &opts, |i| kernel(50 + i as u64)).unwrap();
        assert!(
            reports.iter().any(|r| !r.sessions.is_empty()),
            "recovery must surface the session marks: {reports:?}"
        );
        let resumable = rt2.hello(9, 0);
        assert_eq!(
            resumable, 4,
            "all four writes were durable before the restart"
        );
        for (i, batch) in batches.iter().enumerate() {
            let out = rt2.insert_sessioned(9, i as u64 + 1, &mut partitioned(p, batch));
            assert_eq!(out.applied, 0, "replayed seq {} re-applied", i + 1);
            assert!(out.duplicate);
        }
        // A genuinely new write still lands.
        let fresh = vec![3u64, 7];
        let out = rt2.insert_sessioned(9, 5, &mut partitioned(p, &fresh));
        assert_eq!(out.applied, fresh.len());
        rt2.sync();
        let mut all: Vec<u64> = batches.iter().flatten().copied().collect();
        all.extend_from_slice(&fresh);
        let reference = sequential_reference(&all, p, |i| kernel(50 + i as u64));
        let mut keys = all.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt2.estimate(key),
                reference[p.shard_of(key)].estimate(key),
                "post-restart replay double-counted key {key}"
            );
        }
        rt2.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn try_insert_sessioned_acks_duplicates_even_when_backed_up() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 4,
            ..ConcurrentConfig::default()
        };
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(i as u64));
        let p = rt.partition();
        let batch = vec![1u64, 2, 3, 4];
        let out = rt
            .try_insert_sessioned(5, 1, &mut partitioned(p, &batch), usize::MAX)
            .expect("plane has room");
        assert_eq!(out.applied, batch.len());
        // With a zero-depth probe a *fresh* write may be shed, but a
        // fully-deduped retry must still come back as an ack — the
        // client needs it and dedup ships nothing.
        let dup = rt
            .try_insert_sessioned(5, 1, &mut partitioned(p, &batch), usize::MAX)
            .expect("duplicate must be admitted");
        assert!(dup.duplicate);
        assert_eq!(rt.session_count(), 1);
        rt.finish();
    }

    mod session_proptests {
        use super::*;
        use proptest::prelude::*;

        /// One step of a client's life: issue the next write, replay the
        /// unacked window (a reconnect), or observe a sync barrier's acks
        /// (trim the window).
        #[derive(Debug, Clone)]
        enum Op {
            Advance(Vec<u64>),
            Replay,
            Trim,
        }

        struct OpStrategy;

        impl Strategy for OpStrategy {
            type Value = Op;
            fn sample(&self, rng: &mut proptest::TestRng) -> Op {
                match rng.next_u64() % 6 {
                    0..=2 => {
                        let n = 1 + rng.next_u64() % 5;
                        Op::Advance((0..n).map(|_| rng.next_u64() % 12).collect())
                    }
                    3 | 4 => Op::Replay,
                    _ => Op::Trim,
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig {
                cases: 24,
                ..ProptestConfig::default()
            })]

            /// Session-seq dedup is idempotent under arbitrary retry
            /// interleavings: whatever mix of advances, whole-window
            /// replays, and ack-trims the client performs, every issued
            /// batch counts exactly once.
            #[test]
            fn sessioned_dedup_is_idempotent_under_retries(ops in proptest::collection::vec(OpStrategy, 1..40)) {
                let cfg = ConcurrentConfig {
                    shards: 2,
                    batch: 4,
                    publish_interval: 8,
                    view_interval: 32,
                    ..ConcurrentConfig::default()
                };
                let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(i as u64));
                let p = rt.partition();
                rt.hello(1, 0);
                let mut next_seq = 1u64;
                let mut unacked: Vec<(u64, Vec<u64>)> = Vec::new();
                let mut issued: Vec<u64> = Vec::new();
                for op in &ops {
                    match op {
                        Op::Advance(batch) => {
                            let seq = next_seq;
                            next_seq += 1;
                            issued.extend_from_slice(batch);
                            unacked.push((seq, batch.clone()));
                            rt.insert_sessioned(1, seq, &mut partitioned(p, batch));
                        }
                        Op::Replay => {
                            for (seq, batch) in unacked.clone() {
                                let out = rt.insert_sessioned(1, seq, &mut partitioned(p, &batch));
                                prop_assert_eq!(out.applied, 0, "replay re-applied seq {}", seq);
                            }
                        }
                        Op::Trim => unacked.clear(),
                    }
                }
                rt.sync();
                let reference = sequential_reference(&issued, p, |i| kernel(i as u64));
                let mut keys = issued.clone();
                keys.sort_unstable();
                keys.dedup();
                for &key in &keys {
                    prop_assert_eq!(
                        rt.estimate(key),
                        reference[p.shard_of(key)].estimate(key),
                        "key {} not counted exactly once", key
                    );
                }
                rt.finish();
            }
        }
    }
}
