//! Concurrent sharded ASketch runtime: key-partitioned worker threads with
//! wait-free point queries served *during* ingest.
//!
//! # Architecture
//!
//! [`ConcurrentASketch`] owns N long-lived worker threads. Each worker owns
//! a full sequential `ASketch` kernel for one **key partition**
//! ([`KeyPartition`]): every key hashes to exactly one shard, so per-key
//! semantics are *exactly* those of the sequential algorithm run over that
//! key's sub-stream — not a sum of per-kernel over-estimates like the SPMD
//! combine. The caller routes keys through a [`KeyRouter`], accumulating
//! per-shard batches (the PR-2 `update_batch` hot path) before sending them
//! over bounded channels that reuse the supervision machinery of the
//! pipeline runtime: journaled sequence numbers, worker checkpoints,
//! bounded restarts with exponential backoff, and a degraded inline mode
//! once the restart budget is spent. No failure mode loses or double-counts
//! an update (checkpoint + journal replay, exactly as in
//! [`crate::pipeline`]).
//!
//! # Wait-free concurrent reads
//!
//! The headline property: point queries are served **concurrently with
//! ingest**, and readers never take a lock and never block a writer.
//! Each shard exposes a [`ShardSnapshot`]:
//!
//! * an exact filter snapshot behind a double-buffered seqlock
//!   ([`FilterSnapshot`]) — filter hits answer the key's `new_count`,
//!   matching the sequential filter-hit answer at the publish instant;
//! * a lock-free sketch replica ([`sketches::SharedView`]) for keys outside
//!   the filter.
//!
//! Workers republish the filter every [`ConcurrentConfig::publish_interval`]
//! applied keys and the sketch view every
//! [`ConcurrentConfig::view_interval`] applied keys (and always at sync /
//! shutdown). [`QueryHandle`]s are `Clone + Send + Sync` and can be handed
//! to any number of reader threads.
//!
//! # Staleness bound (in ops)
//!
//! A reader's answer for key `k` reflects the owning worker's state at the
//! last publish, which lags the *routed* stream by at most
//!
//! ```text
//! publish_interval                     (filter-resident keys)
//! view_interval                        (sketch-resident keys)
//!   + queue_capacity * batch           (batches queued, not yet applied)
//!   + batch - 1                        (keys buffered in the router)
//! ```
//!
//! ops for that shard. On insert-only streams every published count is
//! monotone non-decreasing and never exceeds the quiesced true estimate, so
//! staleness is one-sided: a concurrent read never over-reports a key
//! beyond what the sequential ASketch would answer at quiesce. After
//! [`ConcurrentASketch::sync`] returns, reads are exact (equal to the
//! sequential algorithm over the routed prefix).
//!
//! # Single-writer enforcement across fail-over
//!
//! [`FilterSnapshot`] (and the shared sketch view) tolerate exactly one
//! publisher at a time, but fail-over can *abandon* a wedged worker that
//! is still alive: it keeps draining its buffered channel and publishing,
//! while a replacement is spawned into the same snapshot. To keep the
//! single-writer invariant under that race, every publish goes through a
//! **writer-generation gate** on the snapshot: publishers hold a
//! writer-side mutex for the duration of a publish and compare their
//! generation against the snapshot's; fail-over bumps the generation
//! (waiting out any in-flight publish — the critical section is a bounded
//! memory copy, never user estimator code) before the replacement starts,
//! so a stale writer's later publishes are dropped. Readers never touch
//! the gate — the read path stays wait-free.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{
    self, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};

use asketch::{ASketch, Filter, FilterItem};
use eval_metrics::{ShardGauge, ShardedHealth};
use sketches::traits::{FrequencyEstimator, Tuple, UpdateEstimate};
use sketches::SharedView;

use crate::router::KeyRouter;
use crate::seqlock::FilterSnapshot;
use crate::spmd::KeyPartition;
use crate::supervisor::{
    panic_message, BackpressurePolicy, Journal, PipelineError, SupervisionConfig,
};

/// Tunables for the concurrent sharded runtime.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Number of worker shards (key partitions).
    pub shards: usize,
    /// Keys accumulated per shard before a batch message is sent.
    pub batch: usize,
    /// Applied keys between filter snapshot publishes on a worker.
    pub publish_interval: u64,
    /// Applied keys between sketch view publishes on a worker (a view
    /// publish copies the whole counter table, so it runs coarser than the
    /// 32-item filter publish).
    pub view_interval: u64,
    /// Channel, journal, backpressure, restart, and timeout parameters,
    /// shared with the pipeline runtime.
    pub supervision: SupervisionConfig,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            batch: 256,
            publish_interval: 1024,
            view_interval: 8192,
            supervision: SupervisionConfig::default(),
        }
    }
}

/// The reader-visible face of one shard: seqlock-published exact filter
/// snapshot plus the lock-free sketch view, with publish epochs.
pub struct ShardSnapshot<S: SharedView> {
    filter: FilterSnapshot,
    view: S::View,
    view_epoch: AtomicU64,
    /// Writer-generation gate (see the module docs): the current writer's
    /// generation, held for the duration of every publish so fail-over can
    /// retire an abandoned-but-alive worker without racing its replacement.
    /// Readers never touch this.
    writer_gen: Mutex<u64>,
}

impl<S: SharedView> ShardSnapshot<S> {
    /// Wait-free point query against the last published state: filter hit
    /// answers exactly, otherwise the sketch view answers one-sidedly.
    pub fn query(&self, key: u64) -> i64 {
        match self.filter.query(key) {
            Some(count) => count,
            None => S::view_estimate(&self.view, key),
        }
    }

    /// Applied-op count at the last filter publish (staleness clock).
    pub fn filter_epoch(&self) -> u64 {
        self.filter.epoch()
    }

    /// Applied-op count at the last sketch view publish.
    pub fn view_epoch(&self) -> u64 {
        self.view_epoch.load(Ordering::Acquire)
    }

    /// Seqlock reader retries on this shard (0 in steady state; a retry is
    /// not a block — the reader re-reads immediately).
    pub fn reader_retries(&self) -> u64 {
        self.filter.retries()
    }

    /// Claim the publish gate iff `gen` is still the current writer
    /// generation; a stale writer (abandoned by fail-over) gets `None` and
    /// must drop its publish. Holding the guard serializes publishers.
    fn begin_publish(&self, gen: u64) -> Option<MutexGuard<'_, u64>> {
        let guard = self
            .writer_gen
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (*guard == gen).then_some(guard)
    }

    /// Retire the current writer: wait out any in-flight publish, bump the
    /// generation so the old writer's future publishes no-op, and return
    /// the generation the replacement must publish under.
    fn retire_writer(&self) -> u64 {
        let mut guard = self
            .writer_gen
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *guard += 1;
        *guard
    }
}

/// Publish the kernel's filter into the snapshot, stamped with the
/// kernel's applied-op count. Dropped if `gen` is no longer the
/// snapshot's writer generation.
fn publish_filter<F: Filter, S: SharedView + UpdateEstimate>(
    kernel: &ASketch<F, S>,
    snap: &ShardSnapshot<S>,
    buf: &mut Vec<FilterItem>,
    gen: u64,
) {
    kernel.snapshot_filter_into(buf);
    let Some(_writer) = snap.begin_publish(gen) else {
        return;
    };
    snap.filter.publish(buf, kernel.ops_applied());
}

/// Publish the kernel's sketch into the snapshot's shared view. Dropped if
/// `gen` is no longer the snapshot's writer generation.
fn publish_view<F: Filter, S: SharedView + UpdateEstimate>(
    kernel: &ASketch<F, S>,
    snap: &ShardSnapshot<S>,
    gen: u64,
) {
    let Some(_writer) = snap.begin_publish(gen) else {
        return;
    };
    kernel.sketch().store_view(&snap.view);
    snap.view_epoch
        .store(kernel.ops_applied(), Ordering::Release);
}

/// Messages from the router to a shard worker.
enum ToShard {
    /// One batch of keys owned by this shard, under one journal sequence.
    Batch { seq: u64, keys: Vec<u64> },
    /// Publish everything and reply with the applied-op count (barrier).
    Sync { reply: Sender<u64> },
}

/// Messages from a shard worker back to the router.
enum FromShard<K> {
    /// Periodic snapshot for the replay journal, tagged with the last
    /// applied sequence number.
    Checkpoint { seq: u64, snapshot: K },
}

/// Channel endpoints and join handle of one live shard worker.
struct ShardLink<K> {
    tx: Sender<ToShard>,
    rx: Receiver<FromShard<K>>,
    handle: JoinHandle<K>,
}

/// The shard-worker loop: apply batches through the sequential kernel,
/// publish snapshots on their intervals, checkpoint for the journal, and
/// publish one final time when the channel disconnects.
fn run_shard_worker<F, S>(
    mut kernel: ASketch<F, S>,
    rx: Receiver<ToShard>,
    out: Sender<FromShard<ASketch<F, S>>>,
    snap: Arc<ShardSnapshot<S>>,
    depth: Arc<AtomicUsize>,
    gen: u64,
    cfg: ConcurrentConfig,
) -> ASketch<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    let publish_interval = cfg.publish_interval.max(1);
    let view_interval = cfg.view_interval.max(1);
    let checkpoint_interval = cfg.supervision.checkpoint_interval.max(1);
    let mut items: Vec<FilterItem> = Vec::new();
    let mut tuples: Vec<Tuple> = Vec::with_capacity(cfg.batch);
    let (mut since_pub, mut since_view, mut since_ckpt) = (0u64, 0u64, 0u64);
    // Fresh (or respawned) worker: make the snapshot reflect this kernel
    // immediately so readers never regress behind a restart.
    publish_filter(&kernel, &snap, &mut items, gen);
    publish_view(&kernel, &snap, gen);
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Batch { seq, keys } => {
                depth.fetch_sub(1, Ordering::Relaxed);
                tuples.clear();
                tuples.extend(keys.iter().map(|&k| (k, 1i64)));
                kernel.update_batch(&tuples);
                let n = keys.len() as u64;
                since_pub += n;
                since_view += n;
                since_ckpt += n;
                if since_pub >= publish_interval {
                    since_pub = 0;
                    publish_filter(&kernel, &snap, &mut items, gen);
                }
                if since_view >= view_interval {
                    since_view = 0;
                    publish_view(&kernel, &snap, gen);
                }
                if since_ckpt >= checkpoint_interval {
                    since_ckpt = 0;
                    let _ = out.send(FromShard::Checkpoint {
                        seq,
                        snapshot: kernel.clone(),
                    });
                }
            }
            ToShard::Sync { reply } => {
                publish_filter(&kernel, &snap, &mut items, gen);
                publish_view(&kernel, &snap, gen);
                let _ = reply.send(kernel.ops_applied());
            }
        }
    }
    // Channel disconnected: final publish so handles outlive the runtime
    // (dropped if this worker was abandoned and its generation retired).
    publish_filter(&kernel, &snap, &mut items, gen);
    publish_view(&kernel, &snap, gen);
    kernel
}

fn spawn_shard_worker<F, S>(
    kernel: ASketch<F, S>,
    snap: &Arc<ShardSnapshot<S>>,
    depth: &Arc<AtomicUsize>,
    gen: u64,
    cfg: &ConcurrentConfig,
) -> ShardLink<ASketch<F, S>>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    let (tx, rx) = channel::bounded::<ToShard>(cfg.supervision.queue_capacity);
    // Checkpoints are unbounded: the worker must never block on the caller.
    let (out_tx, out_rx) = channel::unbounded::<FromShard<ASketch<F, S>>>();
    let snap = Arc::clone(snap);
    let depth = Arc::clone(depth);
    let cfg = cfg.clone();
    let handle =
        std::thread::spawn(move || run_shard_worker(kernel, rx, out_tx, snap, depth, gen, cfg));
    ShardLink {
        tx,
        rx: out_rx,
        handle,
    }
}

/// Caller-side state of one shard: the live worker (or the degraded inline
/// kernel), its journal, snapshot, spill buffer, and fault counters.
struct ShardState<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    link: Option<ShardLink<ASketch<F, S>>>,
    journal: Journal<ASketch<F, S>>,
    snap: Arc<ShardSnapshot<S>>,
    /// The snapshot's current writer generation: held by the live worker
    /// (or the inline kernel once degraded), bumped on every fail-over.
    writer_gen: u64,
    /// Batches sent and not yet applied by the worker (queue depth gauge).
    /// Replaced wholesale on fail-over — an abandoned worker keeps
    /// decrementing its own (old) counter, which would otherwise wrap.
    depth: Arc<AtomicUsize>,
    spill: VecDeque<ToShard>,
    /// The kernel applied inline once the restart budget is spent.
    inline: Option<ASketch<F, S>>,
    routed: u64,
    queue_full_events: u64,
    spilled: u64,
    restarts: u64,
    failures: u64,
    checkpoints: u64,
    last_error: Option<PipelineError>,
}

impl<F, S> ShardState<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    fn new(kernel: ASketch<F, S>, cfg: &ConcurrentConfig) -> Self {
        let mut items = Vec::new();
        kernel.snapshot_filter_into(&mut items);
        let snap = Arc::new(ShardSnapshot {
            filter: FilterSnapshot::new(kernel.filter().capacity().max(items.len())),
            view: kernel.sketch().new_view(),
            view_epoch: AtomicU64::new(kernel.ops_applied()),
            writer_gen: Mutex::new(0),
        });
        snap.filter.publish(&items, kernel.ops_applied());
        let journal = Journal::new(kernel.clone());
        let depth = Arc::new(AtomicUsize::new(0));
        let link = spawn_shard_worker(kernel, &snap, &depth, 0, cfg);
        Self {
            link: Some(link),
            journal,
            snap,
            writer_gen: 0,
            depth,
            spill: VecDeque::new(),
            inline: None,
            routed: 0,
            queue_full_events: 0,
            spilled: 0,
            restarts: 0,
            failures: 0,
            checkpoints: 0,
            last_error: None,
        }
    }

    /// Harvest queued checkpoints; prunes the replay journal.
    fn drain_checkpoints(&mut self) {
        let Some(link) = self.link.as_ref() else {
            return;
        };
        let mut received = Vec::new();
        while let Ok(FromShard::Checkpoint { seq, snapshot }) = link.rx.try_recv() {
            received.push((seq, snapshot));
        }
        for (seq, snapshot) in received {
            self.checkpoints += 1;
            self.journal.on_checkpoint(seq, snapshot);
        }
    }

    /// Apply a batch inline (degraded mode) and republish snapshots so
    /// readers keep seeing fresh state.
    fn apply_inline(&mut self, keys: &[u64]) {
        let kernel = self
            .inline
            .as_mut()
            .expect("degraded shard has an inline kernel");
        kernel.insert_batch(keys);
        let kernel = self
            .inline
            .as_ref()
            .expect("degraded shard has an inline kernel");
        let mut items = Vec::new();
        publish_filter(kernel, &self.snap, &mut items, self.writer_gen);
        publish_view(kernel, &self.snap, self.writer_gen);
    }

    /// Tear down a failed worker, reconstruct from checkpoint + journal,
    /// and respawn or degrade. Mirrors the pipeline's fail-over (including
    /// the no-resend rule: in-flight journaled batches are folded into the
    /// restore, never retransmitted).
    fn fail_over(&mut self, err: Option<PipelineError>, cfg: &ConcurrentConfig) {
        let Some(link) = self.link.take() else { return };
        self.failures += 1;
        while let Ok(FromShard::Checkpoint { seq, snapshot }) = link.rx.try_recv() {
            self.checkpoints += 1;
            self.journal.on_checkpoint(seq, snapshot);
        }
        drop(link.tx);
        let mut finished = link.handle.is_finished();
        if !finished {
            std::thread::sleep(Duration::from_millis(2));
            finished = link.handle.is_finished();
        }
        let error = if finished {
            match link.handle.join() {
                Err(payload) => PipelineError::WorkerPanicked(panic_message(payload)),
                Ok(_) => err.unwrap_or(PipelineError::Disconnected),
            }
        } else {
            err.unwrap_or(PipelineError::EstimateTimeout)
        };
        self.last_error = Some(error);
        // Spilled-but-unsent batches are journaled; the restore replays
        // them, so the spill queue resets.
        self.spill.clear();
        // Retire the old writer before anything republishes: an abandoned
        // worker that is still alive keeps draining its channel and
        // publishing, and the gate drops those stale publishes instead of
        // letting them race the replacement (torn pairs, epoch regression).
        // The journal restore covers everything routed, so the replacement
        // republishes at an epoch >= anything the old worker published.
        self.writer_gen = self.snap.retire_writer();
        // Fresh depth gauge: the abandoned worker keeps fetch_sub-ing its
        // own counter for every batch it drains, which would wrap a shared
        // one to ~2^64.
        self.depth = Arc::new(AtomicUsize::new(0));
        let restored = self.journal.restore();
        if self.restarts < u64::from(cfg.supervision.max_restarts) {
            self.restarts += 1;
            let backoff = cfg.supervision.backoff_for(self.restarts);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            self.journal.reset(restored.clone());
            // The respawned worker publishes the restored state on entry,
            // so readers catch up without waiting a publish interval.
            self.link = Some(spawn_shard_worker(
                restored,
                &self.snap,
                &self.depth,
                self.writer_gen,
                cfg,
            ));
        } else {
            let mut items = Vec::new();
            publish_filter(&restored, &self.snap, &mut items, self.writer_gen);
            publish_view(&restored, &self.snap, self.writer_gen);
            self.inline = Some(restored);
        }
    }

    /// Flush as much of the spill queue as fits without blocking.
    fn flush_spill_try(&mut self, cfg: &ConcurrentConfig) {
        while let Some(msg) = self.spill.pop_front() {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            match link.tx.try_send(msg) {
                Ok(()) => {
                    self.depth.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(m)) => {
                    self.spill.push_front(m);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.fail_over(None, cfg);
                    return;
                }
            }
        }
    }

    /// Flush the whole spill queue, waiting for channel space; a wedged
    /// worker is failed over (the journal preserves every spilled batch).
    fn flush_spill_sync(&mut self, cfg: &ConcurrentConfig) {
        while let Some(msg) = self.spill.pop_front() {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            match link.tx.send_timeout(msg, cfg.supervision.send_timeout) {
                Ok(()) => {
                    self.depth.fetch_add(1, Ordering::Relaxed);
                }
                Err(SendTimeoutError::Timeout(_)) => {
                    self.fail_over(Some(PipelineError::EstimateTimeout), cfg);
                    return;
                }
                Err(SendTimeoutError::Disconnected(_)) => {
                    self.fail_over(None, cfg);
                    return;
                }
            }
        }
    }

    /// Append to the spill queue, degrading to a synchronous flush when the
    /// spill itself is full — memory stays bounded, nothing is dropped.
    fn push_spill(&mut self, msg: ToShard, cfg: &ConcurrentConfig) {
        if self.spill.len() >= cfg.supervision.spill_capacity.max(1) {
            let generation = self.failures;
            self.flush_spill_sync(cfg);
            if self.failures != generation || self.link.is_none() {
                // Failed over mid-flush: `msg` is journaled and folded
                // into the restore — abandon it or it double-counts.
                return;
            }
        }
        self.spilled += 1;
        self.spill.push_back(msg);
    }

    /// Blocking send with a wedge bound.
    fn send_sync(&mut self, msg: ToShard, cfg: &ConcurrentConfig) {
        let Some(link) = self.link.as_ref() else {
            return;
        };
        match link.tx.send_timeout(msg, cfg.supervision.send_timeout) {
            Ok(()) => {
                self.depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(SendTimeoutError::Timeout(_)) => {
                self.fail_over(Some(PipelineError::EstimateTimeout), cfg);
            }
            Err(SendTimeoutError::Disconnected(_)) => self.fail_over(None, cfg),
        }
    }

    /// Ship one full batch to this shard's worker: journal first (so no
    /// failure mode can lose it), then send under the backpressure policy.
    fn ship(&mut self, keys: Vec<u64>, cfg: &ConcurrentConfig) {
        self.routed += keys.len() as u64;
        if self.link.is_none() {
            self.apply_inline(&keys);
            return;
        }
        let seq = self.journal.next_seq();
        for &k in &keys {
            self.journal.record_at(seq, k, 1);
        }
        self.drain_checkpoints();
        let msg = ToShard::Batch { seq, keys };
        // Fail-over generation discipline (see the pipeline): if the spill
        // flush fails over, the journaled `msg` is already folded into the
        // restored kernel — sending it too would double-count.
        let generation = self.failures;
        self.flush_spill_try(cfg);
        if self.failures != generation || self.link.is_none() {
            return;
        }
        if !self.spill.is_empty() {
            self.push_spill(msg, cfg);
            return;
        }
        let sent = self
            .link
            .as_ref()
            .expect("worker link checked above")
            .tx
            .try_send(msg);
        match sent {
            Ok(()) => {
                self.depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(m)) => {
                self.queue_full_events += 1;
                match cfg.supervision.backpressure {
                    BackpressurePolicy::Block => self.send_sync(m, cfg),
                    BackpressurePolicy::InlineFallback => self.push_spill(m, cfg),
                }
            }
            Err(TrySendError::Disconnected(_)) => self.fail_over(None, cfg),
        }
    }

    /// Barrier against this shard: every routed batch applied and published.
    /// Bounded retries — each failed round trip consumes a restart (or ends
    /// degraded, where state is already published inline).
    fn sync(&mut self, cfg: &ConcurrentConfig) {
        let max_rounds = u64::from(cfg.supervision.max_restarts) + 2;
        for _ in 0..max_rounds {
            self.flush_spill_sync(cfg);
            let Some(link) = self.link.as_ref() else {
                return; // degraded: apply_inline already published
            };
            let (reply_tx, reply_rx) = channel::bounded(1);
            let sent = link.tx.send_timeout(
                ToShard::Sync { reply: reply_tx },
                cfg.supervision.send_timeout,
            );
            match sent {
                Ok(()) => match reply_rx.recv_timeout(cfg.supervision.send_timeout) {
                    Ok(_epoch) => {
                        self.drain_checkpoints();
                        return;
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        self.fail_over(Some(PipelineError::EstimateTimeout), cfg);
                    }
                    Err(RecvTimeoutError::Disconnected) => self.fail_over(None, cfg),
                },
                Err(SendTimeoutError::Timeout(_)) => {
                    self.fail_over(Some(PipelineError::EstimateTimeout), cfg);
                }
                Err(SendTimeoutError::Disconnected(_)) => self.fail_over(None, cfg),
            }
        }
    }

    fn gauge(&self, shard: usize, cfg: &ConcurrentConfig) -> ShardGauge {
        ShardGauge {
            shard,
            queue_depth: self.depth.load(Ordering::Relaxed),
            queue_capacity: cfg.supervision.queue_capacity,
            routed_ops: self.routed,
            published_epoch: self.snap.filter_epoch(),
            view_epoch: self.snap.view_epoch(),
            reader_retries: self.snap.reader_retries(),
            restarts: self.restarts,
            worker_failures: self.failures,
            degraded: self.inline.is_some(),
        }
    }
}

/// A cloneable, thread-safe handle for concurrent point queries against a
/// [`ConcurrentASketch`]'s published snapshots.
///
/// Reads are wait-free: no lock, no channel round trip, no writer stall.
/// Answers reflect each shard's last publish (see the module-level
/// staleness bound); handles stay valid (and frozen at the final state)
/// after the runtime finishes.
pub struct QueryHandle<S: SharedView> {
    snaps: Arc<Vec<Arc<ShardSnapshot<S>>>>,
    partition: KeyPartition,
}

impl<S: SharedView> Clone for QueryHandle<S> {
    fn clone(&self) -> Self {
        Self {
            snaps: Arc::clone(&self.snaps),
            partition: self.partition,
        }
    }
}

impl<S: SharedView> QueryHandle<S> {
    /// Wait-free point query: exact for filter-resident keys (at the last
    /// publish), one-sided via the sketch view otherwise.
    pub fn estimate(&self, key: u64) -> i64 {
        self.snaps[self.partition.shard_of(key)].query(key)
    }

    /// Point queries for a batch of keys, in order.
    pub fn estimate_batch(&self, keys: &[u64]) -> Vec<i64> {
        keys.iter().map(|&k| self.estimate(k)).collect()
    }

    /// The key partition (for callers that co-locate work by shard).
    pub fn partition(&self) -> KeyPartition {
        self.partition
    }

    /// Per-shard snapshot access (epochs, retries).
    pub fn shard(&self, shard: usize) -> &ShardSnapshot<S> {
        &self.snaps[shard]
    }

    /// Oldest filter publish epoch across shards.
    pub fn min_filter_epoch(&self) -> u64 {
        self.snaps
            .iter()
            .map(|s| s.filter_epoch())
            .min()
            .unwrap_or(0)
    }

    /// Total seqlock reader retries across shards (0 in steady state).
    pub fn reader_retries(&self) -> u64 {
        self.snaps.iter().map(|s| s.reader_retries()).sum()
    }
}

/// The concurrent sharded runtime. See the module docs.
pub struct ConcurrentASketch<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    shards: Vec<ShardState<F, S>>,
    router: KeyRouter,
    snaps: Arc<Vec<Arc<ShardSnapshot<S>>>>,
    cfg: ConcurrentConfig,
}

impl<F, S> ConcurrentASketch<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Spawn `cfg.shards` workers, shard `i` owning the kernel built by
    /// `make_kernel(i)`.
    ///
    /// # Panics
    /// Panics if `cfg.shards == 0`.
    pub fn spawn(cfg: ConcurrentConfig, make_kernel: impl Fn(usize) -> ASketch<F, S>) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        let shards: Vec<ShardState<F, S>> = (0..cfg.shards)
            .map(|i| ShardState::new(make_kernel(i), &cfg))
            .collect();
        let snaps = Arc::new(shards.iter().map(|s| Arc::clone(&s.snap)).collect());
        let router = KeyRouter::new(KeyPartition::new(cfg.shards), cfg.batch.max(1));
        Self {
            shards,
            router,
            snaps,
            cfg,
        }
    }

    /// Route one key to its owning shard (batched; a full batch is shipped
    /// immediately).
    #[inline]
    pub fn insert(&mut self, key: u64) {
        if let Some((shard, batch)) = self.router.push(key) {
            self.shards[shard].ship(batch, &self.cfg);
        }
    }

    /// Route a slice of keys.
    pub fn insert_batch(&mut self, keys: &[u64]) {
        for &key in keys {
            self.insert(key);
        }
    }

    /// Flush every router partial to its shard.
    fn flush_router(&mut self) {
        for shard in 0..self.shards.len() {
            let partial = self.router.take(shard);
            if !partial.is_empty() {
                self.shards[shard].ship(partial, &self.cfg);
            }
        }
    }

    /// Barrier: every key routed so far is applied and published. After
    /// this returns, [`QueryHandle`] answers are exact (equal to the
    /// sequential ASketch over each shard's sub-stream).
    pub fn sync(&mut self) {
        self.flush_router();
        for shard in 0..self.shards.len() {
            self.shards[shard].sync(&self.cfg);
        }
    }

    /// A wait-free concurrent query handle (cheap; clone freely across
    /// reader threads).
    pub fn query_handle(&self) -> QueryHandle<S> {
        QueryHandle {
            snaps: Arc::clone(&self.snaps),
            partition: self.router.partition(),
        }
    }

    /// Point query from the owning thread: reads the same published
    /// snapshots as [`QueryHandle`] (subject to the same staleness bound;
    /// call [`sync`](Self::sync) first for exact answers).
    pub fn estimate(&self, key: u64) -> i64 {
        self.snaps[self.router.partition().shard_of(key)].query(key)
    }

    /// The key partition used for routing and query ownership.
    pub fn partition(&self) -> KeyPartition {
        self.router.partition()
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &ConcurrentConfig {
        &self.cfg
    }

    /// Per-shard health gauges: queue depth/occupancy, publish epochs,
    /// reader retries, restart/fault counters.
    pub fn health(&self) -> ShardedHealth {
        ShardedHealth {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.gauge(i, &self.cfg))
                .collect(),
        }
    }

    /// Shut every worker down and return the per-shard kernels (shard
    /// order). Never hangs: a healthy worker is joined (publishing its
    /// final state on the way out); a panicked or wedged one is replaced by
    /// its journal reconstruction.
    pub fn finish(mut self) -> Vec<ASketch<F, S>> {
        self.flush_router();
        let mut kernels = Vec::with_capacity(self.shards.len());
        for st in self.shards.iter_mut() {
            st.flush_spill_sync(&self.cfg);
            st.drain_checkpoints();
            let Some(link) = st.link.take() else {
                kernels.push(
                    st.inline
                        .take()
                        .expect("degraded shard has an inline kernel"),
                );
                continue;
            };
            drop(link.tx);
            let deadline = Instant::now() + self.cfg.supervision.shutdown_timeout;
            while !link.handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            let kernel = if link.handle.is_finished() {
                match link.handle.join() {
                    Ok(kernel) => kernel,
                    Err(payload) => {
                        st.failures += 1;
                        st.last_error = Some(PipelineError::WorkerPanicked(panic_message(payload)));
                        st.journal.restore()
                    }
                }
            } else {
                // Wedged past the deadline: abandon the thread and
                // reconstruct (it exits when it touches the dead channel).
                // Retire its writer generation first so its final
                // on-disconnect publish is dropped instead of racing (or
                // landing after) the republish below.
                st.failures += 1;
                st.last_error = Some(PipelineError::EstimateTimeout);
                st.writer_gen = st.snap.retire_writer();
                st.journal.restore()
            };
            // The clean path already published on disconnect; republish
            // here so the restore paths leave handles coherent too.
            let mut items = Vec::new();
            publish_filter(&kernel, &st.snap, &mut items, st.writer_gen);
            publish_view(&kernel, &st.snap, st.writer_gen);
            kernels.push(kernel);
        }
        kernels
    }
}

impl<F, S> Drop for ConcurrentASketch<F, S>
where
    F: Filter + Clone + Send + 'static,
    S: SharedView + UpdateEstimate + Clone + Send + 'static,
{
    /// Best-effort teardown for runtimes dropped without
    /// [`finish`](Self::finish): disconnect every worker and wait a bounded
    /// time. Never hangs, never panics.
    fn drop(&mut self) {
        let links: Vec<ShardLink<ASketch<F, S>>> = self
            .shards
            .iter_mut()
            .filter_map(|s| s.link.take())
            .collect();
        // Drop every sender first so all workers wind down in parallel.
        let handles: Vec<JoinHandle<ASketch<F, S>>> = links
            .into_iter()
            .map(|l| {
                drop(l.tx);
                l.handle
            })
            .collect();
        let deadline = Instant::now() + self.cfg.supervision.shutdown_timeout;
        for handle in handles {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyEstimator};
    use asketch::filter::VectorFilter;
    use sketches::CountMin;

    fn stream(len: usize) -> Vec<u64> {
        let mut x = 0x5EED_2016u64;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                match x % 10 {
                    0..=5 => x % 8,             // heavy keys
                    _ => 100 + (x >> 16) % 512, // tail
                }
            })
            .collect()
    }

    fn kernel(seed: u64) -> ASketch<VectorFilter, CountMin> {
        ASketch::new(
            VectorFilter::new(16),
            CountMin::new(seed, 4, 1 << 12).unwrap(),
        )
    }

    /// Sequential reference: each shard's sub-stream through its own
    /// sequential kernel, queried at the owner.
    fn sequential_reference(
        stream: &[u64],
        partition: KeyPartition,
        make: impl Fn(usize) -> ASketch<VectorFilter, CountMin>,
    ) -> Vec<ASketch<VectorFilter, CountMin>> {
        let mut kernels: Vec<_> = (0..partition.shards()).map(&make).collect();
        for &key in stream {
            kernels[partition.shard_of(key)].insert(key);
        }
        kernels
    }

    #[test]
    fn sync_makes_queries_exactly_sequential() {
        let cfg = ConcurrentConfig {
            shards: 3,
            batch: 64,
            publish_interval: 256,
            view_interval: 1024,
            ..ConcurrentConfig::default()
        };
        let data = stream(40_000);
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(10 + i as u64));
        rt.insert_batch(&data);
        rt.sync();
        let reference = sequential_reference(&data, rt.partition(), |i| kernel(10 + i as u64));
        let p = rt.partition();
        let handle = rt.query_handle();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            let expect = reference[p.shard_of(key)].estimate(key);
            assert_eq!(handle.estimate(key), expect, "key {key} diverges post-sync");
            assert_eq!(rt.estimate(key), expect, "owner query diverges for {key}");
        }
        // Finish and compare the final kernels per key as well.
        let kernels = rt.finish();
        for &key in &keys {
            let shard = p.shard_of(key);
            assert_eq!(
                kernels[shard].estimate(key),
                reference[shard].estimate(key),
                "finished kernel diverges for {key}"
            );
        }
        // Handles stay valid (frozen at final state) after finish.
        for &key in keys.iter().take(50) {
            assert_eq!(
                handle.estimate(key),
                reference[p.shard_of(key)].estimate(key)
            );
        }
    }

    #[test]
    fn blocked_backend_slots_into_the_runtime() {
        // The cache-line-blocked backend implements the same SharedView /
        // UpdateEstimate surface as CountMin, so it must drop into the
        // sharded runtime unchanged — and answer exactly like the
        // sequential blocked kernel over each shard's sub-stream once
        // sync() has drained and published.
        use sketches::BlockedCountMin;
        let blocked = |seed: u64| {
            ASketch::new(
                VectorFilter::new(16),
                BlockedCountMin::new(seed, 4, 1 << 9).unwrap(),
            )
        };
        let cfg = ConcurrentConfig {
            shards: 3,
            batch: 64,
            publish_interval: 256,
            view_interval: 1024,
            ..ConcurrentConfig::default()
        };
        let data = stream(30_000);
        let mut rt = ConcurrentASketch::spawn(cfg, |i| blocked(20 + i as u64));
        rt.insert_batch(&data);
        rt.sync();
        let p = rt.partition();
        let mut reference: Vec<_> = (0..p.shards()).map(|i| blocked(20 + i as u64)).collect();
        for &key in &data {
            reference[p.shard_of(key)].insert(key);
        }
        let handle = rt.query_handle();
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            let expect = reference[p.shard_of(key)].estimate(key);
            assert_eq!(handle.estimate(key), expect, "key {key} diverges post-sync");
            assert_eq!(rt.estimate(key), expect, "owner query diverges for {key}");
        }
        let kernels = rt.finish();
        for &key in &keys {
            let shard = p.shard_of(key);
            assert_eq!(
                kernels[shard].estimate(key),
                reference[shard].estimate(key),
                "finished blocked kernel diverges for {key}"
            );
        }
    }

    #[test]
    fn concurrent_reads_never_block_and_stay_one_sided() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 32,
            publish_interval: 64,
            view_interval: 256,
            ..ConcurrentConfig::default()
        };
        // Collision-free for the heavy key: one-sidedness becomes exactness
        // once quiesced; mid-ingest reads must be monotone and bounded.
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(99 + i as u64));
        let handle = rt.query_handle();
        let heavy = 7u64;
        let total = 60_000usize;
        let reader = std::thread::spawn(move || {
            let mut last = 0i64;
            let mut observations = 0u64;
            loop {
                let est = handle.estimate(heavy);
                assert!(est >= last, "estimate regressed: {est} < {last}");
                assert!(est <= total as i64, "read above quiesced truth");
                last = est;
                observations += 1;
                if est >= total as i64 {
                    return (observations, handle.reader_retries());
                }
                std::thread::yield_now();
            }
        });
        for _ in 0..total {
            rt.insert(heavy);
        }
        rt.sync();
        let (observations, retries) = reader.join().unwrap();
        assert!(observations > 0);
        // Wait-free: readers take zero locks, so a retry is the only
        // contention artifact possible, and it costs one immediate re-read
        // — it can never exceed the number of successful observations.
        assert!(
            retries <= observations,
            "retries ({retries}) outnumber reads ({observations})"
        );
        assert_eq!(rt.estimate(heavy), total as i64);
    }

    #[test]
    fn worker_panic_restarts_and_loses_nothing() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 16,
            publish_interval: 64,
            view_interval: 256,
            supervision: SupervisionConfig {
                queue_capacity: 8,
                checkpoint_interval: 64,
                max_restarts: 3,
                restart_backoff: Duration::from_millis(1),
                ..SupervisionConfig::default()
            },
        };
        let make = |i: usize| {
            ASketch::new(
                VectorFilter::new(8),
                FaultyEstimator::new(
                    CountMin::new(50 + i as u64, 4, 1 << 12).unwrap(),
                    FaultPlan::panic_at(300).with_message("injected shard crash"),
                ),
            )
        };
        let data = stream(30_000);
        let mut rt = ConcurrentASketch::spawn(cfg, make);
        rt.insert_batch(&data);
        rt.sync();
        let health = rt.health();
        assert!(
            health.total_restarts() >= 1,
            "fault plan must trigger at least one restart: {health:?}"
        );
        assert!(!health.any_degraded(), "restart budget not exhausted");
        // Checkpoint + journal replay: still exactly sequential per key.
        let p = rt.partition();
        let mut reference: Vec<_> = (0..2)
            .map(|i| {
                ASketch::new(
                    VectorFilter::new(8),
                    CountMin::new(50 + i as u64, 4, 1 << 12).unwrap(),
                )
            })
            .collect();
        for &key in &data {
            reference[p.shard_of(key)].insert(key);
        }
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt.estimate(key),
                reference[p.shard_of(key)].estimate(key),
                "post-restart divergence for key {key}"
            );
        }
    }

    #[test]
    fn stale_writer_generation_publish_is_dropped() {
        let mut k = kernel(1);
        for _ in 0..10 {
            k.insert(42);
        }
        let snap = ShardSnapshot::<CountMin> {
            filter: FilterSnapshot::new(16),
            view: k.sketch().new_view(),
            view_epoch: AtomicU64::new(0),
            writer_gen: Mutex::new(0),
        };
        let mut buf = Vec::new();
        publish_filter(&k, &snap, &mut buf, 0);
        publish_view(&k, &snap, 0);
        assert_eq!(snap.query(42), 10);
        assert_eq!(snap.filter_epoch(), 10);
        assert_eq!(snap.view_epoch(), 10);

        // Fail-over retires generation 0; the old writer keeps running.
        assert_eq!(snap.retire_writer(), 1);
        for _ in 0..10 {
            k.insert(42);
        }
        publish_filter(&k, &snap, &mut buf, 0);
        publish_view(&k, &snap, 0);
        assert_eq!(snap.query(42), 10, "stale publish must be dropped");
        assert_eq!(snap.filter_epoch(), 10);
        assert_eq!(snap.view_epoch(), 10);
        assert!(snap.begin_publish(0).is_none());

        // The replacement writer publishes under the new generation.
        publish_filter(&k, &snap, &mut buf, 1);
        publish_view(&k, &snap, 1);
        assert_eq!(snap.query(42), 20);
        assert_eq!(snap.filter_epoch(), 20);
        assert_eq!(snap.view_epoch(), 20);
    }

    /// The review scenario for timeout fail-over: the first worker wedges
    /// (injected sleep inside the sketch) long enough for the send path to
    /// time out and abandon it *alive*. The abandoned thread then drains
    /// its buffered channel and publishes at intervals and on disconnect —
    /// racing the respawned worker on the same snapshot unless the
    /// generation gate drops its publishes. A concurrent reader asserts
    /// the published epochs never regress, the depth gauge must not wrap,
    /// and post-sync answers must still be exactly sequential.
    #[test]
    fn abandoned_wedged_worker_cannot_corrupt_snapshots() {
        let cfg = ConcurrentConfig {
            shards: 1,
            batch: 8,
            publish_interval: 16,
            view_interval: 64,
            supervision: SupervisionConfig {
                queue_capacity: 2,
                backpressure: BackpressurePolicy::Block,
                checkpoint_interval: 64,
                send_timeout: Duration::from_millis(10),
                max_restarts: 3,
                restart_backoff: Duration::from_millis(1),
                ..SupervisionConfig::default()
            },
        };
        // Wedge for 100ms on the 200th sketch op; the restored clone is
        // disarmed (FaultPlan disarms on clone), so exactly one worker
        // ever wedges.
        let make = |_: usize| {
            ASketch::new(
                VectorFilter::new(8),
                FaultyEstimator::new(
                    CountMin::new(7, 4, 1 << 12).unwrap(),
                    FaultPlan::slow_updates(200, Duration::from_millis(100)),
                ),
            )
        };
        let data = stream(30_000);
        let mut rt = ConcurrentASketch::spawn(cfg, make);
        let handle = rt.query_handle();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let (mut last_filter, mut last_view) = (0u64, 0u64);
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let fe = handle.shard(0).filter_epoch();
                    let ve = handle.shard(0).view_epoch();
                    assert!(
                        fe >= last_filter,
                        "filter epoch regressed: {fe} < {last_filter}"
                    );
                    assert!(ve >= last_view, "view epoch regressed: {ve} < {last_view}");
                    last_filter = fe;
                    last_view = ve;
                    observations += 1;
                    std::thread::yield_now();
                }
                observations
            })
        };
        rt.insert_batch(&data);
        rt.sync();
        let health = rt.health();
        assert!(
            health.total_restarts() >= 1,
            "the wedge must force at least one timeout fail-over: {health:?}"
        );
        assert!(!health.any_degraded());
        // Depth gauge must be fresh, not wrapped by the abandoned worker.
        for g in &health.shards {
            assert_eq!(g.queue_depth, 0, "gauge corrupted: {g:?}");
        }
        stop.store(true, Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0);
        // Per-key answers still exactly sequential after the abandonment.
        let reference = {
            let mut k = ASketch::new(VectorFilter::new(8), CountMin::new(7, 4, 1 << 12).unwrap());
            for &key in &data {
                k.insert(key);
            }
            k
        };
        let mut keys: Vec<u64> = data.clone();
        keys.sort_unstable();
        keys.dedup();
        for &key in &keys {
            assert_eq!(
                rt.estimate(key),
                reference.estimate(key),
                "post-abandonment divergence for key {key}"
            );
        }
    }

    #[test]
    fn health_gauges_report_activity() {
        let cfg = ConcurrentConfig {
            shards: 2,
            batch: 8,
            ..ConcurrentConfig::default()
        };
        let mut rt = ConcurrentASketch::spawn(cfg, |i| kernel(3 + i as u64));
        let data = stream(5_000);
        rt.insert_batch(&data);
        rt.sync();
        let health = rt.health();
        assert_eq!(health.shards.len(), 2);
        assert_eq!(health.total_routed(), 5_000);
        assert!(!health.any_degraded());
        for g in &health.shards {
            assert_eq!(g.queue_depth, 0, "sync barrier must drain the queue");
            assert!(g.published_epoch > 0, "filter must have been published");
            assert!(g.view_epoch > 0, "view must have been published");
            assert_eq!(g.restarts, 0);
        }
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let mut rt = ConcurrentASketch::spawn(
            ConcurrentConfig {
                shards: 2,
                ..ConcurrentConfig::default()
            },
            |i| kernel(i as u64),
        );
        rt.insert_batch(&stream(1_000));
        drop(rt);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ConcurrentASketch::spawn(
            ConcurrentConfig {
                shards: 0,
                ..ConcurrentConfig::default()
            },
            |i| kernel(i as u64),
        );
    }
}
