//! Pipeline-parallel Holistic UDAF ("Parallel Hollistic UDAFs" in the
//! paper's Figure 12): the low-level aggregation table runs on the caller's
//! core and each wholesale flush is shipped to a sketch worker as one batch
//! message, so the table core "can immediately start processing next items
//! from the input stream" while the sketch absorbs the batch.

use crossbeam::channel::{self, Receiver, Sender};
use std::thread::JoinHandle;

use sketches::lookup;
use sketches::traits::FrequencyEstimator;
use sketches::CountMin;

/// Messages to the sketch worker.
enum Msg {
    /// A flushed batch of `(key, count)` aggregates.
    Batch(Vec<(u64, i64)>),
    /// Point-query round trip.
    Estimate { key: u64, reply: Sender<i64> },
    /// Stop and return the sketch.
    Shutdown,
}

const EMPTY_KEY: u64 = u64::MAX;

#[inline]
fn canon(key: u64) -> u64 {
    if key == EMPTY_KEY {
        EMPTY_KEY - 1
    } else {
        key
    }
}

/// Holistic UDAF with the sketch on a dedicated worker thread.
pub struct PipelineHUdaf {
    ids: Vec<u64>,
    counts: Vec<i64>,
    fill: usize,
    to_sketch: Sender<Msg>,
    worker: JoinHandle<CountMin>,
    flushes: u64,
}

impl PipelineHUdaf {
    /// Spawn the sketch worker with a `table_items`-slot front table.
    ///
    /// # Panics
    /// Panics if `table_items == 0`.
    pub fn spawn(sketch: CountMin, table_items: usize) -> Self {
        assert!(table_items > 0, "table must hold at least one item");
        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = channel::unbounded();
        let mut sketch = sketch;
        let worker = std::thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Batch(batch) => {
                        for (key, count) in batch {
                            sketch.update(key, count);
                        }
                    }
                    Msg::Estimate { key, reply } => {
                        let _ = reply.send(sketch.estimate(key));
                    }
                    Msg::Shutdown => break,
                }
            }
            sketch
        });
        Self {
            ids: vec![EMPTY_KEY; table_items],
            counts: vec![0; table_items],
            fill: 0,
            to_sketch: tx,
            worker,
            flushes: 0,
        }
    }

    /// Ship the whole table to the sketch core and clear it.
    fn flush(&mut self) {
        if self.fill == 0 {
            return;
        }
        let batch: Vec<(u64, i64)> = (0..self.fill).map(|i| (self.ids[i], self.counts[i])).collect();
        self.to_sketch.send(Msg::Batch(batch)).expect("worker alive");
        for i in 0..self.fill {
            self.ids[i] = EMPTY_KEY;
            self.counts[i] = 0;
        }
        self.fill = 0;
        self.flushes += 1;
    }

    /// Ingest one tuple.
    pub fn update(&mut self, key: u64, delta: i64) {
        let key = canon(key);
        if let Some(i) = lookup::find_key(&self.ids[..self.fill], key) {
            self.counts[i] += delta;
            return;
        }
        if self.fill == self.ids.len() {
            self.flush();
        }
        let i = self.fill;
        self.ids[i] = key;
        self.counts[i] = delta;
        self.fill += 1;
    }

    /// Convenience: `update(key, 1)`.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Point query: sketch estimate (round trip, FIFO-ordered behind all
    /// shipped batches) plus any count still pending in the local table.
    pub fn estimate(&mut self, key: u64) -> i64 {
        let key = canon(key);
        let pending = lookup::find_key(&self.ids[..self.fill], key).map_or(0, |i| self.counts[i]);
        let (tx, rx) = channel::bounded(1);
        self.to_sketch
            .send(Msg::Estimate { key, reply: tx })
            .expect("worker alive");
        rx.recv().expect("worker answers") + pending
    }

    /// Wholesale flushes performed so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Shut down and return the sketch.
    pub fn finish(mut self) -> CountMin {
        self.flush();
        self.to_sketch.send(Msg::Shutdown).expect("worker alive");
        self.worker.join().expect("sketch worker must not panic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline(table: usize) -> PipelineHUdaf {
        PipelineHUdaf::spawn(CountMin::new(3, 4, 1 << 12).unwrap(), table)
    }

    #[test]
    fn aggregates_runs_locally() {
        let mut p = pipeline(8);
        for _ in 0..500 {
            p.insert(7);
        }
        assert_eq!(p.flush_count(), 0);
        assert_eq!(p.estimate(7), 500);
    }

    #[test]
    fn flush_ships_batches() {
        let mut p = pipeline(2);
        p.insert(1);
        p.insert(2);
        p.insert(3); // forces a flush of {1,2}
        assert_eq!(p.flush_count(), 1);
        assert_eq!(p.estimate(1), 1);
        assert_eq!(p.estimate(3), 1);
    }

    #[test]
    fn one_sided_across_pipeline() {
        let mut p = pipeline(4);
        let mut truth = std::collections::HashMap::new();
        let mut x = 5u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let key = x % 300;
            p.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(p.estimate(key) >= t, "under-count for {key}");
        }
    }

    #[test]
    fn finish_flushes_remainder() {
        let mut p = pipeline(8);
        p.insert(9);
        let sketch = p.finish();
        assert_eq!(sketch.estimate(9), 1);
    }
}
