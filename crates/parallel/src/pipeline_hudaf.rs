//! Pipeline-parallel Holistic UDAF ("Parallel Hollistic UDAFs" in the
//! paper's Figure 12): the low-level aggregation table runs on the caller's
//! core and each wholesale flush is shipped to a sketch worker as one batch
//! message, so the table core "can immediately start processing next items
//! from the input stream" while the sketch absorbs the batch.
//!
//! The worker runs under the same supervision regime as
//! [`PipelineASketch`](crate::PipelineASketch): a bounded batch channel with
//! a configurable [`BackpressurePolicy`], a caller-side replay journal
//! pruned by worker checkpoints, bounded restarts with backoff on worker
//! panic, and a permanent inline degraded mode once the restart budget is
//! spent. Every batch is journaled before it is shipped, so no failure mode
//! can lose or double-count a flush.

use std::collections::VecDeque;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{
    self, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};

use sketches::lookup;
use sketches::traits::Supervisable;
use sketches::CountMin;

use crate::supervisor::{
    panic_message, BackpressurePolicy, Journal, PipelineError, PipelineStats, RuntimeHealth,
    SupervisionConfig,
};

/// Messages to the sketch worker.
enum Msg {
    /// A flushed batch of `(key, count)` aggregates; all items share one
    /// journal sequence number.
    Batch { batch: Vec<(u64, i64)>, seq: u64 },
    /// Point-query round trip.
    Estimate { key: u64, reply: Sender<i64> },
    /// Stop and return the sketch.
    Shutdown,
}

/// Worker-to-caller traffic: journal-pruning checkpoints.
struct Checkpoint<S> {
    seq: u64,
    snapshot: S,
}

const EMPTY_KEY: u64 = u64::MAX;

#[inline]
fn canon(key: u64) -> u64 {
    if key == EMPTY_KEY {
        EMPTY_KEY - 1
    } else {
        key
    }
}

struct WorkerLink<S> {
    tx: Sender<Msg>,
    rx: Receiver<Checkpoint<S>>,
    handle: JoinHandle<S>,
}

fn run_worker<S: Supervisable>(
    mut sketch: S,
    rx: Receiver<Msg>,
    out: Sender<Checkpoint<S>>,
    checkpoint_interval: u64,
) -> S {
    let mut since_checkpoint = 0u64;
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Batch { batch, seq } => {
                since_checkpoint += batch.len() as u64;
                // Batched kernel: tuned backends hoist hashing and prefetch
                // across the batch instead of taking one cache-miss chain
                // per item.
                sketch.update_batch(&batch);
                if since_checkpoint >= checkpoint_interval {
                    since_checkpoint = 0;
                    let _ = out.send(Checkpoint {
                        seq,
                        snapshot: sketch.clone(),
                    });
                }
            }
            Msg::Estimate { key, reply } => {
                let _ = reply.send(sketch.estimate(key));
            }
            Msg::Shutdown => break,
        }
    }
    sketch
}

fn spawn_worker<S: Supervisable>(sketch: S, cfg: &SupervisionConfig) -> WorkerLink<S> {
    let (tx, rx) = channel::bounded::<Msg>(cfg.queue_capacity);
    let (out_tx, out_rx) = channel::unbounded::<Checkpoint<S>>();
    let interval = cfg.checkpoint_interval.max(1);
    let handle = std::thread::spawn(move || run_worker(sketch, rx, out_tx, interval));
    WorkerLink {
        tx,
        rx: out_rx,
        handle,
    }
}

/// Holistic UDAF with the sketch on a supervised worker thread.
///
/// Generic over any [`Supervisable`] sketch; defaults to [`CountMin`], the
/// configuration of the paper's Figure 12.
pub struct PipelineHUdaf<S: Supervisable = CountMin> {
    ids: Vec<u64>,
    counts: Vec<i64>,
    fill: usize,
    link: Option<WorkerLink<S>>,
    inline: Option<S>,
    spill: VecDeque<Msg>,
    journal: Journal<S>,
    cfg: SupervisionConfig,
    stats: PipelineStats,
    last_error: Option<PipelineError>,
    flushes: u64,
}

impl<S: Supervisable> PipelineHUdaf<S> {
    /// Spawn the sketch worker with a `table_items`-slot front table and
    /// default supervision parameters.
    ///
    /// # Panics
    /// Panics if `table_items == 0`.
    pub fn spawn(sketch: S, table_items: usize) -> Self {
        Self::spawn_with(sketch, table_items, SupervisionConfig::default())
    }

    /// Spawn with explicit supervision parameters.
    ///
    /// # Panics
    /// Panics if `table_items == 0`.
    pub fn spawn_with(sketch: S, table_items: usize, cfg: SupervisionConfig) -> Self {
        assert!(table_items > 0, "table must hold at least one item");
        let journal = Journal::new(sketch.clone());
        let link = spawn_worker(sketch, &cfg);
        Self {
            ids: vec![EMPTY_KEY; table_items],
            counts: vec![0; table_items],
            fill: 0,
            link: Some(link),
            inline: None,
            spill: VecDeque::new(),
            journal,
            cfg,
            stats: PipelineStats::default(),
            last_error: None,
            flushes: 0,
        }
    }

    /// Same teardown/restore/restart logic as the ASketch pipeline (see
    /// [`crate::pipeline`] module docs for the fault model).
    fn fail_over(&mut self, err: Option<PipelineError>) {
        let Some(link) = self.link.take() else { return };
        self.stats.worker_failures += 1;
        while let Ok(Checkpoint { seq, snapshot }) = link.rx.try_recv() {
            self.stats.checkpoints += 1;
            self.journal.on_checkpoint(seq, snapshot);
        }
        drop(link.tx);
        let mut finished = link.handle.is_finished();
        if !finished {
            std::thread::sleep(Duration::from_millis(2));
            finished = link.handle.is_finished();
        }
        let error = if finished {
            match link.handle.join() {
                Err(payload) => PipelineError::WorkerPanicked(panic_message(payload)),
                Ok(_) => err.unwrap_or(PipelineError::Disconnected),
            }
        } else {
            err.unwrap_or(PipelineError::EstimateTimeout)
        };
        self.last_error = Some(error);
        self.spill.clear();
        let restored = self.journal.restore();
        if self.stats.restarts < u64::from(self.cfg.max_restarts) {
            self.stats.restarts += 1;
            let backoff = self.cfg.backoff_for(self.stats.restarts);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            self.journal.reset(restored.clone());
            self.link = Some(spawn_worker(restored, &self.cfg));
            self.stats.degraded = false;
        } else {
            self.stats.degraded = true;
            self.inline = Some(restored);
        }
    }

    fn flush_spill_try(&mut self) {
        while let Some(msg) = self.spill.pop_front() {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            match link.tx.try_send(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(m)) => {
                    self.spill.push_front(m);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.fail_over(None);
                    return;
                }
            }
        }
    }

    fn flush_spill_sync(&mut self) {
        while let Some(msg) = self.spill.pop_front() {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            match link.tx.send_timeout(msg, self.cfg.send_timeout) {
                Ok(()) => {}
                Err(SendTimeoutError::Timeout(_)) => {
                    self.fail_over(Some(PipelineError::EstimateTimeout));
                    return;
                }
                Err(SendTimeoutError::Disconnected(_)) => {
                    self.fail_over(None);
                    return;
                }
            }
        }
    }

    fn push_spill(&mut self, msg: Msg) {
        if self.spill.len() >= self.cfg.spill_capacity.max(1) {
            // Generation check, not just `link.is_none()`: a fail-over during
            // the flush folds the journaled `msg` into the restored sketch
            // even when the worker is *restarted* (link `Some` again), so the
            // in-flight `msg` must be abandoned or it would double-count.
            let generation = self.stats.worker_failures;
            self.flush_spill_sync();
            if self.stats.worker_failures != generation || self.link.is_none() {
                return;
            }
        }
        self.stats.spilled += 1;
        self.spill.push_back(msg);
    }

    fn drain_checkpoints(&mut self) {
        let mut harvested: Vec<(u64, S)> = Vec::new();
        {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            while let Ok(Checkpoint { seq, snapshot }) = link.rx.try_recv() {
                harvested.push((seq, snapshot));
            }
        }
        for (seq, snapshot) in harvested {
            self.stats.checkpoints += 1;
            self.journal.on_checkpoint(seq, snapshot);
        }
    }

    /// Ship one flushed batch, journaling every item under a shared
    /// sequence number first. In degraded mode the batch is applied inline.
    fn ship_batch(&mut self, batch: Vec<(u64, i64)>) {
        if self.link.is_none() {
            self.stats.inline_updates += batch.len() as u64;
            let inline = self
                .inline
                .as_mut()
                .expect("degraded mode has an inline sketch");
            inline.update_batch(&batch);
            return;
        }
        let seq = self.journal.next_seq();
        for &(key, count) in &batch {
            self.journal.record_at(seq, key, count);
        }
        let msg = Msg::Batch { batch, seq };
        // `worker_failures` doubles as a fail-over generation counter: if the
        // flush fails over, the journaled batch is folded into the restored
        // sketch whether the runtime degraded (`link` now `None`) or
        // restarted (`link` `Some` again, journal re-baselined past `seq`),
        // so the in-flight `msg` must be abandoned either way.
        let generation = self.stats.worker_failures;
        self.flush_spill_try();
        if self.stats.worker_failures != generation || self.link.is_none() {
            return;
        }
        if !self.spill.is_empty() {
            self.push_spill(msg);
            return;
        }
        let sent = self
            .link
            .as_ref()
            .expect("worker link checked above")
            .tx
            .try_send(msg);
        match sent {
            Ok(()) => {}
            Err(TrySendError::Full(m)) => {
                self.stats.queue_full_events += 1;
                match self.cfg.backpressure {
                    BackpressurePolicy::Block => {
                        let Some(link) = self.link.as_ref() else {
                            return;
                        };
                        match link.tx.send_timeout(m, self.cfg.send_timeout) {
                            Ok(()) => {}
                            Err(SendTimeoutError::Timeout(_)) => {
                                self.fail_over(Some(PipelineError::EstimateTimeout));
                            }
                            Err(SendTimeoutError::Disconnected(_)) => self.fail_over(None),
                        }
                    }
                    BackpressurePolicy::InlineFallback => self.push_spill(m),
                }
            }
            Err(TrySendError::Disconnected(_)) => self.fail_over(None),
        }
    }

    /// Ship the whole table to the sketch core and clear it.
    fn flush(&mut self) {
        if self.fill == 0 {
            return;
        }
        let batch: Vec<(u64, i64)> = (0..self.fill)
            .map(|i| (self.ids[i], self.counts[i]))
            .collect();
        for i in 0..self.fill {
            self.ids[i] = EMPTY_KEY;
            self.counts[i] = 0;
        }
        self.fill = 0;
        self.flushes += 1;
        self.ship_batch(batch);
        self.drain_checkpoints();
    }

    /// Ingest one tuple.
    pub fn update(&mut self, key: u64, delta: i64) {
        let key = canon(key);
        if let Some(i) = lookup::find_key(&self.ids[..self.fill], key) {
            self.counts[i] += delta;
            return;
        }
        if self.fill == self.ids.len() {
            self.flush();
        }
        let i = self.fill;
        self.ids[i] = key;
        self.counts[i] = delta;
        self.fill += 1;
    }

    /// Convenience: `update(key, 1)`.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Backend estimate with timeout + retry; fails over to the restored
    /// inline sketch when the worker never answers.
    fn backend_estimate(&mut self, key: u64) -> i64 {
        loop {
            if self.link.is_none() {
                return self
                    .inline
                    .as_ref()
                    .expect("degraded mode has an inline sketch")
                    .estimate(key);
            }
            self.flush_spill_sync();
            if self.link.is_none() {
                continue;
            }
            let mut failure: Option<Option<PipelineError>> = None;
            let mut timeouts = 0u32;
            loop {
                let link = self.link.as_ref().expect("worker link checked above");
                let (reply_tx, reply_rx) = channel::bounded(1);
                let sent = link.tx.send_timeout(
                    Msg::Estimate {
                        key,
                        reply: reply_tx,
                    },
                    self.cfg.estimate_timeout,
                );
                match sent {
                    Ok(()) => match reply_rx.recv_timeout(self.cfg.estimate_timeout) {
                        Ok(v) => return v,
                        Err(RecvTimeoutError::Timeout) => {
                            self.stats.estimate_timeouts += 1;
                            timeouts += 1;
                        }
                        Err(RecvTimeoutError::Disconnected) => failure = Some(None),
                    },
                    Err(SendTimeoutError::Timeout(_)) => {
                        self.stats.estimate_timeouts += 1;
                        timeouts += 1;
                    }
                    Err(SendTimeoutError::Disconnected(_)) => failure = Some(None),
                }
                if let Some(err) = failure {
                    self.fail_over(err);
                    break;
                }
                if timeouts > self.cfg.estimate_retries {
                    self.fail_over(Some(PipelineError::EstimateTimeout));
                    break;
                }
            }
        }
    }

    /// Point query: sketch estimate (round trip, FIFO-ordered behind all
    /// shipped batches) plus any count still pending in the local table.
    pub fn estimate(&mut self, key: u64) -> i64 {
        let key = canon(key);
        self.drain_checkpoints();
        let pending = lookup::find_key(&self.ids[..self.fill], key).map_or(0, |i| self.counts[i]);
        self.backend_estimate(key) + pending
    }

    /// Wholesale flushes performed so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Runtime counters (queue-full events, spills, failures, restarts,
    /// checkpoints, degraded flag).
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Condensed health view.
    pub fn health(&self) -> RuntimeHealth {
        RuntimeHealth {
            degraded: self.stats.degraded,
            restarts: self.stats.restarts,
            worker_failures: self.stats.worker_failures,
            last_error: self.last_error.as_ref().map(|e| e.to_string()),
        }
    }

    /// `true` once the restart budget is spent and batches apply inline.
    pub fn is_degraded(&self) -> bool {
        self.stats.degraded
    }

    /// Recover the sketch: clean join when healthy, journal reconstruction
    /// when panicked or wedged; bounded by
    /// [`SupervisionConfig::shutdown_timeout`].
    fn recover_sketch(&mut self) -> S {
        self.drain_checkpoints();
        if self.link.is_some() {
            self.flush_spill_sync();
        }
        let Some(link) = self.link.take() else {
            return match self.inline.take() {
                Some(s) => s,
                None => self.journal.restore(),
            };
        };
        let _ = link.tx.send_timeout(Msg::Shutdown, self.cfg.send_timeout);
        drop(link.tx);
        let deadline = std::time::Instant::now() + self.cfg.shutdown_timeout;
        while !link.handle.is_finished() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if link.handle.is_finished() {
            match link.handle.join() {
                Ok(sketch) => sketch,
                Err(payload) => {
                    self.stats.worker_failures += 1;
                    self.stats.degraded = true;
                    self.last_error = Some(PipelineError::WorkerPanicked(panic_message(payload)));
                    self.journal.restore()
                }
            }
        } else {
            self.stats.worker_failures += 1;
            self.stats.degraded = true;
            self.last_error = Some(PipelineError::EstimateTimeout);
            self.journal.restore()
        }
    }

    /// Shut down and return the sketch (never hangs; see
    /// [`health`](Self::health) for what happened on the way out).
    pub fn finish(mut self) -> S {
        self.flush();
        self.recover_sketch()
    }
}

impl<S: Supervisable> Drop for PipelineHUdaf<S> {
    /// Bounded best-effort teardown for tables dropped without
    /// [`finish`](Self::finish).
    fn drop(&mut self) {
        if let Some(link) = self.link.take() {
            let _ = link.tx.try_send(Msg::Shutdown);
            drop(link.tx);
            let deadline = std::time::Instant::now() + self.cfg.shutdown_timeout;
            while !link.handle.is_finished() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if link.handle.is_finished() {
                let _ = link.handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyEstimator};
    use sketches::FrequencyEstimator;

    fn pipeline(table: usize) -> PipelineHUdaf {
        PipelineHUdaf::spawn(CountMin::new(3, 4, 1 << 12).unwrap(), table)
    }

    #[test]
    fn aggregates_runs_locally() {
        let mut p = pipeline(8);
        for _ in 0..500 {
            p.insert(7);
        }
        assert_eq!(p.flush_count(), 0);
        assert_eq!(p.estimate(7), 500);
    }

    #[test]
    fn flush_ships_batches() {
        let mut p = pipeline(2);
        p.insert(1);
        p.insert(2);
        p.insert(3); // forces a flush of {1,2}
        assert_eq!(p.flush_count(), 1);
        assert_eq!(p.estimate(1), 1);
        assert_eq!(p.estimate(3), 1);
    }

    #[test]
    fn one_sided_across_pipeline() {
        let mut p = pipeline(4);
        let mut truth = std::collections::HashMap::new();
        let mut x = 5u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let key = x % 300;
            p.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(p.estimate(key) >= t, "under-count for {key}");
        }
    }

    #[test]
    fn finish_flushes_remainder() {
        let mut p = pipeline(8);
        p.insert(9);
        let sketch = p.finish();
        assert_eq!(sketch.estimate(9), 1);
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let mut p = pipeline(4);
        for i in 0..100 {
            p.insert(i);
        }
        drop(p);
    }

    #[test]
    fn worker_panic_recovers_without_losing_batches() {
        let cfg = SupervisionConfig {
            queue_capacity: 4,
            checkpoint_interval: 8,
            max_restarts: 2,
            restart_backoff: Duration::from_millis(1),
            ..SupervisionConfig::default()
        };
        let sketch = FaultyEstimator::new(
            CountMin::new(3, 4, 1 << 12).unwrap(),
            FaultPlan::panic_at(13).with_message("hudaf crash"),
        );
        let mut p = PipelineHUdaf::spawn_with(sketch, 2, cfg);
        let mut truth = std::collections::HashMap::new();
        for i in 0..600u64 {
            let key = i % 7;
            p.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(p.estimate(key) >= t, "under-count for {key} after crash");
        }
        let st = p.stats();
        assert!(st.worker_failures >= 1);
        assert!(st.restarts >= 1);
        assert!(!st.degraded);
    }

    #[test]
    fn degraded_mode_keeps_aggregating() {
        let cfg = SupervisionConfig {
            queue_capacity: 4,
            checkpoint_interval: 8,
            max_restarts: 0,
            ..SupervisionConfig::default()
        };
        let sketch = FaultyEstimator::new(
            CountMin::new(3, 4, 1 << 12).unwrap(),
            FaultPlan::panic_at(5),
        );
        let mut p = PipelineHUdaf::spawn_with(sketch, 2, cfg);
        for i in 0..300u64 {
            p.insert(i % 5);
        }
        for key in 0..5u64 {
            assert!(p.estimate(key) >= 60, "under-count for {key} degraded");
        }
        assert!(p.is_degraded());
        let sketch = p.finish();
        assert!(sketch.estimate(0) >= 60);
    }
}
