//! Supervision substrate shared by the pipeline runtimes: typed errors,
//! backpressure/restart policy, runtime health, and the checkpoint/replay
//! journal that makes worker faults *lossless*.
//!
//! # Fault model
//!
//! The sketch worker owns the only authoritative copy of the sketch, so a
//! worker panic would normally lose every forwarded update. The runtimes
//! avoid that with a checkpoint + journal protocol:
//!
//! * every counting message shipped to the worker carries a monotonically
//!   increasing sequence number and is also recorded in a caller-side
//!   [`Journal`];
//! * every `checkpoint_interval` counting messages the worker clones its
//!   sketch and sends `(last_applied_seq, snapshot)` back on the (never
//!   blocking, unbounded) reply channel;
//! * on receiving a checkpoint the caller prunes journal entries with
//!   `seq <= last_applied_seq`.
//!
//! After a fault, `snapshot + replay(journal)` reconstructs *exactly* the
//! state the worker would have reached had it applied every shipped
//! message: entries at or below the checkpoint's sequence number are
//! inside the snapshot, entries above it are replayed once. No update is
//! lost and none is double counted, so the one-sided estimate guarantee
//! survives every failure mode. Journal memory is bounded by the
//! checkpoint interval plus the channel capacity.

use std::collections::VecDeque;
use std::time::Duration;

use sketches::traits::Supervisable;

/// What the caller does when the bounded forward queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the caller until the worker drains the queue. Simple, exact,
    /// and memory-bounded; the producing thread stalls under overload.
    #[default]
    Block,
    /// Never block on a full queue: divert the update to a bounded
    /// caller-side spill buffer that is flushed opportunistically on later
    /// channel interactions. FIFO order toward the worker is preserved
    /// (once anything is spilled, subsequent updates queue behind it) and
    /// point queries cover spilled-but-unsent mass, so estimates remain
    /// one-sided. If the spill buffer itself fills, the caller degrades to
    /// blocking — updates are *never* dropped.
    InlineFallback,
}

/// Tunables for a supervised pipeline runtime.
#[derive(Debug, Clone)]
pub struct SupervisionConfig {
    /// Capacity of the bounded caller → worker channel.
    pub queue_capacity: usize,
    /// Reaction to a full forward queue.
    pub backpressure: BackpressurePolicy,
    /// Capacity of the caller-side spill buffer used by
    /// [`BackpressurePolicy::InlineFallback`].
    pub spill_capacity: usize,
    /// Counting messages between worker checkpoints (snapshots shipped
    /// back to the caller). Smaller values shrink the replay journal and
    /// the recovery window at the cost of more cloning.
    pub checkpoint_interval: u64,
    /// How long a point-query round trip may take before it counts as a
    /// timeout.
    pub estimate_timeout: Duration,
    /// How long a blocking send (full-queue wait under
    /// [`BackpressurePolicy::Block`], a synchronous spill flush, or the
    /// shutdown handshake) may wait before the worker is declared wedged.
    /// Kept separate from [`estimate_timeout`](Self::estimate_timeout)
    /// because a healthy-but-slow worker legitimately needs worst-case
    /// *queue-drain* time here (e.g. a long checkpoint clone of a large
    /// sketch), which can far exceed a reasonable query-latency bound.
    pub send_timeout: Duration,
    /// Extra attempts for a timed-out estimate round trip before the
    /// worker is declared wedged and failed over.
    pub estimate_retries: u32,
    /// Worker respawns allowed before the runtime stays in degraded
    /// inline mode for good.
    pub max_restarts: u32,
    /// Base delay before a worker respawn; doubles per restart (capped at
    /// 32x).
    pub restart_backoff: Duration,
    /// Upper bound on how long `finish`/`Drop` wait for the worker to
    /// exit before abandoning the thread and reconstructing the sketch
    /// from the journal. Guarantees teardown never hangs.
    pub shutdown_timeout: Duration,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            backpressure: BackpressurePolicy::Block,
            spill_capacity: 8192,
            checkpoint_interval: 1024,
            estimate_timeout: Duration::from_secs(2),
            send_timeout: Duration::from_secs(30),
            estimate_retries: 2,
            max_restarts: 3,
            restart_backoff: Duration::from_millis(5),
            shutdown_timeout: Duration::from_secs(5),
        }
    }
}

impl SupervisionConfig {
    /// Backoff before restart number `restart` (1-based): exponential in
    /// the restart count, capped at 32x the base.
    pub(crate) fn backoff_for(&self, restart: u64) -> Duration {
        let exp = restart.saturating_sub(1).min(5) as u32;
        self.restart_backoff * (1u32 << exp)
    }
}

/// Typed failures surfaced by the supervised runtimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The worker thread panicked; the payload is the panic message.
    WorkerPanicked(String),
    /// The worker's channel disconnected without a panic payload.
    Disconnected,
    /// An estimate round trip exceeded its timeout budget (after retries).
    EstimateTimeout,
    /// An SPMD shard kept panicking after every permitted attempt.
    ShardFailed {
        /// Index of the failing shard.
        shard: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// Panic message of the last attempt.
        payload: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::WorkerPanicked(p) => write!(f, "sketch worker panicked: {p}"),
            PipelineError::Disconnected => write!(f, "sketch worker channel disconnected"),
            PipelineError::EstimateTimeout => write!(f, "estimate round trip timed out"),
            PipelineError::ShardFailed {
                shard,
                attempts,
                payload,
            } => {
                write!(
                    f,
                    "SPMD shard {shard} failed after {attempts} attempts: {payload}"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Counters describing a supervised pipeline run; the observability
/// surface the chaos tests (and operators) assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Counting messages shipped to the worker (tuples for the ASketch
    /// pipeline, batches for the H-UDAF pipeline).
    pub forwarded: u64,
    /// Filter ⇄ sketch exchanges applied (ASketch pipeline only).
    pub exchanges: u64,
    /// Times the bounded forward queue was found full.
    pub queue_full_events: u64,
    /// Updates diverted to the spill buffer under
    /// [`BackpressurePolicy::InlineFallback`].
    pub spilled: u64,
    /// Updates applied on the caller in degraded inline mode.
    pub inline_updates: u64,
    /// Estimate round trips that timed out (including retries).
    pub estimate_timeouts: u64,
    /// Worker faults observed (panic, disconnect, or wedge).
    pub worker_failures: u64,
    /// Worker respawns performed.
    pub restarts: u64,
    /// Checkpoints received from the worker.
    pub checkpoints: u64,
    /// Whether the runtime is currently in degraded inline mode.
    pub degraded: bool,
}

/// Condensed liveness/fault view derived from [`PipelineStats`] plus the
/// most recent error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeHealth {
    /// Whether updates are currently applied inline on the caller.
    pub degraded: bool,
    /// Worker respawns performed so far.
    pub restarts: u64,
    /// Worker faults observed so far.
    pub worker_failures: u64,
    /// Human-readable description of the most recent fault, if any.
    pub last_error: Option<String>,
}

/// The caller-side checkpoint + replay journal (see module docs).
///
/// Entries are `(seq, key, delta)`; several entries may share one `seq`
/// when a single message carries a batch.
#[derive(Debug)]
pub(crate) struct Journal<S> {
    snapshot: S,
    snapshot_seq: u64,
    next_seq: u64,
    entries: VecDeque<(u64, u64, i64)>,
}

impl<S: Supervisable> Journal<S> {
    /// Start journaling against `snapshot` (the worker's initial state).
    pub fn new(snapshot: S) -> Self {
        Self {
            snapshot,
            snapshot_seq: 0,
            next_seq: 1,
            entries: VecDeque::new(),
        }
    }

    /// Sequence number of the snapshot currently held.
    #[cfg(test)]
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// Reserve the next sequence number without recording an entry; used
    /// for batch messages whose pairs are recorded individually via
    /// [`Journal::record_at`].
    pub fn next_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Record one `(key, delta)` op and return its sequence number.
    pub fn record(&mut self, key: u64, delta: i64) -> u64 {
        let seq = self.next_seq();
        self.entries.push_back((seq, key, delta));
        seq
    }

    /// Record one pair of a batch under an already reserved `seq`.
    pub fn record_at(&mut self, seq: u64, key: u64, delta: i64) {
        debug_assert!(seq < self.next_seq);
        self.entries.push_back((seq, key, delta));
    }

    /// Drop the most recently recorded entry (it was diverted away from
    /// the worker before being sent). Only valid immediately after the
    /// matching [`Journal::record`].
    #[cfg(test)]
    pub fn unrecord(&mut self, seq: u64) {
        if let Some(&(last, _, _)) = self.entries.back() {
            if last == seq {
                self.entries.pop_back();
            }
        }
    }

    /// Install a newer snapshot from the worker and prune covered entries.
    pub fn on_checkpoint(&mut self, seq: u64, snapshot: S) {
        if seq < self.snapshot_seq {
            return; // stale (can happen right after a restart)
        }
        self.snapshot = snapshot;
        self.snapshot_seq = seq;
        while self.entries.front().is_some_and(|&(s, _, _)| s <= seq) {
            self.entries.pop_front();
        }
    }

    /// Reconstruct the full worker state: snapshot plus one replay of
    /// every journaled op above the snapshot's sequence number.
    pub fn restore(&self) -> S {
        let mut sketch = self.snapshot.clone();
        for &(seq, key, delta) in &self.entries {
            if seq > self.snapshot_seq {
                sketch.update(key, delta);
            }
        }
        sketch
    }

    /// Re-baseline after a restart: `base` becomes the snapshot covering
    /// every sequence number assigned so far, and the entry log empties.
    pub fn reset(&mut self, base: S) {
        self.snapshot = base;
        self.snapshot_seq = self.next_seq - 1;
        self.entries.clear();
    }

    /// Number of journaled (not yet checkpoint-covered) entries.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches::{CountMin, FrequencyEstimator};

    fn cms() -> CountMin {
        CountMin::new(3, 4, 1 << 10).unwrap()
    }

    #[test]
    fn restore_replays_everything_past_snapshot() {
        let mut j = Journal::new(cms());
        let mut live = cms();
        for k in 0..100u64 {
            let key = k % 7;
            j.record(key, 1);
            live.update(key, 1);
            if k == 49 {
                // Worker checkpoints after applying the first 50 ops.
                j.on_checkpoint(50, live.clone());
            }
        }
        let restored = j.restore();
        for key in 0..7u64 {
            assert_eq!(restored.estimate(key), live.estimate(key), "key {key}");
        }
    }

    #[test]
    fn checkpoint_prunes_and_bounds_memory() {
        let mut j = Journal::new(cms());
        for _ in 0..1_000 {
            j.record(1, 1);
        }
        assert_eq!(j.len(), 1_000);
        let mut snap = cms();
        snap.update(1, 900);
        j.on_checkpoint(900, snap);
        assert_eq!(j.len(), 100);
        assert_eq!(j.restore().estimate(1), 1_000);
    }

    #[test]
    fn stale_checkpoint_is_ignored() {
        let mut j = Journal::new(cms());
        j.record(5, 2);
        let mut snap = cms();
        snap.update(5, 2);
        j.on_checkpoint(1, snap);
        j.on_checkpoint(0, cms()); // stale: must not roll the snapshot back
        assert_eq!(j.restore().estimate(5), 2);
    }

    #[test]
    fn unrecord_drops_only_the_latest() {
        let mut j = Journal::new(cms());
        let a = j.record(1, 1);
        j.unrecord(a + 1); // wrong seq: no-op
        assert_eq!(j.len(), 1);
        j.unrecord(a);
        assert_eq!(j.len(), 0);
        assert_eq!(j.restore().estimate(1), 0);
    }

    #[test]
    fn reset_rebaselines() {
        let mut j = Journal::new(cms());
        j.record(3, 4);
        let restored = j.restore();
        assert_eq!(restored.estimate(3), 4);
        j.reset(restored);
        assert_eq!(j.len(), 0);
        assert_eq!(j.snapshot_seq(), 1);
        assert_eq!(j.restore().estimate(3), 4);
        // New entries replay on top of the new baseline.
        j.record(3, 1);
        assert_eq!(j.restore().estimate(3), 5);
    }

    #[test]
    fn batch_entries_share_a_seq() {
        let mut j = Journal::new(cms());
        let seq = j.next_seq();
        j.record_at(seq, 1, 2);
        j.record_at(seq, 2, 3);
        let mut snap = cms();
        snap.update(1, 2);
        snap.update(2, 3);
        j.on_checkpoint(seq, snap);
        assert_eq!(j.len(), 0);
        assert_eq!(j.restore().estimate(1), 2);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = SupervisionConfig::default();
        assert_eq!(cfg.backoff_for(1), cfg.restart_backoff);
        assert_eq!(cfg.backoff_for(3), cfg.restart_backoff * 4);
        assert_eq!(cfg.backoff_for(100), cfg.restart_backoff * 32);
    }

    #[test]
    fn error_display_is_informative() {
        let e = PipelineError::WorkerPanicked("boom".into());
        assert!(e.to_string().contains("boom"));
        let e = PipelineError::ShardFailed {
            shard: 2,
            attempts: 3,
            payload: "x".into(),
        };
        assert!(e.to_string().contains("shard 2"));
    }
}
