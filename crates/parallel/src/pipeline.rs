//! Pipeline parallelism (paper §6.2): the filter runs on the caller's core,
//! the sketch on a dedicated worker thread, with message passing replacing
//! shared-memory access.
//!
//! The caller (the paper's core `C0`) owns the filter and consumes input
//! tuples; on a filter miss the tuple is *forwarded* to the worker (`C1`)
//! together with the filter's current minimum count, and `C0` immediately
//! moves on to the next tuple — the source of the pipeline speedup. When
//! `C1` sees an estimate exceeding the last minimum it received, it sends
//! the item back for *promotion*; `C0` applies the promotion when it next
//! touches the channel, demoting its minimum item's pending mass to `C1`.
//!
//! Because promotion decisions are made against a slightly stale minimum,
//! the filter's content can lag the sequential algorithm's by a few
//! messages; the one-sided estimate guarantee is unaffected (estimates only
//! ever *gain* over-count from staleness, never lose mass) and the paper
//! accepts the same relaxation.

use crossbeam::channel::{self, Receiver, Sender};
use std::thread::JoinHandle;

use asketch::filter::Filter;
use sketches::traits::UpdateEstimate;

/// Messages from the filter core to the sketch core.
enum ToSketch {
    /// A tuple that missed the filter, with the filter's current minimum.
    Forward { key: u64, u: i64, filter_min: i64 },
    /// Pending mass of a demoted filter item.
    Demote { key: u64, pending: i64 },
    /// Negative update for an unmonitored key (Appendix A path).
    Subtract { key: u64, amount: i64 },
    /// Answer a point query (channel round-trip keeps FIFO ordering with
    /// preceding forwards, so the estimate covers them).
    Estimate { key: u64, reply: Sender<i64> },
    /// Stop and return the sketch.
    Shutdown,
}

/// A promotion suggestion from the sketch core.
struct Promote {
    key: u64,
    est: i64,
}

/// Pipeline-parallel ASketch: filter on the caller thread, sketch on a
/// worker thread.
pub struct PipelineASketch<F: Filter, S: UpdateEstimate + Send + 'static> {
    filter: F,
    to_sketch: Sender<ToSketch>,
    from_sketch: Receiver<Promote>,
    worker: JoinHandle<S>,
    /// Exchanges applied (promotions accepted by the filter core).
    exchanges: u64,
    /// Tuples forwarded to the sketch core.
    forwarded: u64,
}

impl<F: Filter, S: UpdateEstimate + Send + 'static> PipelineASketch<F, S> {
    /// Spawn the sketch worker and assemble the pipeline.
    pub fn spawn(filter: F, mut sketch: S) -> Self {
        let (tx, rx) = channel::unbounded::<ToSketch>();
        let (ptx, prx) = channel::unbounded::<Promote>();
        let worker = std::thread::spawn(move || {
            // Avoid promote storms: remember the last key we suggested so a
            // hot run of the same key yields one message, not thousands.
            let mut last_promoted: Option<u64> = None;
            while let Ok(msg) = rx.recv() {
                match msg {
                    ToSketch::Forward { key, u, filter_min } => {
                        let est = sketch.update_and_estimate(key, u);
                        if est > filter_min && last_promoted != Some(key) {
                            // Ignore send failures during teardown.
                            let _ = ptx.send(Promote { key, est });
                            last_promoted = Some(key);
                        }
                    }
                    ToSketch::Demote { key, pending } => {
                        sketch.update(key, pending);
                        last_promoted = None;
                    }
                    ToSketch::Subtract { key, amount } => {
                        sketch.update(key, -amount);
                    }
                    ToSketch::Estimate { key, reply } => {
                        let _ = reply.send(sketch.estimate(key));
                    }
                    ToSketch::Shutdown => break,
                }
            }
            sketch
        });
        Self {
            filter,
            to_sketch: tx,
            from_sketch: prx,
            worker,
            exchanges: 0,
            forwarded: 0,
        }
    }

    /// Apply any promotions the sketch core has suggested.
    fn drain_promotions(&mut self) {
        while let Ok(Promote { key, est }) = self.from_sketch.try_recv() {
            // Re-check against the *current* filter state: the suggestion
            // may be stale or the key may already have been promoted.
            if self.filter.query(key).is_some() {
                continue;
            }
            let min = self.filter.min_count().expect("filter full before promotion");
            if est > min {
                // The suggested estimate is stale: the hot key has usually
                // received further forwards since the suggestion was made.
                // Fetch a fresh estimate — channel FIFO guarantees it covers
                // every update this core has issued — so the filter count
                // never starts below the sketch's mass for the key.
                let (tx, rx) = channel::bounded(1);
                self.to_sketch
                    .send(ToSketch::Estimate { key, reply: tx })
                    .expect("sketch worker alive");
                let fresh = rx.recv().expect("sketch worker answers");
                let evicted = self.filter.evict_min().expect("non-empty");
                if evicted.pending() > 0 {
                    let _ = self.to_sketch.send(ToSketch::Demote {
                        key: evicted.key,
                        pending: evicted.pending(),
                    });
                }
                self.filter.insert(key, fresh, fresh);
                self.exchanges += 1;
            }
        }
    }

    /// Process one tuple (Algorithm 1 with the sketch path asynchronous).
    pub fn update(&mut self, key: u64, u: i64) {
        if u <= 0 {
            if u < 0 {
                self.delete(key, -u);
            }
            return;
        }
        if self.filter.update_existing(key, u).is_some() {
            return;
        }
        if !self.filter.is_full() {
            self.filter.insert(key, u, 0);
            return;
        }
        let filter_min = self.filter.min_count().expect("full filter non-empty");
        self.to_sketch
            .send(ToSketch::Forward { key, u, filter_min })
            .expect("sketch worker alive");
        self.forwarded += 1;
        self.drain_promotions();
    }

    /// Convenience: `update(key, 1)`.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Appendix-A deletion across the pipeline.
    pub fn delete(&mut self, key: u64, amount: i64) {
        assert!(amount > 0);
        match self.filter.subtract(key, amount) {
            None => {
                self.to_sketch
                    .send(ToSketch::Subtract { key, amount })
                    .expect("sketch worker alive");
            }
            Some(0) => {}
            Some(spill) => {
                self.to_sketch
                    .send(ToSketch::Subtract { key, amount: spill })
                    .expect("sketch worker alive");
            }
        }
    }

    /// Point query. Filter hits answer locally; misses round-trip to the
    /// sketch core (FIFO with all preceding forwards, so the answer covers
    /// every update issued before this call).
    pub fn estimate(&mut self, key: u64) -> i64 {
        self.drain_promotions();
        if let Some(c) = self.filter.query(key) {
            return c;
        }
        let (tx, rx) = channel::bounded(1);
        self.to_sketch
            .send(ToSketch::Estimate { key, reply: tx })
            .expect("sketch worker alive");
        rx.recv().expect("sketch worker answers")
    }

    /// Number of promotions applied so far.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Number of tuples forwarded to the sketch core.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Shut the worker down and return `(filter, sketch)`.
    ///
    /// Dropping a `PipelineASketch` without calling `finish` is also fine:
    /// closing the channel ends the worker loop and the thread exits on its
    /// own.
    pub fn finish(self) -> (F, S) {
        self.to_sketch.send(ToSketch::Shutdown).expect("worker alive");
        let sketch = self.worker.join().expect("sketch worker must not panic");
        (self.filter, sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asketch::filter::RelaxedHeapFilter;
    use sketches::{CountMin, FrequencyEstimator};

    fn pipeline(cap: usize) -> PipelineASketch<RelaxedHeapFilter, CountMin> {
        PipelineASketch::spawn(
            RelaxedHeapFilter::new(cap),
            CountMin::new(7, 4, 1 << 12).unwrap(),
        )
    }

    #[test]
    fn heavy_items_exact_in_filter() {
        let mut p = pipeline(4);
        for _ in 0..10_000 {
            p.insert(1);
        }
        assert_eq!(p.estimate(1), 10_000);
        assert_eq!(p.forwarded(), 0);
    }

    #[test]
    fn overflow_reaches_sketch() {
        let mut p = pipeline(2);
        p.insert(1);
        p.insert(2);
        for _ in 0..100 {
            p.insert(3);
        }
        assert!(p.estimate(3) >= 100, "must cover all 100 inserts");
        let (filter, sketch) = p.finish();
        // Key 3's mass lives in the filter (if promoted) or in the sketch.
        let covered = filter.query(3).unwrap_or_else(|| sketch.estimate(3));
        assert!(covered >= 100);
    }

    #[test]
    fn promotion_happens_for_hot_overflow() {
        let mut p = pipeline(2);
        p.insert(1);
        p.insert(2);
        for i in 0..5_000u64 {
            p.insert(100); // hot key hammering the sketch
            p.insert(1000 + i % 3); // churn so promotes drain
        }
        // Give the worker a moment, then drain.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let est = p.estimate(100);
        assert!(est >= 5_000);
        assert!(p.exchanges() >= 1, "hot key must be promoted");
    }

    #[test]
    fn one_sided_guarantee_across_pipeline() {
        let mut p = pipeline(8);
        let mut truth = std::collections::HashMap::new();
        let mut x = 17u64;
        for _ in 0..30_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            let key = match x % 10 {
                0..=4 => x % 3,
                _ => 50 + x % 500,
            };
            p.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            let est = p.estimate(key);
            assert!(est >= t, "pipeline under-counts key {key}: {est} < {t}");
        }
    }

    #[test]
    fn deletions_route_correctly() {
        let mut p = pipeline(2);
        for _ in 0..10 {
            p.insert(1); // in filter
        }
        p.delete(1, 3);
        assert_eq!(p.estimate(1), 7);
        p.insert(2);
        for _ in 0..5 {
            p.insert(3); // overflows
        }
        let before = p.estimate(3);
        p.update(3, -2);
        assert_eq!(p.estimate(3), before - 2);
    }

    #[test]
    fn finish_returns_components() {
        let mut p = pipeline(2);
        p.insert(1);
        let (filter, sketch) = p.finish();
        assert_eq!(filter.len(), 1);
        assert_eq!(sketch.estimate(1), 0, "key 1 stayed in the filter");
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let mut p = pipeline(2);
        p.insert(1);
        drop(p); // must join cleanly
    }
}
