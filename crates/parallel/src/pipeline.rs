//! Pipeline parallelism (paper §6.2) under supervision: the filter runs on
//! the caller's core, the sketch on a dedicated worker thread, with message
//! passing replacing shared-memory access — and the runtime survives the
//! worker misbehaving.
//!
//! The caller (the paper's core `C0`) owns the filter and consumes input
//! tuples; on a filter miss the tuple is *forwarded* to the worker (`C1`)
//! together with the filter's current minimum count, and `C0` immediately
//! moves on to the next tuple — the source of the pipeline speedup. When
//! `C1` sees an estimate exceeding the last minimum it received, it sends
//! the item back for *promotion*; `C0` applies the promotion when it next
//! touches the channel, demoting its minimum item's pending mass to `C1`.
//!
//! Because promotion decisions are made against a slightly stale minimum,
//! the filter's content can lag the sequential algorithm's by a few
//! messages; the one-sided estimate guarantee is unaffected (estimates only
//! ever *gain* over-count from staleness, never lose mass) and the paper
//! accepts the same relaxation.
//!
//! # Fault tolerance
//!
//! The forward channel is **bounded** ([`SupervisionConfig::queue_capacity`])
//! so a slow worker exerts backpressure instead of growing an unbounded
//! queue. On a full queue the caller either blocks
//! ([`BackpressurePolicy::Block`]) or spills into a bounded caller-side
//! FIFO that is flushed opportunistically
//! ([`BackpressurePolicy::InlineFallback`]); either way no update is ever
//! dropped.
//!
//! Every counting op shipped to the worker is recorded in a replay
//! [`Journal`](crate::supervisor) keyed by sequence number; the worker
//! periodically ships back `Clone` checkpoints tagged with the last applied
//! sequence, which prune the journal. If the worker panics, wedges, or its
//! channel disconnects, the caller reconstructs the exact sketch state as
//! *checkpoint + replay of journal entries past the checkpoint*, then either
//! respawns the worker (bounded restarts with exponential backoff) or — once
//! the restart budget is spent — degrades to running the sequential ASketch
//! algorithm inline on the caller. Estimates keep their one-sided guarantee
//! through every transition because the journal replays precisely the ops
//! the lost worker had not yet folded into a checkpoint: no loss, no double
//! count.

use std::collections::VecDeque;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{
    self, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};

use asketch::filter::Filter;
use sketches::traits::Supervisable;

use crate::supervisor::{
    panic_message, BackpressurePolicy, Journal, PipelineError, PipelineStats, RuntimeHealth,
    SupervisionConfig,
};

/// Messages from the filter core to the sketch core.
///
/// Counting messages carry the journal sequence number the caller assigned
/// to them; the worker tags its checkpoints with the last sequence it
/// applied, which is what lets the caller prune the journal safely.
enum ToSketch {
    /// A tuple that missed the filter, with the filter's current minimum.
    Forward {
        key: u64,
        u: i64,
        filter_min: i64,
        seq: u64,
    },
    /// A batch of filter misses, each with the filter minimum observed when
    /// it missed. All items share one journal sequence number (each pair is
    /// journaled individually via `Journal::record_at`), exactly like the
    /// holistic-UDAF pipeline's batch message.
    ForwardBatch {
        items: Vec<(u64, i64, i64)>,
        seq: u64,
    },
    /// Pending mass of a demoted filter item.
    Demote { key: u64, pending: i64, seq: u64 },
    /// Negative update for an unmonitored key (Appendix A path).
    Subtract { key: u64, amount: i64, seq: u64 },
    /// The caller accepted a promotion: clear the worker's recently-suggested
    /// ring so new suggestions can flow.
    Promoted,
    /// Answer a point query (channel round-trip keeps FIFO ordering with
    /// preceding forwards, so the estimate covers them).
    Estimate { key: u64, reply: Sender<i64> },
    /// Stop and return the sketch.
    Shutdown,
}

/// Messages from the sketch core back to the filter core.
enum FromSketch<S> {
    /// A promotion suggestion: `key`'s estimate exceeded the filter minimum.
    Promote { key: u64, est: i64 },
    /// A periodic snapshot of the sketch, tagged with the last applied
    /// journal sequence. Prunes the caller's replay journal.
    Checkpoint { seq: u64, snapshot: S },
}

/// Small ring of recently suggested keys, so a hot run of one key (or a few)
/// yields one promotion message, not thousands. Cleared when the caller
/// reports an accepted exchange (the filter minimum has changed and
/// previously rejected keys may now qualify) and aged out every
/// [`RECENT_TTL_OPS`] counting ops, so a key whose suggestion the caller
/// *rejected* is re-suggested once its estimate keeps growing instead of
/// being suppressed until eight newer suggestions displace it.
struct RecentKeys {
    keys: [u64; 8],
    len: usize,
    next: usize,
}

impl RecentKeys {
    fn new() -> Self {
        Self {
            keys: [0; 8],
            len: 0,
            next: 0,
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.keys[..self.len].contains(&key)
    }

    fn push(&mut self, key: u64) {
        self.keys[self.next] = key;
        self.next = (self.next + 1) % self.keys.len();
        self.len = (self.len + 1).min(self.keys.len());
    }

    fn clear(&mut self) {
        self.len = 0;
        self.next = 0;
    }
}

/// The channel endpoints and join handle of a live worker.
struct WorkerLink<S> {
    tx: Sender<ToSketch>,
    rx: Receiver<FromSketch<S>>,
    handle: JoinHandle<S>,
}

/// Counting ops between forced clears of the recently-suggested ring.
const RECENT_TTL_OPS: u64 = 256;

/// The sketch-core loop: apply counting messages, suggest promotions,
/// answer estimates, and ship checkpoints every `checkpoint_interval`
/// counting ops.
fn run_worker<S: Supervisable>(
    mut sketch: S,
    rx: Receiver<ToSketch>,
    out: Sender<FromSketch<S>>,
    checkpoint_interval: u64,
) -> S {
    let mut recent = RecentKeys::new();
    let mut since_checkpoint = 0u64;
    let mut since_recent_clear = 0u64;
    while let Ok(msg) = rx.recv() {
        // Counting arms yield the sequence they applied plus how many
        // counting ops it covered; a checkpoint tagged with the sequence
        // tells the caller which journal prefix is covered.
        let applied_seq = match msg {
            ToSketch::Forward {
                key,
                u,
                filter_min,
                seq,
            } => {
                let est = sketch.update_and_estimate(key, u);
                if est > filter_min && !recent.contains(key) {
                    recent.push(key);
                    // Ignore send failures during teardown.
                    let _ = out.send(FromSketch::Promote { key, est });
                }
                Some((seq, 1))
            }
            ToSketch::ForwardBatch { items, seq } => {
                let ops = items.len() as u64;
                // Warm the sketch's cache lines for the whole batch up
                // front; the per-item promote checks still need individual
                // post-update estimates, so the updates stay sequential.
                let keys: Vec<u64> = items.iter().map(|&(k, _, _)| k).collect();
                sketch.prime(&keys);
                for &(key, u, filter_min) in &items {
                    let est = sketch.update_and_estimate(key, u);
                    if est > filter_min && !recent.contains(key) {
                        recent.push(key);
                        let _ = out.send(FromSketch::Promote { key, est });
                    }
                }
                Some((seq, ops))
            }
            ToSketch::Demote { key, pending, seq } => {
                sketch.update(key, pending);
                Some((seq, 1))
            }
            ToSketch::Subtract { key, amount, seq } => {
                sketch.update(key, -amount);
                Some((seq, 1))
            }
            ToSketch::Promoted => {
                recent.clear();
                None
            }
            ToSketch::Estimate { key, reply } => {
                let _ = reply.send(sketch.estimate(key));
                None
            }
            ToSketch::Shutdown => break,
        };
        if let Some((seq, ops)) = applied_seq {
            since_checkpoint += ops;
            if since_checkpoint >= checkpoint_interval {
                since_checkpoint = 0;
                let _ = out.send(FromSketch::Checkpoint {
                    seq,
                    snapshot: sketch.clone(),
                });
            }
            since_recent_clear += ops;
            if since_recent_clear >= RECENT_TTL_OPS {
                since_recent_clear = 0;
                recent.clear();
            }
        }
    }
    sketch
}

fn spawn_worker<S: Supervisable>(sketch: S, cfg: &SupervisionConfig) -> WorkerLink<S> {
    let (tx, rx) = channel::bounded::<ToSketch>(cfg.queue_capacity);
    // Replies (promotions + checkpoints) are unbounded: the worker must
    // never block on the caller, and the caller drains this channel on
    // every touch.
    let (out_tx, out_rx) = channel::unbounded::<FromSketch<S>>();
    let interval = cfg.checkpoint_interval.max(1);
    let handle = std::thread::spawn(move || run_worker(sketch, rx, out_tx, interval));
    WorkerLink {
        tx,
        rx: out_rx,
        handle,
    }
}

/// Pipeline-parallel ASketch: filter on the caller thread, sketch on a
/// supervised worker thread.
///
/// Public counting/query API matches the sequential `ASketch`; on worker
/// failure the pipeline transparently restores state from checkpoint +
/// journal and keeps answering (see the module docs). Inspect
/// [`stats`](Self::stats) / [`health`](Self::health) to observe faults.
pub struct PipelineASketch<F: Filter, S: Supervisable> {
    /// `Option` only so `finish`/`Drop` can move it out; always `Some`
    /// while the pipeline is live.
    filter: Option<F>,
    /// The live worker; `None` once degraded to inline mode.
    link: Option<WorkerLink<S>>,
    /// The inline sketch used in degraded mode; `None` while a worker is up.
    inline: Option<S>,
    /// Caller-side FIFO spill used by [`BackpressurePolicy::InlineFallback`].
    spill: VecDeque<ToSketch>,
    journal: Journal<S>,
    cfg: SupervisionConfig,
    stats: PipelineStats,
    last_error: Option<PipelineError>,
}

impl<F: Filter, S: Supervisable> PipelineASketch<F, S> {
    /// Spawn the sketch worker and assemble the pipeline with default
    /// supervision parameters.
    pub fn spawn(filter: F, sketch: S) -> Self {
        Self::spawn_with(filter, sketch, SupervisionConfig::default())
    }

    /// Spawn with explicit supervision parameters.
    pub fn spawn_with(filter: F, sketch: S, cfg: SupervisionConfig) -> Self {
        let journal = Journal::new(sketch.clone());
        let link = spawn_worker(sketch, &cfg);
        Self {
            filter: Some(filter),
            link: Some(link),
            inline: None,
            spill: VecDeque::new(),
            journal,
            cfg,
            stats: PipelineStats::default(),
            last_error: None,
        }
    }

    #[inline]
    fn filter_ref(&self) -> &F {
        self.filter.as_ref().expect("filter present while live")
    }

    #[inline]
    fn filter_mut(&mut self) -> &mut F {
        self.filter.as_mut().expect("filter present while live")
    }

    /// Tear down the failed worker, reconstruct the sketch from checkpoint +
    /// journal, and either respawn (restart budget permitting) or degrade to
    /// inline mode. Idempotent once degraded.
    fn fail_over(&mut self, err: Option<PipelineError>) {
        let Some(link) = self.link.take() else { return };
        self.stats.worker_failures += 1;

        // Harvest any checkpoints already queued: they tighten the journal
        // so the replay below is as short as possible.
        while let Ok(msg) = link.rx.try_recv() {
            if let FromSketch::Checkpoint { seq, snapshot } = msg {
                self.stats.checkpoints += 1;
                self.journal.on_checkpoint(seq, snapshot);
            }
        }
        drop(link.tx);

        // Give a just-panicked thread a beat to unwind so we can harvest
        // the payload; a genuinely wedged thread is abandoned (it exits on
        // its own when it next touches the disconnected channel).
        let mut finished = link.handle.is_finished();
        if !finished {
            std::thread::sleep(Duration::from_millis(2));
            finished = link.handle.is_finished();
        }
        let error = if finished {
            match link.handle.join() {
                Err(payload) => PipelineError::WorkerPanicked(panic_message(payload)),
                Ok(_) => err.unwrap_or(PipelineError::Disconnected),
            }
        } else {
            err.unwrap_or(PipelineError::EstimateTimeout)
        };
        self.last_error = Some(error);

        // Spilled-but-unsent messages are already journaled; the restore
        // below replays them, so the spill queue itself can go.
        self.spill.clear();
        let restored = self.journal.restore();

        if self.stats.restarts < u64::from(self.cfg.max_restarts) {
            self.stats.restarts += 1;
            let backoff = self.cfg.backoff_for(self.stats.restarts);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            self.journal.reset(restored.clone());
            self.link = Some(spawn_worker(restored, &self.cfg));
            self.stats.degraded = false;
        } else {
            self.stats.degraded = true;
            self.inline = Some(restored);
        }
    }

    /// Flush as much of the spill queue as fits without blocking.
    fn flush_spill_try(&mut self) {
        while let Some(msg) = self.spill.pop_front() {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            match link.tx.try_send(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(m)) => {
                    self.spill.push_front(m);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    // The message is journaled; fail_over's restore covers it.
                    self.fail_over(None);
                    return;
                }
            }
        }
    }

    /// Flush the whole spill queue, waiting for channel space; a worker that
    /// stays wedged past the timeout is failed over (the journal preserves
    /// every spilled op, so nothing is lost either way).
    fn flush_spill_sync(&mut self) {
        while let Some(msg) = self.spill.pop_front() {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            match link.tx.send_timeout(msg, self.cfg.send_timeout) {
                Ok(()) => {}
                Err(SendTimeoutError::Timeout(_)) => {
                    self.fail_over(Some(PipelineError::EstimateTimeout));
                    return;
                }
                Err(SendTimeoutError::Disconnected(_)) => {
                    self.fail_over(None);
                    return;
                }
            }
        }
    }

    /// Append to the spill queue, degrading to a synchronous flush when the
    /// spill itself is full — memory stays bounded and nothing is dropped.
    fn push_spill(&mut self, msg: ToSketch) {
        if self.spill.len() >= self.cfg.spill_capacity.max(1) {
            // Generation check, not just `link.is_none()`: a fail-over during
            // the flush folds the journaled `msg` into the restored sketch
            // even when the worker is *restarted* (link `Some` again), so the
            // in-flight `msg` must be abandoned or it would double-count.
            let generation = self.stats.worker_failures;
            self.flush_spill_sync();
            if self.stats.worker_failures != generation || self.link.is_none() {
                return;
            }
        }
        self.stats.spilled += 1;
        self.spill.push_back(msg);
    }

    /// Ship one counting op to the worker, honouring the backpressure policy
    /// and journaling it first so no failure mode can lose it. In degraded
    /// mode the op is applied inline instead.
    fn ship_counting(&mut self, key: u64, delta: i64, build: impl FnOnce(u64) -> ToSketch) {
        if self.link.is_none() {
            self.stats.inline_updates += 1;
            self.inline
                .as_mut()
                .expect("degraded mode has an inline sketch")
                .update(key, delta);
            return;
        }
        let seq = self.journal.record(key, delta);
        let msg = build(seq);
        // FIFO discipline: anything spilled earlier goes first, so sequence
        // order on the wire always matches journal order.
        //
        // `worker_failures` doubles as a fail-over generation counter: if the
        // flush fails over, `msg` (already journaled) is folded into the
        // restored sketch — whether the runtime then degraded (`link` now
        // `None`) or *restarted* (`link` `Some` again, journal re-baselined
        // past `seq`). Either way `msg` must be abandoned here, or the new
        // worker would apply it a second time.
        let generation = self.stats.worker_failures;
        self.flush_spill_try();
        if self.stats.worker_failures != generation || self.link.is_none() {
            return; // failed over during the flush; the restore covers `msg`
        }
        if !self.spill.is_empty() {
            self.push_spill(msg);
            return;
        }
        let sent = self
            .link
            .as_ref()
            .expect("worker link checked above")
            .tx
            .try_send(msg);
        match sent {
            Ok(()) => {}
            Err(TrySendError::Full(m)) => {
                self.stats.queue_full_events += 1;
                match self.cfg.backpressure {
                    BackpressurePolicy::Block => self.send_sync(m),
                    BackpressurePolicy::InlineFallback => self.push_spill(m),
                }
            }
            Err(TrySendError::Disconnected(_)) => self.fail_over(None),
        }
    }

    /// Ship a batch of filter misses as one message, journaling every item
    /// under a shared sequence number first (mirrors the holistic-UDAF
    /// pipeline's batch shipping). In degraded mode each item runs through
    /// the sequential overflow path inline instead.
    fn ship_forward_batch(&mut self, items: Vec<(u64, i64, i64)>) {
        if items.is_empty() {
            return;
        }
        if self.link.is_none() {
            for (key, u, _) in items {
                self.degraded_overflow(key, u);
            }
            return;
        }
        self.stats.forwarded += items.len() as u64;
        let seq = self.journal.next_seq();
        for &(key, u, _) in &items {
            self.journal.record_at(seq, key, u);
        }
        let msg = ToSketch::ForwardBatch { items, seq };
        // Same generation discipline as `ship_counting`: a fail-over during
        // the flush folds the journaled batch into the restored sketch, so
        // the in-flight `msg` must be abandoned whether the runtime degraded
        // or restarted.
        let generation = self.stats.worker_failures;
        self.flush_spill_try();
        if self.stats.worker_failures != generation || self.link.is_none() {
            return;
        }
        if !self.spill.is_empty() {
            self.push_spill(msg);
            return;
        }
        let sent = self
            .link
            .as_ref()
            .expect("worker link checked above")
            .tx
            .try_send(msg);
        match sent {
            Ok(()) => {}
            Err(TrySendError::Full(m)) => {
                self.stats.queue_full_events += 1;
                match self.cfg.backpressure {
                    BackpressurePolicy::Block => self.send_sync(m),
                    BackpressurePolicy::InlineFallback => self.push_spill(m),
                }
            }
            Err(TrySendError::Disconnected(_)) => self.fail_over(None),
        }
    }

    /// Blocking send with a wedge bound: waits for queue space up to the
    /// send timeout, then declares the worker wedged and fails over.
    fn send_sync(&mut self, msg: ToSketch) {
        let Some(link) = self.link.as_ref() else {
            return;
        };
        match link.tx.send_timeout(msg, self.cfg.send_timeout) {
            Ok(()) => {}
            Err(SendTimeoutError::Timeout(_)) => {
                self.fail_over(Some(PipelineError::EstimateTimeout));
            }
            Err(SendTimeoutError::Disconnected(_)) => self.fail_over(None),
        }
    }

    /// Drain everything the worker has sent back: checkpoints prune the
    /// journal, promotion suggestions are applied against current filter
    /// state.
    fn drain_worker_msgs(&mut self) {
        let mut promotes: Vec<(u64, i64)> = Vec::new();
        let mut checkpoints: Vec<(u64, S)> = Vec::new();
        {
            let Some(link) = self.link.as_ref() else {
                return;
            };
            while let Ok(msg) = link.rx.try_recv() {
                match msg {
                    FromSketch::Promote { key, est } => promotes.push((key, est)),
                    FromSketch::Checkpoint { seq, snapshot } => checkpoints.push((seq, snapshot)),
                }
            }
        }
        for (seq, snapshot) in checkpoints {
            self.stats.checkpoints += 1;
            self.journal.on_checkpoint(seq, snapshot);
        }
        for (key, est) in promotes {
            self.apply_promotion(key, est);
        }
    }

    /// Re-check a promotion suggestion against the *current* filter state
    /// and apply it if it still holds.
    fn apply_promotion(&mut self, key: u64, suggested_est: i64) {
        if self.filter_ref().query(key).is_some() {
            return;
        }
        let Some(min) = self.filter_ref().min_count() else {
            return;
        };
        if suggested_est <= min {
            return;
        }
        // The suggested estimate is stale: the hot key has usually received
        // further forwards since the suggestion was made. Fetch a fresh
        // estimate — FIFO ordering guarantees it covers every update this
        // core has issued — so the filter count never starts below the
        // sketch's mass for the key.
        let fresh = self.backend_estimate(key);
        if fresh <= min {
            return;
        }
        let evicted = self
            .filter_mut()
            .evict_min()
            .expect("filter non-empty: min_count succeeded");
        if evicted.pending() > 0 {
            let (dkey, pending) = (evicted.key, evicted.pending());
            self.ship_counting(dkey, pending, |seq| ToSketch::Demote {
                key: dkey,
                pending,
                seq,
            });
        }
        self.filter_mut().insert(key, fresh, fresh);
        self.stats.exchanges += 1;
        // Best-effort: let the worker clear its recently-suggested ring.
        if self.spill.is_empty() {
            if let Some(link) = self.link.as_ref() {
                let _ = link.tx.try_send(ToSketch::Promoted);
            }
        }
    }

    /// Estimate for a key not monitored by the filter: round-trip to the
    /// worker with timeout + retry, failing over (and answering inline) if
    /// the worker never responds. In degraded mode, answers from the inline
    /// sketch directly.
    fn backend_estimate(&mut self, key: u64) -> i64 {
        loop {
            if self.link.is_none() {
                return self
                    .inline
                    .as_ref()
                    .expect("degraded mode has an inline sketch")
                    .estimate(key);
            }
            // All queued counting ops must precede the estimate so the
            // answer covers them.
            self.flush_spill_sync();
            if self.link.is_none() {
                continue;
            }
            let mut failure: Option<Option<PipelineError>> = None;
            let mut timeouts = 0u32;
            loop {
                let link = self.link.as_ref().expect("worker link checked above");
                let (reply_tx, reply_rx) = channel::bounded(1);
                let sent = link.tx.send_timeout(
                    ToSketch::Estimate {
                        key,
                        reply: reply_tx,
                    },
                    self.cfg.estimate_timeout,
                );
                match sent {
                    Ok(()) => match reply_rx.recv_timeout(self.cfg.estimate_timeout) {
                        Ok(v) => return v,
                        Err(RecvTimeoutError::Timeout) => {
                            self.stats.estimate_timeouts += 1;
                            timeouts += 1;
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            failure = Some(None);
                        }
                    },
                    Err(SendTimeoutError::Timeout(_)) => {
                        self.stats.estimate_timeouts += 1;
                        timeouts += 1;
                    }
                    Err(SendTimeoutError::Disconnected(_)) => {
                        failure = Some(None);
                    }
                }
                if let Some(err) = failure {
                    self.fail_over(err);
                    break;
                }
                if timeouts > self.cfg.estimate_retries {
                    self.fail_over(Some(PipelineError::EstimateTimeout));
                    break;
                }
            }
            // Failed over: either a fresh worker is up (retry the round
            // trip against it) or we are degraded (answered at loop top).
        }
    }

    /// Process one tuple (Algorithm 1 with the sketch path asynchronous).
    pub fn update(&mut self, key: u64, u: i64) {
        if u <= 0 {
            // `i64::MIN` has no positive negation: saturate instead of
            // overflowing, so debug and release builds agree.
            let amount = u.checked_neg().unwrap_or(i64::MAX);
            if amount > 0 {
                self.delete(key, amount);
            }
            return;
        }
        if !self.spill.is_empty() {
            self.flush_spill_try();
        }
        if self.filter_mut().update_existing(key, u).is_some() {
            return;
        }
        if !self.filter_ref().is_full() {
            self.filter_mut().insert(key, u, 0);
            return;
        }
        if self.link.is_none() {
            self.degraded_overflow(key, u);
            return;
        }
        let filter_min = self
            .filter_ref()
            .min_count()
            .expect("full filter non-empty");
        self.stats.forwarded += 1;
        self.ship_counting(key, u, |seq| ToSketch::Forward {
            key,
            u,
            filter_min,
            seq,
        });
        self.drain_worker_msgs();
    }

    /// Process a batch of tuples, coalescing consecutive filter misses into
    /// one [`ToSketch::ForwardBatch`] message instead of one message per
    /// miss — the per-tuple channel and journal overhead is what caps the
    /// pipeline's ingest rate on low-skew streams.
    ///
    /// Semantics match a loop of [`update`](Self::update) up to promotion
    /// timing: each miss is forwarded with the filter minimum observed when
    /// *it* missed, deletes flush the pending batch first so wire order
    /// equals arrival order, and worker replies are drained once per batch
    /// rather than once per miss. Promotions therefore land with slightly
    /// coarser granularity — the same stale-minimum relaxation the pipeline
    /// already accepts (see the module docs).
    pub fn update_batch(&mut self, tuples: &[(u64, i64)]) {
        /// Caller-side coalescing bound; keeps a single message's journal
        /// footprint and worker latency bite bounded.
        const FLUSH_AT: usize = 64;
        let mut misses: Vec<(u64, i64, i64)> = Vec::new();
        for &(key, u) in tuples {
            if u <= 0 {
                // Deletions must observe every earlier forward in arrival
                // order, so the pending batch goes first.
                let batch = std::mem::take(&mut misses);
                self.ship_forward_batch(batch);
                let amount = u.checked_neg().unwrap_or(i64::MAX);
                if amount > 0 {
                    self.delete(key, amount);
                }
                continue;
            }
            if self.filter_mut().update_existing(key, u).is_some() {
                continue;
            }
            if !self.filter_ref().is_full() {
                self.filter_mut().insert(key, u, 0);
                continue;
            }
            if self.link.is_none() {
                let batch = std::mem::take(&mut misses);
                self.ship_forward_batch(batch);
                self.degraded_overflow(key, u);
                continue;
            }
            let filter_min = self
                .filter_ref()
                .min_count()
                .expect("full filter non-empty");
            misses.push((key, u, filter_min));
            if misses.len() >= FLUSH_AT {
                let batch = std::mem::take(&mut misses);
                self.ship_forward_batch(batch);
            }
        }
        self.ship_forward_batch(misses);
        self.drain_worker_msgs();
    }

    /// Degraded-mode overflow path: the full sequential exchange check
    /// (Algorithm 1) runs inline on the caller.
    fn degraded_overflow(&mut self, key: u64, u: i64) {
        self.stats.inline_updates += 1;
        let inline = self
            .inline
            .as_mut()
            .expect("degraded mode has an inline sketch");
        let est = inline.update_and_estimate(key, u);
        let filter = self.filter.as_mut().expect("filter present while live");
        let min = filter.min_count().expect("full filter non-empty");
        if est > min {
            let evicted = filter.evict_min().expect("filter non-empty");
            if evicted.pending() > 0 {
                inline.update(evicted.key, evicted.pending());
            }
            filter.insert(key, est, est);
            self.stats.exchanges += 1;
        }
    }

    /// Convenience: `update(key, 1)`.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Appendix-A deletion across the pipeline.
    ///
    /// A non-positive `amount` is a documented no-op: zero-amount deletes
    /// are common in generated workloads and must not abort the stream.
    pub fn delete(&mut self, key: u64, amount: i64) {
        if amount <= 0 {
            return;
        }
        match self.filter_mut().subtract(key, amount) {
            None => self.ship_counting(key, -amount, |seq| ToSketch::Subtract { key, amount, seq }),
            Some(0) => {}
            Some(remainder) => self.ship_counting(key, -remainder, |seq| ToSketch::Subtract {
                key,
                amount: remainder,
                seq,
            }),
        }
        // Harvest checkpoints (and promotions) here too: a delete-heavy
        // workload journals every shipped op, so without this drain the
        // journal and the unbounded reply channel would grow without bound.
        self.drain_worker_msgs();
    }

    /// Point query. Filter hits answer locally; misses go through
    /// [`backend_estimate`](Self::backend_estimate) (worker round-trip with
    /// timeout + retry, or the inline sketch when degraded).
    pub fn estimate(&mut self, key: u64) -> i64 {
        self.drain_worker_msgs();
        if let Some(c) = self.filter_ref().query(key) {
            return c;
        }
        self.backend_estimate(key)
    }

    /// Number of promotions applied so far.
    pub fn exchanges(&self) -> u64 {
        self.stats.exchanges
    }

    /// Number of tuples forwarded to the sketch core.
    pub fn forwarded(&self) -> u64 {
        self.stats.forwarded
    }

    /// Runtime counters (forwards, exchanges, queue-full events, spills,
    /// failures, restarts, checkpoints, degraded flag).
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Condensed health view: degraded flag, restart/failure counts, and
    /// the most recent error rendered as a string.
    pub fn health(&self) -> RuntimeHealth {
        RuntimeHealth {
            degraded: self.stats.degraded,
            restarts: self.stats.restarts,
            worker_failures: self.stats.worker_failures,
            last_error: self.last_error.as_ref().map(|e| e.to_string()),
        }
    }

    /// The most recent worker fault, if any.
    pub fn last_error(&self) -> Option<&PipelineError> {
        self.last_error.as_ref()
    }

    /// `true` once the restart budget is spent and updates run inline.
    pub fn is_degraded(&self) -> bool {
        self.stats.degraded
    }

    /// The supervision parameters this pipeline runs with.
    pub fn config(&self) -> &SupervisionConfig {
        &self.cfg
    }

    /// Recover the sketch from whatever state the worker is in: clean join
    /// when healthy, journal reconstruction when panicked or wedged. Bounded
    /// by [`SupervisionConfig::shutdown_timeout`] — never hangs.
    fn recover_sketch(&mut self) -> S {
        self.drain_worker_msgs();
        if self.link.is_some() {
            self.flush_spill_sync();
        }
        let Some(link) = self.link.take() else {
            return match self.inline.take() {
                Some(s) => s,
                None => self.journal.restore(),
            };
        };
        let _ = link
            .tx
            .send_timeout(ToSketch::Shutdown, self.cfg.send_timeout);
        drop(link.tx);
        let deadline = std::time::Instant::now() + self.cfg.shutdown_timeout;
        while !link.handle.is_finished() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if link.handle.is_finished() {
            match link.handle.join() {
                Ok(sketch) => sketch,
                Err(payload) => {
                    self.stats.worker_failures += 1;
                    self.stats.degraded = true;
                    self.last_error = Some(PipelineError::WorkerPanicked(panic_message(payload)));
                    self.journal.restore()
                }
            }
        } else {
            // Wedged past the deadline: abandon the thread (it exits when it
            // next touches the disconnected channel) and reconstruct.
            self.stats.worker_failures += 1;
            self.stats.degraded = true;
            self.last_error = Some(PipelineError::EstimateTimeout);
            self.journal.restore()
        }
    }

    /// Shut the worker down and return `(filter, sketch)`.
    ///
    /// Never hangs: a healthy worker is joined, a panicked or wedged one is
    /// replaced by the journal reconstruction (check
    /// [`health`](Self::health) before calling if you need to know which).
    pub fn finish(mut self) -> (F, S) {
        let sketch = self.recover_sketch();
        let filter = self.filter.take().expect("filter present until finish");
        (filter, sketch)
    }
}

impl<F: Filter, S: Supervisable> Drop for PipelineASketch<F, S> {
    /// Best-effort teardown for pipelines dropped without
    /// [`finish`](Self::finish): ask the worker to stop, wait a bounded
    /// time, and abandon it if wedged. Never hangs, never panics.
    fn drop(&mut self) {
        if let Some(link) = self.link.take() {
            let _ = link.tx.try_send(ToSketch::Shutdown);
            drop(link.tx);
            let deadline = std::time::Instant::now() + self.cfg.shutdown_timeout;
            while !link.handle.is_finished() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if link.handle.is_finished() {
                let _ = link.handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyEstimator};
    use asketch::filter::RelaxedHeapFilter;
    use sketches::{CountMin, FrequencyEstimator};

    fn pipeline(cap: usize) -> PipelineASketch<RelaxedHeapFilter, CountMin> {
        PipelineASketch::spawn(
            RelaxedHeapFilter::new(cap),
            CountMin::new(7, 4, 1 << 12).unwrap(),
        )
    }

    #[test]
    fn heavy_items_exact_in_filter() {
        let mut p = pipeline(4);
        for _ in 0..10_000 {
            p.insert(1);
        }
        assert_eq!(p.estimate(1), 10_000);
        assert_eq!(p.forwarded(), 0);
    }

    #[test]
    fn overflow_reaches_sketch() {
        let mut p = pipeline(2);
        p.insert(1);
        p.insert(2);
        for _ in 0..100 {
            p.insert(3);
        }
        assert!(p.estimate(3) >= 100, "must cover all 100 inserts");
        let (filter, sketch) = p.finish();
        // Key 3's mass lives in the filter (if promoted) or in the sketch.
        let covered = filter.query(3).unwrap_or_else(|| sketch.estimate(3));
        assert!(covered >= 100);
    }

    #[test]
    fn promotion_happens_for_hot_overflow() {
        let mut p = pipeline(2);
        p.insert(1);
        p.insert(2);
        for i in 0..5_000u64 {
            p.insert(100); // hot key hammering the sketch
            p.insert(1000 + i % 3); // churn so promotes drain
        }
        // Give the worker a moment, then drain.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let est = p.estimate(100);
        assert!(est >= 5_000);
        assert!(p.exchanges() >= 1, "hot key must be promoted");
    }

    #[test]
    fn one_sided_guarantee_across_pipeline() {
        let mut p = pipeline(8);
        let mut truth = std::collections::HashMap::new();
        let mut x = 17u64;
        for _ in 0..30_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            let key = match x % 10 {
                0..=4 => x % 3,
                _ => 50 + x % 500,
            };
            p.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            let est = p.estimate(key);
            assert!(est >= t, "pipeline under-counts key {key}: {est} < {t}");
        }
    }

    #[test]
    fn deletions_route_correctly() {
        let mut p = pipeline(2);
        for _ in 0..10 {
            p.insert(1); // in filter
        }
        p.delete(1, 3);
        assert_eq!(p.estimate(1), 7);
        p.insert(2);
        for _ in 0..5 {
            p.insert(3); // overflows
        }
        let before = p.estimate(3);
        p.update(3, -2);
        assert_eq!(p.estimate(3), before - 2);
    }

    #[test]
    fn finish_returns_components() {
        let mut p = pipeline(2);
        p.insert(1);
        let (filter, sketch) = p.finish();
        assert_eq!(filter.len(), 1);
        assert_eq!(sketch.estimate(1), 0, "key 1 stayed in the filter");
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let mut p = pipeline(2);
        p.insert(1);
        drop(p); // must join cleanly
    }

    #[test]
    fn update_with_i64_min_saturates_instead_of_overflowing() {
        let mut p = pipeline(2);
        for _ in 0..10 {
            p.insert(1);
        }
        // `-i64::MIN` overflows; must behave identically (saturating
        // delete) in debug and release instead of panicking in one.
        p.update(1, i64::MIN);
        assert!(p.estimate(1) < 10);
        p.update(42, i64::MIN); // unmonitored key: same, via the sketch path
        p.insert(2);
        assert_eq!(p.estimate(2), 1);
    }

    #[test]
    fn delete_heavy_workload_harvests_checkpoints() {
        let cfg = SupervisionConfig {
            queue_capacity: 64,
            checkpoint_interval: 16,
            ..SupervisionConfig::default()
        };
        let mut p = PipelineASketch::spawn_with(
            RelaxedHeapFilter::new(2),
            CountMin::new(7, 4, 1 << 12).unwrap(),
            cfg,
        );
        // Heavy residents pin the filter minimum high, so key 3 is never
        // promoted: every insert forwards and every delete ships.
        for _ in 0..2_000 {
            p.insert(1);
            p.insert(2);
        }
        for _ in 0..1_000 {
            p.insert(3); // overflows: journaled + shipped
        }
        let after_inserts = p.stats().checkpoints;
        // Deletes of an unmonitored key ship journaled Subtract ops; the
        // delete path itself must harvest the worker's checkpoints so the
        // journal and reply channel stay bounded on delete-only streams.
        for _ in 0..999 {
            p.delete(3, 1);
        }
        std::thread::sleep(Duration::from_millis(20));
        p.delete(3, 1); // final delete drains everything pending
        let st = p.stats();
        assert!(
            st.checkpoints > after_inserts + 30,
            "delete path must prune the journal via checkpoints: \
             {after_inserts} before deletes, {st:?}"
        );
        assert_eq!(p.estimate(3), 0);
    }

    #[test]
    fn zero_and_negative_amount_delete_is_noop() {
        let mut p = pipeline(2);
        for _ in 0..10 {
            p.insert(1);
        }
        p.delete(1, 0);
        p.delete(1, -5);
        p.delete(42, 0); // unmonitored key: must not ship anything either
        assert_eq!(p.estimate(1), 10);
        assert_eq!(p.estimate(42), 0);
    }

    #[test]
    fn stats_surface_reports_activity() {
        let mut p = pipeline(2);
        p.insert(1);
        p.insert(2);
        for _ in 0..50 {
            p.insert(3);
        }
        let _ = p.estimate(3);
        let st = p.stats();
        assert!(st.forwarded >= 50);
        assert!(!st.degraded);
        assert_eq!(st.worker_failures, 0);
        let h = p.health();
        assert!(!h.degraded);
        assert!(h.last_error.is_none());
    }

    #[test]
    fn inline_fallback_spills_and_stays_exact() {
        let cfg = SupervisionConfig {
            queue_capacity: 4,
            backpressure: BackpressurePolicy::InlineFallback,
            spill_capacity: 64,
            checkpoint_interval: 32,
            ..SupervisionConfig::default()
        };
        let sketch = FaultyEstimator::new(
            CountMin::new(7, 4, 1 << 12).unwrap(),
            FaultPlan::slow_updates(1, Duration::from_micros(300)),
        );
        let mut p = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), sketch, cfg);
        p.insert(1);
        p.insert(2);
        for _ in 0..500 {
            p.insert(3); // slow worker: queue fills, caller spills
        }
        assert!(p.estimate(3) >= 500, "no update may be dropped");
        let st = p.stats();
        assert!(st.queue_full_events > 0, "slow worker must fill the queue");
        assert!(st.spilled > 0, "fallback policy must spill");
        assert!(!st.degraded);
        let (filter, sketch) = p.finish();
        let covered = filter.query(3).unwrap_or_else(|| sketch.estimate(3));
        assert!(covered >= 500);
    }

    #[test]
    fn block_policy_counts_queue_full_without_spilling() {
        let cfg = SupervisionConfig {
            queue_capacity: 4,
            backpressure: BackpressurePolicy::Block,
            checkpoint_interval: 32,
            ..SupervisionConfig::default()
        };
        let sketch = FaultyEstimator::new(
            CountMin::new(7, 4, 1 << 12).unwrap(),
            FaultPlan::slow_updates(1, Duration::from_micros(300)),
        );
        let mut p = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), sketch, cfg);
        p.insert(1);
        p.insert(2);
        for _ in 0..300 {
            p.insert(3);
        }
        assert!(p.estimate(3) >= 300);
        let st = p.stats();
        assert!(st.queue_full_events > 0);
        assert_eq!(st.spilled, 0, "Block policy never spills");
    }

    #[test]
    fn worker_panic_restarts_and_preserves_counts() {
        let cfg = SupervisionConfig {
            queue_capacity: 8,
            checkpoint_interval: 16,
            max_restarts: 3,
            restart_backoff: Duration::from_millis(1),
            ..SupervisionConfig::default()
        };
        let sketch = FaultyEstimator::new(
            CountMin::new(7, 4, 1 << 12).unwrap(),
            FaultPlan::panic_at(40).with_message("injected worker crash"),
        );
        let mut p = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), sketch, cfg);
        // Heavy filter residents keep min_count high, so the forwarded key
        // is never promoted and every insert of 3 reaches the worker.
        for _ in 0..1_000 {
            p.insert(1);
            p.insert(2);
        }
        for _ in 0..400 {
            p.insert(3); // op 40 on the worker panics mid-stream
        }
        assert!(p.estimate(3) >= 400, "restore + replay must lose nothing");
        let st = p.stats();
        assert!(st.worker_failures >= 1, "panic must be observed");
        assert!(st.restarts >= 1, "worker must be respawned");
        assert!(!st.degraded, "restart budget not exhausted");
        let h = p.health();
        assert!(
            h.last_error.as_deref().unwrap_or("").contains("injected"),
            "panic payload must be captured: {:?}",
            h.last_error
        );
    }

    #[test]
    fn batched_updates_stay_one_sided_with_mixed_deltas() {
        let mut p = pipeline(8);
        let mut truth = std::collections::HashMap::new();
        let mut x = 29u64;
        let mut batch = Vec::new();
        for _ in 0..30_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            let key = match x % 10 {
                0..=4 => x % 3,
                _ => 50 + x % 500,
            };
            // Mostly inserts, occasional deletes of a known-heavy key so
            // the batch path exercises its flush-before-delete ordering.
            let delta = if x.is_multiple_of(97) { -1 } else { 1 };
            let key = if delta < 0 { x % 3 } else { key };
            batch.push((key, delta));
            let t = truth.entry(key).or_insert(0i64);
            *t = (*t + delta).max(0);
            if batch.len() == 257 {
                p.update_batch(&batch);
                batch.clear();
            }
        }
        p.update_batch(&batch);
        for (&key, &t) in &truth {
            let est = p.estimate(key);
            assert!(est >= t, "batched pipeline under-counts {key}: {est} < {t}");
        }
    }

    #[test]
    fn batched_resident_keys_stay_exact() {
        let mut p = pipeline(4);
        let tuples: Vec<(u64, i64)> = (0..4_000u64).map(|i| (i % 4, 1)).collect();
        p.update_batch(&tuples);
        for key in 0..4u64 {
            assert_eq!(p.estimate(key), 1_000, "filter-resident key {key}");
        }
        assert_eq!(p.forwarded(), 0, "no resident key may be forwarded");
    }

    #[test]
    fn batched_forwards_survive_worker_panic() {
        let cfg = SupervisionConfig {
            queue_capacity: 8,
            checkpoint_interval: 16,
            max_restarts: 3,
            restart_backoff: Duration::from_millis(1),
            ..SupervisionConfig::default()
        };
        let sketch = FaultyEstimator::new(
            CountMin::new(7, 4, 1 << 12).unwrap(),
            FaultPlan::panic_at(40).with_message("injected batch crash"),
        );
        let mut p = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), sketch, cfg);
        // Heavy residents pin min_count high so key 3 always forwards.
        let mut tuples: Vec<(u64, i64)> = Vec::new();
        for _ in 0..1_000 {
            tuples.push((1, 1));
            tuples.push((2, 1));
        }
        for _ in 0..400 {
            tuples.push((3, 1)); // the worker panics mid-batch-stream
        }
        p.update_batch(&tuples);
        assert!(
            p.estimate(3) >= 400,
            "per-item journal entries must replay the lost batch"
        );
        let st = p.stats();
        assert!(st.worker_failures >= 1, "panic must be observed");
        assert!(!st.degraded, "restart budget not exhausted");
    }

    #[test]
    fn batched_promotion_happens_for_hot_overflow() {
        let mut p = pipeline(2);
        let mut tuples: Vec<(u64, i64)> = vec![(1, 1), (2, 1)];
        for i in 0..5_000u64 {
            tuples.push((100, 1)); // hot key hammering the sketch
            tuples.push((1000 + i % 3, 1)); // churn so promotes drain
        }
        for chunk in tuples.chunks(512) {
            p.update_batch(chunk);
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        let est = p.estimate(100);
        assert!(est >= 5_000);
        assert!(p.exchanges() >= 1, "hot key must be promoted via batches");
    }

    #[test]
    fn restart_budget_exhaustion_degrades_but_keeps_counting() {
        let cfg = SupervisionConfig {
            queue_capacity: 8,
            checkpoint_interval: 16,
            max_restarts: 0, // first fault degrades immediately
            ..SupervisionConfig::default()
        };
        let mut plan = FaultPlan::panic_at(25);
        plan.rearm_on_clone = false;
        let sketch = FaultyEstimator::new(CountMin::new(7, 4, 1 << 12).unwrap(), plan);
        let mut p = PipelineASketch::spawn_with(RelaxedHeapFilter::new(2), sketch, cfg);
        // Keep min_count high so key 3 stays on the forward path (see
        // worker_panic_restarts_and_preserves_counts).
        for _ in 0..1_000 {
            p.insert(1);
            p.insert(2);
        }
        for _ in 0..200 {
            p.insert(3);
        }
        // Updates continue after degradation, estimates stay one-sided.
        assert!(p.estimate(3) >= 200);
        assert!(p.is_degraded());
        let st = p.stats();
        assert_eq!(st.restarts, 0);
        assert!(st.inline_updates > 0, "degraded mode must count inline");
        let (filter, sketch) = p.finish();
        let covered = filter.query(3).unwrap_or_else(|| sketch.estimate(3));
        assert!(covered >= 200);
    }
}
