//! Best-effort thread→core placement for the sharded runtime.
//!
//! Shard workers are latency-sensitive and cache-hungry; the WAL syncer,
//! snapshotter, and scrubber are neither. With
//! `ConcurrentConfig::pin_workers` set, each worker pins itself to core
//! `shard % cores` and the background threads are herded onto the last
//! core, keeping writeback stalls and snapshot serialization off the
//! ingest cores.
//!
//! The crate forbids `unsafe` and the approved dependency set has no
//! `libc`, so pinning shells out to `taskset(1)` against the calling
//! thread's TID (resolved via `/proc/thread-self`). Everything here is
//! best-effort by design: containers without `taskset`, masked cpusets,
//! or non-Linux hosts degrade to unpinned threads, and the outcome is
//! surfaced per shard through `ShardGauge::pinned_core` rather than
//! failing the runtime.

/// Number of cores the scheduler will give us (1 when unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Pin the *calling* thread to `core`. Returns a human-readable reason
/// on failure; callers treat any `Err` as "run unpinned".
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> Result<(), String> {
    let tid = current_tid().ok_or_else(|| "could not resolve thread id".to_string())?;
    let out = std::process::Command::new("taskset")
        .args(["-p", "-c", &core.to_string(), &tid.to_string()])
        .output()
        .map_err(|e| format!("taskset unavailable: {e}"))?;
    if out.status.success() {
        Ok(())
    } else {
        Err(format!(
            "taskset rejected core {core}: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ))
    }
}

/// Non-Linux hosts have no `/proc` or `taskset`; always unpinned.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_core: usize) -> Result<(), String> {
    Err("thread pinning is only supported on Linux".to_string())
}

/// The calling thread's kernel TID, via the `/proc/thread-self` magic
/// symlink (its target ends in `.../task/<tid>`).
#[cfg(target_os = "linux")]
fn current_tid() -> Option<u64> {
    let link = std::fs::read_link("/proc/thread-self").ok()?;
    link.file_name()?.to_str()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_positive() {
        assert!(available_cores() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn current_tid_resolves_and_differs_across_threads() {
        let a = current_tid().expect("tid on linux");
        let b = std::thread::spawn(|| current_tid().expect("tid on linux"))
            .join()
            .unwrap();
        assert_ne!(a, b, "thread-self is per thread, not per process");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_current_thread_is_best_effort_not_panicky() {
        // Core 0 always exists; success or a readable error are both
        // acceptable (CI cpusets may mask it), panics are not.
        match pin_current_thread(0) {
            Ok(()) => {}
            Err(reason) => assert!(!reason.is_empty()),
        }
        // A core index far past the host must not succeed silently...
        // unless the runner's cpuset remaps it; either way no panic.
        let _ = pin_current_thread(usize::MAX & 0xFFFF);
    }
}
