//! # asketch-parallel — supervised multi-core execution of ASketch
//!
//! The parallel configurations of paper §6, run under a fault-tolerant
//! supervision layer:
//!
//! * [`pipeline::PipelineASketch`] — §6.2 pipeline parallelism: filter and
//!   sketch on separate cores connected by bounded message channels.
//! * [`pipeline_hudaf::PipelineHUdaf`] — Figure 12's parallel holistic
//!   UDAF: batch pre-aggregation in front of a supervised sketch worker.
//! * [`spmd::SpmdGroup`] — §6.3 SPMD parallelism: one full counting kernel
//!   per core, commutative query combine, per-shard panic containment.
//!   [`spmd::hash_shards`] adds a key-partitioned variant whose per-key
//!   queries are owner-exact instead of summed.
//! * [`concurrent::ConcurrentASketch`] — a long-lived key-partitioned
//!   runtime: per-shard worker threads each running the full sequential
//!   ASketch over their key class, with **wait-free point queries served
//!   during ingest** through seqlock-published filter snapshots
//!   ([`seqlock::FilterSnapshot`]) and lock-free sketch views. Per-key
//!   answers after a [`concurrent::ConcurrentASketch::sync`] barrier are
//!   *exactly* the sequential algorithm's.
//!   [`concurrent::ConcurrentASketch::spawn_durable`] adds crash
//!   durability: per-shard write-ahead logs on the ship path, checksummed
//!   background snapshots off the checkpoint path, and
//!   recover-on-spawn with sequence-gated dedup (see `asketch-durable`).
//!
//! The supervision layer ([`supervisor`]) provides bounded backpressure
//! with a configurable [`BackpressurePolicy`], checkpoint + journal state
//! recovery on worker panic, bounded restarts with exponential backoff, a
//! permanent inline degraded mode, and observable
//! [`PipelineStats`]/[`RuntimeHealth`] (per-shard gauges for the concurrent
//! runtime surface through `eval_metrics::ShardedHealth`). The [`fault`]
//! module ships a reusable fault-injection harness ([`FaultyEstimator`])
//! used by the chaos tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod affinity;
pub mod concurrent;
pub mod fault;
pub mod pipeline;
pub mod pipeline_hudaf;
pub mod ring;
pub mod router;
pub mod seqlock;
pub mod session;
pub mod spmd;
pub mod supervisor;

pub use concurrent::{ConcurrentASketch, ConcurrentConfig, DataPlane, QueryHandle, ShardSnapshot};
pub use fault::{FaultPlan, FaultyEstimator};
pub use pipeline::PipelineASketch;
pub use pipeline_hudaf::PipelineHUdaf;
pub use router::KeyRouter;
pub use seqlock::FilterSnapshot;
pub use session::{SessionOutcome, SessionTable};
pub use spmd::{
    hash_shards, round_robin_shards, KeyPartition, KeyShards, ShardRecovery, SpmdGroup, SpmdReport,
};
pub use supervisor::{
    BackpressurePolicy, PipelineError, PipelineStats, RuntimeHealth, SupervisionConfig,
};
