//! # asketch-parallel — supervised multi-core execution of ASketch
//!
//! The two parallel configurations of paper §6, run under a fault-tolerant
//! supervision layer:
//!
//! * [`pipeline::PipelineASketch`] — §6.2 pipeline parallelism: filter and
//!   sketch on separate cores connected by bounded message channels.
//! * [`pipeline_hudaf::PipelineHUdaf`] — Figure 12's parallel holistic
//!   UDAF: batch pre-aggregation in front of a supervised sketch worker.
//! * [`spmd::SpmdGroup`] — §6.3 SPMD parallelism: one full counting kernel
//!   per core, commutative query combine, per-shard panic containment.
//!
//! The supervision layer ([`supervisor`]) provides bounded backpressure
//! with a configurable [`BackpressurePolicy`], checkpoint + journal state
//! recovery on worker panic, bounded restarts with exponential backoff, a
//! permanent inline degraded mode, and observable
//! [`PipelineStats`]/[`RuntimeHealth`]. The [`fault`] module ships a
//! reusable fault-injection harness ([`FaultyEstimator`]) used by the chaos
//! tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod pipeline;
pub mod pipeline_hudaf;
pub mod spmd;
pub mod supervisor;

pub use fault::{FaultPlan, FaultyEstimator};
pub use pipeline::PipelineASketch;
pub use pipeline_hudaf::PipelineHUdaf;
pub use spmd::{round_robin_shards, ShardRecovery, SpmdGroup, SpmdReport};
pub use supervisor::{
    BackpressurePolicy, PipelineError, PipelineStats, RuntimeHealth, SupervisionConfig,
};
