//! # asketch-parallel — multi-core execution of ASketch
//!
//! The two parallel configurations of paper §6:
//!
//! * [`pipeline::PipelineASketch`] — §6.2 pipeline parallelism: filter and
//!   sketch on separate cores connected by message channels.
//! * [`spmd::SpmdGroup`] — §6.3 SPMD parallelism: one full counting kernel
//!   per core, commutative query combine.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pipeline;
pub mod pipeline_hudaf;
pub mod spmd;

pub use pipeline::PipelineASketch;
pub use pipeline_hudaf::PipelineHUdaf;
pub use spmd::{round_robin_shards, SpmdGroup};
