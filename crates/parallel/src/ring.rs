//! Bounded SPSC ring buffer for the ingest hot path (DESIGN.md §15).
//!
//! One ring per shard carries `(seq, keys)` batches from the router
//! thread to that shard's worker — a single producer and a single
//! consumer by construction. The supervised crossbeam channel stays in
//! place as the *control plane* (checkpoint/sync/shutdown); only the
//! per-batch data hop moves onto the ring.
//!
//! ## Protocol
//!
//! `head` (next slot to pop, written only by the consumer) and `tail`
//! (next slot to push, written only by the producer) are monotonically
//! increasing counters on separate cache lines; a slot's index is
//! `counter & (capacity - 1)`. The producer publishes a slot with a
//! release store of `tail`; the consumer acquires `tail`, takes the slot,
//! and releases `head`. Because each counter has exactly one writer,
//! no CAS is needed anywhere on the hot path.
//!
//! The crate forbids `unsafe`, so slots are `Mutex<Option<T>>` rather
//! than `UnsafeCell` — but by the SPSC protocol a slot is only ever
//! locked by one thread at a time (the producer before the release store,
//! the consumer after the acquire load), so every lock acquisition is
//! uncontended: an atomic flag swing, not a syscall.
//!
//! ## Parking
//!
//! Both endpoints spin on `try_*` and park only on empty/full
//! transitions. Wakeups use a Dekker-style flag + SeqCst fence pair
//! (park flag store, fence, recheck ⟷ publish, fence, flag swap), and
//! every park carries a short timeout so a theoretically lost wakeup
//! costs one bounded nap, never a hang. The producer can also
//! [`Producer::wake_consumer`] explicitly after control-plane sends, so
//! a parked worker notices checkpoint/shutdown promptly.
//!
//! A loom model of the publish/consume protocol lives alongside the
//! seqlock model:
//! `RUSTFLAGS="--cfg loom" cargo test -p asketch-parallel --release ring_loom`.

#[cfg(loom)]
use loom::sync::atomic::{fence, AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::Mutex;
#[cfg(not(loom))]
use std::sync::atomic::{fence, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::Mutex;

use std::sync::{Arc, PoisonError};
use std::time::Duration;

#[cfg(not(loom))]
use std::sync::atomic::AtomicBool;
#[cfg(not(loom))]
use std::thread::Thread;

/// Keeps the two endpoint counters off a shared cache line; 128 bytes
/// covers adjacent-line prefetching on current x86.
#[repr(align(128))]
struct CachePadded<T>(T);

/// Parking state, off the hot path: touched only on empty/full
/// transitions. Not modeled under loom (the model covers the lock-free
/// publish/consume protocol; parking is timeout-bounded by design).
#[cfg(not(loom))]
struct ParkState {
    consumer_parked: AtomicBool,
    producer_parked: AtomicBool,
    consumer: Mutex<Option<Thread>>,
    producer: Mutex<Option<Thread>>,
}

/// The shared ring. Construct via [`spsc`]; the two endpoint handles
/// enforce single-producer/single-consumer by ownership.
pub struct SpscRing<T> {
    slots: Box<[Mutex<Option<T>>]>,
    mask: usize,
    /// Next slot the consumer will pop. Written by the consumer only.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will push. Written by the producer only.
    tail: CachePadded<AtomicUsize>,
    #[cfg(not(loom))]
    park: ParkState,
}

impl<T> SpscRing<T> {
    fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Mutex<Option<T>>]> = (0..cap).map(|_| Mutex::new(None)).collect();
        Self {
            slots,
            mask: cap - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            #[cfg(not(loom))]
            park: ParkState {
                consumer_parked: AtomicBool::new(false),
                producer_parked: AtomicBool::new(false),
                consumer: Mutex::new(None),
                producer: Mutex::new(None),
            },
        }
    }

    /// Slot count (a power of two ≥ the requested capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate occupancy — exact when read from either endpoint's
    /// own thread, a racy-but-bounded gauge from anywhere else.
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.slots.len())
    }

    /// Whether the ring currently holds no batches (same caveat as
    /// [`SpscRing::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(value);
        }
        *self.slots[tail & self.mask]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(value);
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    fn pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let value = self.slots[head & self.mask]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        value
    }

    #[cfg(not(loom))]
    fn wake(flag: &AtomicBool, slot: &Mutex<Option<Thread>>) {
        fence(Ordering::SeqCst);
        if flag.swap(false, Ordering::SeqCst) {
            if let Some(t) = slot.lock().unwrap_or_else(PoisonError::into_inner).as_ref() {
                t.unpark();
            }
        }
    }

    #[cfg(not(loom))]
    fn wake_consumer(&self) {
        Self::wake(&self.park.consumer_parked, &self.park.consumer);
    }

    #[cfg(not(loom))]
    fn wake_producer(&self) {
        Self::wake(&self.park.producer_parked, &self.park.producer);
    }

    #[cfg(loom)]
    fn wake_consumer(&self) {}
    #[cfg(loom)]
    fn wake_producer(&self) {}
}

/// Build a ring of at least `capacity` slots and split it into its two
/// endpoint handles.
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let ring = Arc::new(SpscRing::with_capacity(capacity));
    (
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    )
}

/// The router-side endpoint: pushes batches, wakes a parked worker.
pub struct Producer<T> {
    ring: Arc<SpscRing<T>>,
}

/// The worker-side endpoint: pops batches, wakes a parked router.
pub struct Consumer<T> {
    ring: Arc<SpscRing<T>>,
}

impl<T> Producer<T> {
    /// Push without blocking. `Err(value)` when the ring is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        self.ring.push(value)?;
        self.ring.wake_consumer();
        Ok(())
    }

    /// Push, parking (in short timeout-bounded naps) while the ring is
    /// full, for at most `timeout`. `Err(value)` on timeout — the
    /// caller's backpressure policy decides what happens next.
    #[cfg(not(loom))]
    pub fn push_timeout(&self, mut value: T, timeout: Duration) -> Result<(), T> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(v) => value = v,
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(value);
            }
            let park = &self.ring.park;
            *park.producer.lock().unwrap_or_else(PoisonError::into_inner) =
                Some(std::thread::current());
            park.producer_parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            // Recheck after publishing the flag: a pop between our failed
            // push and the flag store would otherwise be a lost wakeup.
            if self.ring.len() >= self.ring.capacity() {
                std::thread::park_timeout((deadline - now).min(Duration::from_millis(1)));
            }
            park.producer_parked.store(false, Ordering::SeqCst);
        }
    }

    /// Loom builds cannot park; spin-yield instead (the model only
    /// exercises the lock-free protocol).
    #[cfg(loom)]
    pub fn push_timeout(&self, mut value: T, _timeout: Duration) -> Result<(), T> {
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(v) => value = v,
            }
            loom::thread::yield_now();
        }
    }

    /// Wake the consumer if it is parked — called after control-plane
    /// sends so a drained, parked worker notices checkpoint/sync/shutdown
    /// messages without waiting out its park timeout.
    pub fn wake_consumer(&self) {
        self.ring.wake_consumer();
    }

    /// Approximate occupancy, for gauges and spill accounting.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring currently holds no batches.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

impl<T> Consumer<T> {
    /// Pop without blocking. `None` when the ring is empty.
    pub fn try_pop(&self) -> Option<T> {
        let value = self.ring.pop()?;
        self.ring.wake_producer();
        Some(value)
    }

    /// Park until the producer pushes or wakes us, or `timeout` elapses.
    /// Returns immediately if the ring turns out to be non-empty.
    #[cfg(not(loom))]
    pub fn park(&self, timeout: Duration) {
        let park = &self.ring.park;
        *park.consumer.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(std::thread::current());
        park.consumer_parked.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.ring.is_empty() {
            std::thread::park_timeout(timeout);
        }
        park.consumer_parked.store(false, Ordering::SeqCst);
    }

    /// Loom builds cannot park; yield instead.
    #[cfg(loom)]
    pub fn park(&self, _timeout: Duration) {
        loom::thread::yield_now();
    }

    /// Approximate occupancy.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring currently holds no batches.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (p, _c) = spsc::<u64>(5);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = spsc::<u64>(0);
        assert_eq!(p.capacity(), 2, "floor of two slots");
    }

    #[test]
    fn fifo_order_within_capacity() {
        let (p, c) = spsc(4);
        for i in 0..4u64 {
            p.try_push(i).unwrap();
        }
        assert_eq!(p.try_push(99).unwrap_err(), 99, "full ring rejects");
        for i in 0..4u64 {
            assert_eq!(c.try_pop(), Some(i));
        }
        assert_eq!(c.try_pop(), None, "empty ring yields None");
    }

    #[test]
    fn wraparound_preserves_order() {
        let (p, c) = spsc(2);
        for round in 0..1000u64 {
            p.try_push(round * 2).unwrap();
            p.try_push(round * 2 + 1).unwrap();
            assert_eq!(c.try_pop(), Some(round * 2));
            assert_eq!(c.try_pop(), Some(round * 2 + 1));
        }
    }

    #[test]
    fn push_timeout_expires_on_a_stuck_consumer() {
        let (p, _c) = spsc(2);
        p.try_push(1u64).unwrap();
        p.try_push(2).unwrap();
        let start = Instant::now();
        assert_eq!(p.push_timeout(3, Duration::from_millis(20)).unwrap_err(), 3);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn cross_thread_transfer_with_parking_delivers_everything() {
        const N: u64 = 200_000;
        let (p, c) = spsc(64);
        let consumer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                match c.try_pop() {
                    Some(v) => {
                        assert_eq!(v, next, "strict FIFO");
                        next += 1;
                    }
                    None => c.park(Duration::from_millis(1)),
                }
            }
        });
        for i in 0..N {
            let mut v = i;
            loop {
                match p.try_push(v) {
                    Ok(()) => break,
                    Err(back) => {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        consumer.join().unwrap();
    }

    #[test]
    fn producer_parks_and_resumes_when_consumer_drains() {
        let (p, c) = spsc(2);
        p.try_push(0u64).unwrap();
        p.try_push(1).unwrap();
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            let mut got = Vec::new();
            loop {
                match c.try_pop() {
                    Some(v) => {
                        got.push(v);
                        if got.len() == 3 {
                            return got;
                        }
                    }
                    None => c.park(Duration::from_millis(1)),
                }
            }
        });
        // Blocks until the drainer frees a slot, well inside the timeout.
        p.push_timeout(2, Duration::from_secs(5)).unwrap();
        assert_eq!(drainer.join().unwrap(), vec![0, 1, 2]);
    }
}

/// Loom model of the publish/consume protocol. Run with
/// `RUSTFLAGS="--cfg loom" cargo test -p asketch-parallel --release ring_loom`
/// (requires the `loom` crate to be available to the build).
#[cfg(all(test, loom))]
mod loom_model {
    use super::*;

    #[test]
    fn ring_loom_push_pop_pair() {
        loom::model(|| {
            let (p, c) = spsc::<u64>(2);
            let producer = loom::thread::spawn(move || {
                p.try_push(1).unwrap();
                // The second push may or may not fit depending on the
                // interleaving; both outcomes are legal.
                let _ = p.try_push(2);
            });
            let mut seen = Vec::new();
            while let Some(v) = c.try_pop() {
                seen.push(v);
            }
            producer.join().unwrap();
            while let Some(v) = c.try_pop() {
                seen.push(v);
            }
            // Whatever was published is observed exactly once, in order.
            match seen.len() {
                0 => {}
                1 => assert_eq!(seen, vec![1]),
                2 => assert_eq!(seen, vec![1, 2]),
                n => panic!("impossible pop count {n}"),
            }
        });
    }

    #[test]
    fn ring_loom_wraparound_never_loses_or_duplicates() {
        loom::model(|| {
            let (p, c) = spsc::<u64>(2);
            let producer = loom::thread::spawn(move || {
                let mut next = 0u64;
                while next < 3 {
                    if p.try_push(next).is_ok() {
                        next += 1;
                    } else {
                        loom::thread::yield_now();
                    }
                }
            });
            let mut next_expected = 0u64;
            while next_expected < 3 {
                if let Some(v) = c.try_pop() {
                    assert_eq!(v, next_expected, "FIFO, exactly once");
                    next_expected += 1;
                } else {
                    loom::thread::yield_now();
                }
            }
            producer.join().unwrap();
        });
    }
}
