//! Fault injection for chaos-testing the supervised runtimes.
//!
//! [`FaultyEstimator`] wraps any sketch and injects panics and delays at
//! configurable points, so tests can drive [`crate::PipelineASketch`],
//! [`crate::PipelineHUdaf`], and [`crate::SpmdGroup`] through worker
//! panics, full queues, and estimate timeouts and assert that the
//! one-sided guarantee survives.
//!
//! By default a fault plan *disarms on clone*: checkpoints and restored
//! snapshots are healthy copies, modelling a transient fault rather than a
//! deterministically poisoned sketch. Set
//! [`FaultPlan::rearm_on_clone`] to keep faults armed across snapshots.

use std::time::Duration;

use sketches::traits::{FrequencyEstimator, UpdateEstimate};

/// When and how [`FaultyEstimator`] misbehaves.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Panic on this 1-based counting-op index (`update` /
    /// `update_and_estimate` calls).
    pub panic_on_op: Option<u64>,
    /// Sleep for the given duration every `n`-th counting op (`(n, d)`),
    /// making the worker slow enough to back the forward queue up.
    pub delay_every: Option<(u64, Duration)>,
    /// Sleep before answering every `estimate`, to trigger round-trip
    /// timeouts.
    pub estimate_delay: Option<Duration>,
    /// Panic message used by [`FaultPlan::panic_on_op`].
    pub panic_message: Option<String>,
    /// Keep the plan armed on cloned copies (checkpoints, restored
    /// snapshots). Off by default: faults are transient.
    pub rearm_on_clone: bool,
}

impl FaultPlan {
    /// A plan that panics on the `n`-th counting op.
    pub fn panic_at(n: u64) -> Self {
        Self {
            panic_on_op: Some(n),
            ..Self::default()
        }
    }

    /// A plan that sleeps `delay` on every `every`-th counting op.
    pub fn slow_updates(every: u64, delay: Duration) -> Self {
        Self {
            delay_every: Some((every.max(1), delay)),
            ..Self::default()
        }
    }

    /// A plan that sleeps `delay` before answering every estimate.
    pub fn slow_estimates(delay: Duration) -> Self {
        Self {
            estimate_delay: Some(delay),
            ..Self::default()
        }
    }

    /// Set the panic message (builder style).
    pub fn with_message(mut self, msg: impl Into<String>) -> Self {
        self.panic_message = Some(msg.into());
        self
    }
}

/// A sketch wrapper that injects the faults described by a [`FaultPlan`].
///
/// Implements the counting traits by delegation, so it drops into any
/// place a real sketch fits — including the worker side of a supervised
/// pipeline, which is exactly where the chaos tests put it.
#[derive(Debug)]
pub struct FaultyEstimator<S> {
    inner: S,
    plan: FaultPlan,
    ops: u64,
}

impl<S> FaultyEstimator<S> {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            ops: 0,
        }
    }

    /// The wrapped sketch.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Counting ops observed so far (on this copy).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    fn on_counting_op(&mut self) {
        self.ops += 1;
        if self.plan.panic_on_op == Some(self.ops) {
            let msg = self
                .plan
                .panic_message
                .clone()
                .unwrap_or_else(|| "injected fault".to_string());
            panic!("{msg}");
        }
        if let Some((every, delay)) = self.plan.delay_every {
            if self.ops.is_multiple_of(every) {
                std::thread::sleep(delay);
            }
        }
    }
}

impl<S: Clone> Clone for FaultyEstimator<S> {
    fn clone(&self) -> Self {
        let plan = if self.plan.rearm_on_clone {
            self.plan.clone()
        } else {
            FaultPlan::default()
        };
        Self {
            inner: self.inner.clone(),
            plan,
            ops: self.ops,
        }
    }
}

impl<S: FrequencyEstimator> FrequencyEstimator for FaultyEstimator<S> {
    fn update(&mut self, key: u64, delta: i64) {
        self.on_counting_op();
        self.inner.update(key, delta);
    }

    fn estimate(&self, key: u64) -> i64 {
        if let Some(d) = self.plan.estimate_delay {
            std::thread::sleep(d);
        }
        self.inner.estimate(key)
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

impl<S: UpdateEstimate> UpdateEstimate for FaultyEstimator<S> {
    fn update_and_estimate(&mut self, key: u64, delta: i64) -> i64 {
        self.on_counting_op();
        self.inner.update_and_estimate(key, delta)
    }
}

impl<S: sketches::SharedView> sketches::SharedView for FaultyEstimator<S> {
    type View = S::View;

    fn new_view(&self) -> Self::View {
        self.inner.new_view()
    }

    fn store_view(&self, view: &Self::View) {
        self.inner.store_view(view);
    }

    fn view_estimate(view: &Self::View, key: u64) -> i64 {
        S::view_estimate(view, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches::CountMin;

    fn cms() -> CountMin {
        CountMin::new(9, 4, 1 << 10).unwrap()
    }

    #[test]
    fn delegates_when_healthy() {
        let mut f = FaultyEstimator::new(cms(), FaultPlan::default());
        f.update(1, 5);
        assert_eq!(f.estimate(1), 5);
        assert_eq!(f.update_and_estimate(1, 2), 7);
        assert_eq!(f.ops(), 2);
        assert_eq!(f.size_bytes(), f.inner().size_bytes());
    }

    #[test]
    fn panics_on_exactly_the_nth_op() {
        let mut f = FaultyEstimator::new(cms(), FaultPlan::panic_at(3).with_message("kaboom"));
        f.update(1, 1);
        f.update(1, 1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.update(1, 1);
        }))
        .unwrap_err();
        assert_eq!(
            err.downcast_ref::<String>().map(String::as_str),
            Some("kaboom")
        );
    }

    #[test]
    fn clone_disarms_by_default() {
        let f = FaultyEstimator::new(cms(), FaultPlan::panic_at(1));
        let mut c = f.clone();
        c.update(1, 1); // must not panic
        assert_eq!(c.estimate(1), 1);
    }

    #[test]
    fn clone_can_stay_armed() {
        let mut plan = FaultPlan::panic_at(1);
        plan.rearm_on_clone = true;
        let f = FaultyEstimator::new(cms(), plan);
        let mut c = f.clone();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.update(1, 1);
        }))
        .is_err());
    }

    #[test]
    fn delays_do_not_change_counts() {
        let mut f =
            FaultyEstimator::new(cms(), FaultPlan::slow_updates(2, Duration::from_millis(1)));
        for _ in 0..10 {
            f.update(4, 1);
        }
        assert_eq!(f.estimate(4), 10);
    }
}
