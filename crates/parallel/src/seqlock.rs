//! Seqlock-published filter snapshots: the wait-free reader half of the
//! concurrent runtime.
//!
//! Each shard worker owns an exact ASketch filter (the paper's hot-item
//! cache). Readers must see those exact counts without ever taking a lock
//! or making a writer wait, so the worker periodically *publishes* the
//! filter's items into a [`FilterSnapshot`]: two fixed-shape buffers, each
//! guarded by an even/odd sequence counter, with an `active` index that
//! flips after every publish.
//!
//! # Protocol
//!
//! Writer (single publisher per snapshot — the shard worker; the
//! concurrent runtime enforces this across timeout fail-overs, which can
//! abandon a live worker, with a writer-generation gate on
//! `concurrent::ShardSnapshot`):
//!
//! 1. pick the *inactive* buffer;
//! 2. `seq.store(s + 1)` (odd: publish in progress) then a release fence;
//! 3. overwrite keys/counts/len with relaxed stores;
//! 4. `seq.store(s + 2, Release)` (even again);
//! 5. `active.store(that buffer, Release)` and bump the epoch.
//!
//! Reader:
//!
//! 1. `active.load(Acquire)`, `s1 = seq.load(Acquire)`; retry if odd;
//! 2. relaxed data loads;
//! 3. acquire fence, `s2 = seq.load(Relaxed)`; accept iff `s1 == s2`.
//!
//! Because the writer always publishes into the buffer readers are *not*
//! directed at, a reader's attempt can only fail if a full publish cycle
//! (into the other buffer, then back into this one) completed while the
//! read was in flight — i.e. the reader was suspended across two publish
//! intervals. Readers therefore never block, never spin against an
//! in-progress write in steady state, and never slow the writer down; the
//! rare retry is counted in [`FilterSnapshot::retries`] so benchmarks can
//! assert the path is clean. Built entirely from `std` atomics — no locks,
//! no unsafe.
//!
//! The snapshot is exact for the keys it holds: it stores each filter
//! item's `new_count`, which is precisely what the sequential ASketch's
//! point query answers on a filter hit — so a snapshot hit matches the
//! owner's `estimate` at the publish instant exactly. Keys absent from the
//! snapshot fall through to the sketch's shared view (see
//! `sketches::view`).

#[cfg(loom)]
use loom::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};

use asketch::FilterItem;

/// One seqlock-guarded buffer: parallel key/count arrays plus the live
/// length.
struct Table {
    seq: AtomicU64,
    len: AtomicUsize,
    keys: Box<[AtomicU64]>,
    counts: Box<[AtomicI64]>,
}

impl Table {
    fn new(capacity: usize) -> Self {
        Self {
            seq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            keys: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            counts: (0..capacity).map(|_| AtomicI64::new(0)).collect(),
        }
    }
}

/// A double-buffered, seqlock-published snapshot of a filter's items.
///
/// Single-writer, many-reader. See the module docs for the protocol and
/// the wait-freedom argument.
pub struct FilterSnapshot {
    bufs: [Table; 2],
    /// Which buffer readers should try first.
    active: AtomicUsize,
    /// Ops applied by the owner at the last publish (the staleness clock).
    epoch: AtomicU64,
    /// Reader attempts that had to retry because a publish cycle lapped
    /// them. Diagnostic only.
    retries: AtomicU64,
}

impl FilterSnapshot {
    /// A snapshot able to hold up to `capacity` filter items.
    pub fn new(capacity: usize) -> Self {
        Self {
            bufs: [Table::new(capacity), Table::new(capacity)],
            active: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// Item capacity per buffer.
    pub fn capacity(&self) -> usize {
        self.bufs[0].keys.len()
    }

    /// Publish `items` as the new snapshot, stamping it with `epoch` (the
    /// owner's applied-op count). Items beyond the capacity are dropped —
    /// the runtime sizes the snapshot to the filter, so this only triggers
    /// if a caller under-sizes it deliberately.
    ///
    /// Must only be called from one thread at a time (the owning worker).
    pub fn publish(&self, items: &[FilterItem], epoch: u64) {
        let next = 1 - self.active.load(Ordering::Relaxed);
        let t = &self.bufs[next];
        let s = t.seq.load(Ordering::Relaxed);
        // Odd seq: mark this buffer as mid-publish for any reader that is
        // still directed at it from before the previous flip.
        t.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let n = items.len().min(t.keys.len());
        for (i, item) in items.iter().take(n).enumerate() {
            t.keys[i].store(item.key, Ordering::Relaxed);
            t.counts[i].store(item.new_count, Ordering::Relaxed);
        }
        t.len.store(n, Ordering::Relaxed);
        // Even again: buffer consistent. Release so the data stores above
        // happen-before any reader that acquires this value.
        t.seq.store(s + 2, Ordering::Release);
        self.active.store(next, Ordering::Release);
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Wait-free point lookup: the key's `new_count` at the last publish
    /// (the sequential filter-hit answer), or `None` if the key was not in
    /// the published filter.
    ///
    /// Never blocks and never takes a lock; retries only if an entire
    /// publish cycle completed mid-read (counted in [`retries`](Self::retries)).
    pub fn query(&self, key: u64) -> Option<i64> {
        loop {
            let t = &self.bufs[self.active.load(Ordering::Acquire)];
            let s1 = t.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                // Publisher is mid-write in this buffer (we were directed
                // here just before a flip). The other buffer is complete;
                // reload `active` and go there.
                self.retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let n = t.len.load(Ordering::Relaxed).min(t.keys.len());
            let mut found = None;
            for i in 0..n {
                if t.keys[i].load(Ordering::Relaxed) == key {
                    found = Some(t.counts[i].load(Ordering::Relaxed));
                    break;
                }
            }
            fence(Ordering::Acquire);
            if t.seq.load(Ordering::Relaxed) == s1 {
                return found;
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Wait-free bulk read: copy the entire published table into `out`
    /// (cleared first) under **one** seqlock-stable session, so a batch of
    /// lookups — or a top-k enumeration — pays a single acquire/validate
    /// round instead of one per key. `old_count` is not published, so it
    /// reads back as 0 in every returned item.
    ///
    /// Returns the publish epoch. Like [`query`](Self::query) this never
    /// blocks and never takes a lock; a retry only happens if an entire
    /// publish cycle completed mid-read (counted in
    /// [`retries`](Self::retries)).
    pub fn read_table(&self, out: &mut Vec<FilterItem>) -> u64 {
        loop {
            let t = &self.bufs[self.active.load(Ordering::Acquire)];
            let s1 = t.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            out.clear();
            let n = t.len.load(Ordering::Relaxed).min(t.keys.len());
            for i in 0..n {
                out.push(FilterItem {
                    key: t.keys[i].load(Ordering::Relaxed),
                    new_count: t.counts[i].load(Ordering::Relaxed),
                    old_count: 0,
                });
            }
            fence(Ordering::Acquire);
            if t.seq.load(Ordering::Relaxed) == s1 {
                return self.epoch.load(Ordering::Acquire);
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The owner's applied-op count at the last publish. Readers use this
    /// as the staleness clock: a query answers at least this epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Total reader retries since construction (0 in steady state).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn item(key: u64, pending: i64) -> FilterItem {
        FilterItem {
            key,
            new_count: pending,
            old_count: 0,
        }
    }

    #[test]
    fn empty_snapshot_answers_none() {
        let snap = FilterSnapshot::new(8);
        assert_eq!(snap.query(42), None);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.retries(), 0);
    }

    #[test]
    fn publish_then_query_round_trips() {
        let snap = FilterSnapshot::new(8);
        snap.publish(&[item(1, 10), item(2, 20)], 30);
        assert_eq!(snap.query(1), Some(10));
        assert_eq!(snap.query(2), Some(20));
        assert_eq!(snap.query(3), None);
        assert_eq!(snap.epoch(), 30);
    }

    #[test]
    fn republish_replaces_and_shrinks() {
        let snap = FilterSnapshot::new(8);
        snap.publish(&[item(1, 10), item(2, 20), item(3, 30)], 60);
        snap.publish(&[item(2, 25)], 85);
        assert_eq!(snap.query(2), Some(25));
        // Keys from the older epoch are gone, even though the buffers
        // alternate underneath.
        assert_eq!(snap.query(1), None);
        assert_eq!(snap.query(3), None);
        assert_eq!(snap.epoch(), 85);
    }

    #[test]
    fn over_capacity_publish_truncates() {
        let snap = FilterSnapshot::new(2);
        snap.publish(&[item(1, 1), item(2, 2), item(3, 3)], 6);
        assert_eq!(snap.query(1), Some(1));
        assert_eq!(snap.query(2), Some(2));
        assert_eq!(snap.query(3), None);
    }

    #[test]
    fn new_count_is_published_matching_filter_hits() {
        // Filter hits answer `new_count` in the sequential algorithm; the
        // snapshot must agree, not report the pending delta.
        let snap = FilterSnapshot::new(4);
        snap.publish(
            &[FilterItem {
                key: 9,
                new_count: 100,
                old_count: 40,
            }],
            100,
        );
        assert_eq!(snap.query(9), Some(100));
    }

    #[test]
    fn read_table_returns_the_published_set() {
        let snap = FilterSnapshot::new(8);
        let mut out = vec![item(9, 9)]; // stale contents must be cleared
        assert_eq!(snap.read_table(&mut out), 0);
        assert!(out.is_empty());
        snap.publish(&[item(1, 10), item(2, 20)], 30);
        assert_eq!(snap.read_table(&mut out), 30);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].key, out[0].new_count), (1, 10));
        assert_eq!((out[1].key, out[1].new_count), (2, 20));
        // A republish fully replaces the table.
        snap.publish(&[item(3, 5)], 40);
        snap.read_table(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].key, out[0].new_count), (3, 5));
    }

    #[test]
    fn concurrent_bulk_reads_never_see_torn_tables() {
        // Same invariant as the point-query torn-pair test, but over the
        // whole table through `read_table`: every published state satisfies
        // counts[i] == 10 * keys[i] for all items, so any torn mix of two
        // publishes (different lengths, interleaved rows) is detectable.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let snap = Arc::new(FilterSnapshot::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let snap = Arc::clone(&snap);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut observed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    snap.read_table(&mut buf);
                    for it in &buf {
                        assert_eq!(it.new_count, 10 * it.key as i64, "torn table row {it:?}");
                    }
                    observed += buf.len() as u64;
                }
                observed
            })
        };
        for round in 1..=50_000u64 {
            let items: Vec<FilterItem> = (1..=(1 + round % 7))
                .map(|k| item(k, 10 * k as i64))
                .collect();
            snap.publish(&items, round);
            if round.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0, "reader never saw a table");
    }

    #[test]
    fn concurrent_readers_never_see_torn_pairs() {
        // One writer republishing (k, v) pairs where every published state
        // satisfies counts[i] == 10 * keys[i]; readers assert the invariant
        // on every successful lookup.
        use std::sync::atomic::{AtomicBool, AtomicU64 as SharedCounter};
        use std::sync::Arc;

        let snap = Arc::new(FilterSnapshot::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let observed = Arc::new(SharedCounter::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let snap = Arc::clone(&snap);
                let stop = Arc::clone(&stop);
                let observed = Arc::clone(&observed);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for key in 1..8u64 {
                            if let Some(v) = snap.query(key) {
                                assert_eq!(v, 10 * key as i64, "torn read for key {key}");
                                observed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        // Keep republishing until the readers have actually raced us (a
        // fixed round count can finish before a reader is ever scheduled
        // on a single-core host), with a round cap so it always ends.
        let mut round = 0u64;
        loop {
            round += 1;
            let items: Vec<FilterItem> = (1..=(1 + round % 7))
                .map(|k| item(k, 10 * k as i64))
                .collect();
            snap.publish(&items, round);
            if round.is_multiple_of(1024) {
                std::thread::yield_now();
            }
            if (round >= 20_000 && observed.load(Ordering::Relaxed) >= 100) || round >= 20_000_000 {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert!(
            observed.load(Ordering::Relaxed) > 0,
            "readers never observed a published item"
        );
        assert_eq!(snap.epoch(), round);
    }
}

/// Loom model of the publish/read pair: exhaustively checks that a reader
/// racing one publish either sees the old consistent state or the new one,
/// never a torn mix. Run with
/// `RUSTFLAGS="--cfg loom" cargo test -p asketch-parallel --release seqlock_loom`
/// (requires the `loom` crate to be available to the build).
#[cfg(all(test, loom))]
mod loom_model {
    use super::*;

    #[test]
    fn seqlock_loom_publish_read_pair() {
        loom::model(|| {
            let snap = loom::sync::Arc::new(FilterSnapshot::new(2));
            snap.publish(
                &[FilterItem {
                    key: 1,
                    new_count: 10,
                    old_count: 0,
                }],
                1,
            );
            let reader = {
                let snap = loom::sync::Arc::clone(&snap);
                loom::thread::spawn(move || match snap.query(1) {
                    Some(v) => assert!(v == 10 || v == 20, "torn value {v}"),
                    None => panic!("key must be present in every published state"),
                })
            };
            snap.publish(
                &[FilterItem {
                    key: 1,
                    new_count: 20,
                    old_count: 0,
                }],
                2,
            );
            reader.join().unwrap();
        });
    }
}
