//! Stream generation: seeded Zipf key streams over scrambled key spaces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::permute::KeyPermutation;
use crate::zipf::Zipf;

/// Declarative description of a synthetic stream, mirroring the paper's
/// experiment parameters ("stream size 32M, 8M distinct items, Zipf z").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Total number of tuples (`N` for unit counts).
    pub len: usize,
    /// Number of distinct keys (`M`).
    pub distinct: u64,
    /// Zipf exponent (`z`); 0 = uniform.
    pub skew: f64,
    /// Seed for both the sampler and the key permutation.
    pub seed: u64,
}

impl StreamSpec {
    /// The paper's default synthetic workload shape (32M tuples over 8M
    /// distinct keys), scaled by `scale` (e.g. `1.0/16.0` for quick runs).
    pub fn paper_synthetic(skew: f64, scale: f64, seed: u64) -> Self {
        let len = ((32_000_000.0 * scale) as usize).max(1);
        let distinct = ((8_000_000.0 * scale) as u64).max(1);
        Self {
            len,
            distinct,
            skew,
            seed,
        }
    }

    /// Build the generator for this spec.
    pub fn generator(&self) -> StreamGenerator {
        StreamGenerator::new(self.seed, self.distinct, self.skew)
    }

    /// Materialize the full key stream.
    pub fn materialize(&self) -> Vec<u64> {
        self.generator().take_keys(self.len)
    }
}

/// An infinite stream of keys drawn i.i.d. from a Zipf distribution over a
/// scrambled key domain.
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    zipf: Zipf,
    perm: KeyPermutation,
    rng: StdRng,
}

impl StreamGenerator {
    /// Create a generator over `distinct` keys with exponent `skew`.
    pub fn new(seed: u64, distinct: u64, skew: f64) -> Self {
        Self {
            zipf: Zipf::new(distinct, skew),
            perm: KeyPermutation::new(seed ^ 0xA5A5_5A5A_F00D_CAFE, distinct),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Replace the sampling RNG while keeping the rank→key permutation.
    ///
    /// Query workloads use this to draw *fresh* samples from the same item
    /// distribution without replaying the data stream.
    pub fn reseed_sampler(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Draw the next key.
    #[inline]
    pub fn next_key(&mut self) -> u64 {
        let rank = self.zipf.sample(&mut self.rng);
        self.perm.permute(rank - 1)
    }

    /// The key corresponding to frequency rank `rank` (1 = heaviest).
    /// Lets tests and experiments identify the true heavy hitters without
    /// counting the stream.
    #[inline]
    pub fn key_of_rank(&self, rank: u64) -> u64 {
        self.perm.permute(rank - 1)
    }

    /// Theoretical probability mass of the top `k` ranks; the complement of
    /// the paper's filter selectivity for a perfect size-`k` filter.
    #[inline]
    pub fn top_mass(&self, k: u64) -> f64 {
        self.zipf.top_mass(k)
    }

    /// Materialize `n` keys.
    pub fn take_keys(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_key()).collect()
    }

    /// Materialize `n` unit-count tuples.
    pub fn take_tuples(&mut self, n: usize) -> Vec<(u64, i64)> {
        (0..n).map(|_| (self.next_key(), 1)).collect()
    }
}

impl Iterator for StreamGenerator {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        Some(self.next_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let spec = StreamSpec {
            len: 1000,
            distinct: 100,
            skew: 1.2,
            seed: 3,
        };
        assert_eq!(spec.materialize(), spec.materialize());
        let other = StreamSpec { seed: 4, ..spec };
        assert_ne!(spec.materialize(), other.materialize());
    }

    #[test]
    fn keys_within_domain() {
        let mut g = StreamGenerator::new(1, 500, 1.0);
        for _ in 0..5_000 {
            assert!(g.next_key() < 500);
        }
    }

    #[test]
    fn rank_one_is_the_mode() {
        let mut g = StreamGenerator::new(9, 10_000, 1.5);
        let heavy = g.key_of_rank(1);
        let keys = g.take_keys(20_000);
        let heavy_count = keys.iter().filter(|&&k| k == heavy).count();
        let mut counts = std::collections::HashMap::new();
        for k in &keys {
            *counts.entry(*k).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert_eq!(heavy_count, max, "rank-1 key must be the most frequent");
    }

    #[test]
    fn paper_synthetic_scales() {
        let full = StreamSpec::paper_synthetic(1.5, 1.0, 0);
        assert_eq!(full.len, 32_000_000);
        assert_eq!(full.distinct, 8_000_000);
        let small = StreamSpec::paper_synthetic(1.5, 1.0 / 16.0, 0);
        assert_eq!(small.len, 2_000_000);
        assert_eq!(small.distinct, 500_000);
    }

    #[test]
    fn tuples_carry_unit_counts() {
        let mut g = StreamGenerator::new(2, 10, 0.5);
        for (_, u) in g.take_tuples(100) {
            assert_eq!(u, 1);
        }
    }

    #[test]
    fn iterator_interface() {
        let g = StreamGenerator::new(5, 50, 1.0);
        let v: Vec<u64> = g.take(10).collect();
        assert_eq!(v.len(), 10);
    }
}
