//! Loading real trace files.
//!
//! The paper's real datasets (the LAN packet trace and the Kosarak click
//! stream) are replaced by synthetic surrogates in this reproduction
//! (DESIGN.md §3). Users who *do* have the original files — Kosarak is
//! public at `http://fimi.ua.ac.be/data/` — can feed them through this
//! loader and run every experiment on the real distribution.
//!
//! Two formats are supported, covering both datasets:
//!
//! * **item streams** — one or more unsigned integer keys per line,
//!   whitespace-separated (the FIMI format: each Kosarak line is one
//!   click session; every item on the line is one stream tuple);
//! * **edge streams** — two integers per line (`src dst`), combined into
//!   a single 64-bit edge key as the paper does for IP pairs.

use std::io::BufRead;
use std::path::Path;

/// Errors raised while parsing a trace file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A token failed to parse as an unsigned integer.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// An edge line did not contain exactly two fields.
    BadEdge {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "trace I/O error: {e}"),
            LoadError::Parse { line, token } => {
                write!(
                    f,
                    "line {line}: cannot parse {token:?} as an unsigned integer"
                )
            }
            LoadError::BadEdge { line } => {
                write!(f, "line {line}: expected exactly two fields for an edge")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parse an item stream from a reader: every whitespace-separated integer
/// is one stream tuple. Empty lines and `#`-prefixed comment lines are
/// skipped.
///
/// # Errors
/// Returns [`LoadError`] on I/O failures or malformed tokens.
pub fn read_item_stream<R: BufRead>(reader: R) -> Result<Vec<u64>, LoadError> {
    let mut keys = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        for token in trimmed.split_ascii_whitespace() {
            let key = token.parse::<u64>().map_err(|_| LoadError::Parse {
                line: i + 1,
                token: token.to_string(),
            })?;
            keys.push(key);
        }
    }
    Ok(keys)
}

/// Parse an edge stream from a reader: each non-empty line carries
/// `src dst`; the tuple key is `src << 32 | (dst & 0xffff_ffff)`, the
/// pairing the paper uses for IP-address edges.
///
/// # Errors
/// Returns [`LoadError`] on I/O failures, malformed tokens, or lines
/// without exactly two fields.
pub fn read_edge_stream<R: BufRead>(reader: R) -> Result<Vec<u64>, LoadError> {
    let mut keys = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_ascii_whitespace();
        let (a, b) = match (fields.next(), fields.next(), fields.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => return Err(LoadError::BadEdge { line: i + 1 }),
        };
        let src = a.parse::<u64>().map_err(|_| LoadError::Parse {
            line: i + 1,
            token: a.to_string(),
        })?;
        let dst = b.parse::<u64>().map_err(|_| LoadError::Parse {
            line: i + 1,
            token: b.to_string(),
        })?;
        keys.push((src << 32) | (dst & 0xffff_ffff));
    }
    Ok(keys)
}

/// Load an item stream from a file (see [`read_item_stream`]).
///
/// # Errors
/// Returns [`LoadError`] on I/O or parse failures.
pub fn load_item_stream(path: impl AsRef<Path>) -> Result<Vec<u64>, LoadError> {
    let file = std::fs::File::open(path)?;
    read_item_stream(std::io::BufReader::new(file))
}

/// Load an edge stream from a file (see [`read_edge_stream`]).
///
/// # Errors
/// Returns [`LoadError`] on I/O or parse failures.
pub fn load_edge_stream(path: impl AsRef<Path>) -> Result<Vec<u64>, LoadError> {
    let file = std::fs::File::open(path)?;
    read_edge_stream(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_parse_fimi_format() {
        let data = "1 2 3\n\n# comment\n2 2\n7\n";
        let keys = read_item_stream(data.as_bytes()).unwrap();
        assert_eq!(keys, vec![1, 2, 3, 2, 2, 7]);
    }

    #[test]
    fn items_reject_garbage() {
        let err = read_item_stream("1 x 3\n".as_bytes()).unwrap_err();
        match err {
            LoadError::Parse { line, token } => {
                assert_eq!(line, 1);
                assert_eq!(token, "x");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn edges_pack_src_dst() {
        let keys = read_edge_stream("1 2\n3 4\n".as_bytes()).unwrap();
        assert_eq!(keys, vec![(1 << 32) | 2, (3 << 32) | 4]);
    }

    #[test]
    fn edges_reject_wrong_arity() {
        assert!(matches!(
            read_edge_stream("1 2 3\n".as_bytes()).unwrap_err(),
            LoadError::BadEdge { line: 1 }
        ));
        assert!(matches!(
            read_edge_stream("1\n".as_bytes()).unwrap_err(),
            LoadError::BadEdge { line: 1 }
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("asketch_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("items.txt");
        std::fs::write(&path, "5 6\n7\n").unwrap();
        assert_eq!(load_item_stream(&path).unwrap(), vec![5, 6, 7]);
        assert!(load_item_stream(dir.join("missing.txt")).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = LoadError::Parse {
            line: 3,
            token: "abc".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = LoadError::BadEdge { line: 9 };
        assert!(e.to_string().contains("two fields"));
    }
}
