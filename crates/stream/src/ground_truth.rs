//! Exact frequency counting for evaluation.
//!
//! Every accuracy metric in the paper (observed error, average relative
//! error, misclassification, precision-at-k) compares sketch estimates
//! against true frequencies; this module provides those truths.

use serde::{Deserialize, Serialize};
use sketches::fast_map::FxHashMap;

/// An exact `key -> count` table built in one pass over the stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactCounter {
    counts: FxHashMap<u64, i64>,
    total: i64,
}

impl ExactCounter {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count every key in `keys` with unit weight.
    pub fn from_keys(keys: &[u64]) -> Self {
        let mut c = Self::new();
        for &k in keys {
            c.add(k, 1);
        }
        c
    }

    /// Add `delta` to `key`.
    #[inline]
    pub fn add(&mut self, key: u64, delta: i64) {
        *self.counts.entry(key).or_insert(0) += delta;
        self.total += delta;
    }

    /// True count of `key` (0 if unseen).
    #[inline]
    pub fn count(&self, key: u64) -> i64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Aggregate count over all keys (`N` in the paper).
    #[inline]
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Number of distinct keys observed.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The true top-`k` keys by count, heaviest first (ties broken by key
    /// for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        let mut v: Vec<(u64, i64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// The true count of the `k`-th heaviest key (the heavy-hitter
    /// threshold used by misclassification analysis). Returns 0 when fewer
    /// than `k` keys exist.
    pub fn kth_count(&self, k: usize) -> i64 {
        self.top_k(k).last().map_or(0, |&(_, c)| c)
    }

    /// Iterate over `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let c = ExactCounter::from_keys(&[1, 2, 2, 3, 3, 3]);
        assert_eq!(c.count(1), 1);
        assert_eq!(c.count(2), 2);
        assert_eq!(c.count(3), 3);
        assert_eq!(c.count(99), 0);
        assert_eq!(c.total(), 6);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn top_k_ordering_and_threshold() {
        let c = ExactCounter::from_keys(&[5, 5, 5, 7, 7, 9]);
        assert_eq!(c.top_k(2), vec![(5, 3), (7, 2)]);
        assert_eq!(c.kth_count(2), 2);
        assert_eq!(c.kth_count(10), 1, "fewer keys than k: lightest count");
    }

    #[test]
    fn kth_count_empty() {
        let c = ExactCounter::new();
        assert_eq!(c.kth_count(3), 0);
    }

    #[test]
    fn negative_deltas() {
        let mut c = ExactCounter::new();
        c.add(1, 5);
        c.add(1, -2);
        assert_eq!(c.count(1), 3);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn tie_break_deterministic() {
        let c = ExactCounter::from_keys(&[4, 2, 8, 6]);
        assert_eq!(c.top_k(4), vec![(2, 1), (4, 1), (6, 1), (8, 1)]);
    }
}
