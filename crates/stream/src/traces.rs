//! Surrogates for the paper's real-world datasets.
//!
//! We do not have the proprietary IP-packet LAN trace or a copy of the
//! Kosarak click log, so we build *synthetic equivalents* matched on every
//! property the paper reports about them (stream size, distinct-item count,
//! and Zipf skew). All ASketch-relevant behaviour — filter selectivity,
//! exchange rate, heavy-hitter concentration, error profile — is a function
//! of exactly those properties, which is why the substitution preserves the
//! evaluation's shape (see DESIGN.md §3).

use serde::{Deserialize, Serialize};

use crate::generator::StreamSpec;

/// A named real-world-surrogate workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Human-readable dataset name.
    pub name: &'static str,
    /// The stream shape.
    pub spec: StreamSpec,
    /// What the paper reports for the real dataset, for EXPERIMENTS.md.
    pub paper_len: usize,
    /// Distinct count the paper reports.
    pub paper_distinct: u64,
}

/// IP-trace surrogate: the paper's LAN packet trace carried 461 M tuples
/// over 13 M distinct IP-pair edges with skew "similar to Zipf 0.9".
///
/// `scale` shrinks both the stream and the key domain proportionally
/// (e.g. `0.01` ⇒ 4.61 M tuples over 130 K edges).
pub fn ip_trace_like(seed: u64, scale: f64) -> TraceSpec {
    TraceSpec {
        name: "IP-trace (synthetic surrogate, Zipf 0.9)",
        spec: StreamSpec {
            len: ((461_000_000.0 * scale) as usize).max(1),
            distinct: ((13_000_000.0 * scale) as u64).max(1),
            skew: 0.9,
            seed,
        },
        paper_len: 461_000_000,
        paper_distinct: 13_000_000,
    }
}

/// Kosarak surrogate: 8 M clicks over 40 270 distinct items, skew "similar
/// to Zipf 1.0". The distinct-item count is *not* scaled — it is small and
/// is itself a defining property of the dataset.
pub fn kosarak_like(seed: u64, scale: f64) -> TraceSpec {
    TraceSpec {
        name: "Kosarak click stream (synthetic surrogate, Zipf 1.0)",
        spec: StreamSpec {
            len: ((8_000_000.0 * scale) as usize).max(1),
            distinct: 40_270,
            skew: 1.0,
            seed,
        },
        paper_len: 8_000_000,
        paper_distinct: 40_270,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::ExactCounter;

    #[test]
    fn ip_trace_scaling() {
        let t = ip_trace_like(1, 0.01);
        assert_eq!(t.spec.len, 4_610_000);
        assert_eq!(t.spec.distinct, 130_000);
        assert!((t.spec.skew - 0.9).abs() < 1e-12);
    }

    #[test]
    fn kosarak_distinct_not_scaled() {
        let t = kosarak_like(1, 0.1);
        assert_eq!(t.spec.len, 800_000);
        assert_eq!(t.spec.distinct, 40_270);
    }

    #[test]
    fn kosarak_surrogate_is_heavy_tailed() {
        // A Zipf-1.0 stream over 40 k items concentrates a visible share of
        // mass on the top item, echoing the real Kosarak max frequency
        // (601 374 of 8 M ≈ 7.5%).
        let t = kosarak_like(7, 0.02); // 160 k tuples
        let keys = t.spec.materialize();
        let truth = ExactCounter::from_keys(&keys);
        let top_share = truth.top_k(1)[0].1 as f64 / truth.total() as f64;
        assert!(
            (0.03..0.20).contains(&top_share),
            "top-item share {top_share:.3} outside plausible Zipf-1.0 band"
        );
    }
}
