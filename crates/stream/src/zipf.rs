//! Zipf-distributed rank sampling by rejection-inversion.
//!
//! The paper's synthetic workloads draw items from a Zipf distribution with
//! skew `z ∈ [0, 3]` over `M` distinct items: rank `k` has probability
//! proportional to `k^-z`. We implement Hörmann & Derflinger's
//! *rejection-inversion* sampler, which is O(1) per sample with no
//! precomputed tables — essential because the experiments sweep skews over
//! domains of millions of items.
//!
//! `z = 0` (the uniform case, the left edge of the paper's Figures 3/5/9)
//! is special-cased to a direct uniform draw.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Zipf sampler over ranks `1..=n` with exponent `z >= 0`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zipf {
    n: u64,
    z: f64,
    /// `H(n + 1/2)` — upper end of the inversion domain.
    hxm: f64,
    /// `H(1/2) - 1` — lower end of the inversion domain.
    hx0: f64,
    /// Shift constant for the fast acceptance test.
    s: f64,
}

impl Zipf {
    /// Create a sampler over `1..=n` with exponent `z`.
    ///
    /// # Panics
    /// Panics when `n == 0`, or when `z` is negative or non-finite.
    pub fn new(n: u64, z: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            z.is_finite() && z >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        if z == 0.0 {
            // Values below are unused on the uniform path.
            return Self {
                n,
                z,
                hxm: 0.0,
                hx0: 0.0,
                s: 0.0,
            };
        }
        let hxm = h(z, n as f64 + 0.5);
        let hx0 = h(z, 0.5) - 1.0;
        let s = 1.0 - h_inv(z, h(z, 1.5) - 2f64.powf(-z));
        Self { n, z, hxm, hx0, s }
    }

    /// Number of distinct ranks.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    #[inline]
    pub fn exponent(&self) -> f64 {
        self.z
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.z == 0.0 {
            return rng.gen_range(1..=self.n);
        }
        loop {
            let u = self.hx0 + rng.gen::<f64>() * (self.hxm - self.hx0);
            let x = h_inv(self.z, u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // Fast acceptance: within the shift band around the inverse.
            if k - x <= self.s {
                return k as u64;
            }
            // Exact acceptance test.
            if u >= h(self.z, k + 0.5) - k.powf(-self.z) {
                return k as u64;
            }
        }
    }

    /// Theoretical probability of rank `k` (1-based).
    pub fn probability(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n, "rank out of domain");
        (k as f64).powf(-self.z) / harmonic(self.n, self.z)
    }

    /// Cumulative probability of the top `k` ranks:
    /// `Σ_{i<=k} i^-z / Σ_{i<=n} i^-z`.
    ///
    /// This is exactly the complement of the paper's *filter selectivity*
    /// (`N2/N = 1 - top_mass(|F|)`) for a filter holding the true top-`k`.
    pub fn top_mass(&self, k: u64) -> f64 {
        let k = k.min(self.n);
        harmonic(k, self.z) / harmonic(self.n, self.z)
    }
}

/// The integral `H(x) = ∫ x^-z dx`, normalized so `H_inv` is its inverse.
#[inline]
fn h(z: f64, x: f64) -> f64 {
    if (z - 1.0).abs() < 1e-12 {
        x.ln()
    } else {
        (x.powf(1.0 - z) - 1.0) / (1.0 - z)
    }
}

#[inline]
fn h_inv(z: f64, y: f64) -> f64 {
    if (z - 1.0).abs() < 1e-12 {
        y.exp()
    } else {
        (1.0 + (1.0 - z) * y).powf(1.0 / (1.0 - z))
    }
}

/// Generalized harmonic number `H_{n,z} = Σ_{i=1..n} i^-z`.
///
/// Computed exactly for small `n`; for large `n` the tail is approximated
/// with the Euler–Maclaurin integral term, which is accurate to ~1e-10 for
/// the cut-over used here.
pub fn harmonic(n: u64, z: f64) -> f64 {
    const EXACT_CUTOFF: u64 = 100_000;
    if n <= EXACT_CUTOFF {
        return (1..=n).map(|i| (i as f64).powf(-z)).sum();
    }
    let head: f64 = (1..=EXACT_CUTOFF).map(|i| (i as f64).powf(-z)).sum();
    let a = EXACT_CUTOFF as f64;
    let b = n as f64;
    // Euler–Maclaurin: ∫_a^b x^-z dx + (f(a)+f(b))/2 + (f'(b)-f'(a))/12,
    // with the head sum already including f(a) — subtract half of it back.
    let integral = if (z - 1.0).abs() < 1e-12 {
        (b / a).ln()
    } else {
        (b.powf(1.0 - z) - a.powf(1.0 - z)) / (1.0 - z)
    };
    let correction =
        (b.powf(-z) - a.powf(-z)) / 2.0 + z * (a.powf(-z - 1.0) - b.powf(-z - 1.0)) / 12.0;
    head + integral + correction
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be finite")]
    fn negative_exponent_panics() {
        let _ = Zipf::new(10, -0.5);
    }

    #[test]
    fn samples_stay_in_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        for z in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            for n in [1u64, 2, 10, 1_000_000] {
                let zipf = Zipf::new(n, z);
                for _ in 0..2_000 {
                    let k = zipf.sample(&mut rng);
                    assert!((1..=n).contains(&k), "z={z} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn single_element_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let zipf = Zipf::new(1, 2.0);
        for _ in 0..10 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
        assert!((zipf.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_matches_theory() {
        // Top ranks carry most mass at high skew; compare empirical
        // frequencies of ranks 1..=5 against theory within a few percent.
        let mut rng = StdRng::seed_from_u64(7);
        for z in [0.8, 1.0, 1.5, 2.5] {
            let n = 100_000u64;
            let zipf = Zipf::new(n, z);
            let samples = 200_000;
            let mut counts = [0u64; 6];
            for _ in 0..samples {
                let k = zipf.sample(&mut rng);
                if k <= 5 {
                    counts[k as usize] += 1;
                }
            }
            for k in 1..=5u64 {
                let emp = counts[k as usize] as f64 / samples as f64;
                let theo = zipf.probability(k);
                assert!(
                    (emp - theo).abs() < theo * 0.08 + 0.002,
                    "z={z} rank {k}: empirical {emp:.4} vs theoretical {theo:.4}"
                );
            }
        }
    }

    #[test]
    fn uniform_case_is_flat() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 64u64;
        let zipf = Zipf::new(n, 0.0);
        let mut counts = vec![0u64; n as usize + 1];
        let samples = 128_000;
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let mean = samples as f64 / n as f64;
        for k in 1..=n {
            let dev = (counts[k as usize] as f64 - mean).abs() / mean;
            assert!(dev < 0.15, "rank {k} deviates {dev:.3}");
        }
    }

    #[test]
    fn harmonic_exact_small() {
        assert!((harmonic(1, 2.0) - 1.0).abs() < 1e-12);
        assert!((harmonic(3, 1.0) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((harmonic(4, 0.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_large_matches_brute_force() {
        // Exercise the Euler–Maclaurin branch against a brute-force sum just
        // above the cutoff.
        for z in [0.5, 1.0, 1.5] {
            let n = 150_000u64;
            let brute: f64 = (1..=n).map(|i| (i as f64).powf(-z)).sum();
            let fast = harmonic(n, z);
            assert!(
                (brute - fast).abs() / brute < 1e-9,
                "z={z}: {brute} vs {fast}"
            );
        }
    }

    #[test]
    fn top_mass_monotone_and_bounded() {
        let zipf = Zipf::new(1_000_000, 1.5);
        let mut prev = 0.0;
        for k in [1u64, 8, 32, 64, 128, 1_000_000] {
            let m = zipf.top_mass(k);
            assert!(m >= prev && m <= 1.0 + 1e-9, "k={k} m={m}");
            prev = m;
        }
        assert!((zipf.top_mass(1_000_000) - 1.0).abs() < 1e-9);
        // Paper §4: at z=1.5 the top-32 items cover ≈80% of all counts.
        let m32 = Zipf::new(8_000_000, 1.5).top_mass(32);
        assert!(
            (0.72..0.88).contains(&m32),
            "top-32 mass at z=1.5 was {m32}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let zipf = Zipf::new(1000, 1.2);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..50).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..50).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
