//! Exact pseudorandom permutations of `[0, m)`.
//!
//! Zipf sampling produces *ranks* (1 = most frequent). Feeding ranks
//! directly into sketches would correlate key values with frequency and
//! hand linear hash families an artificially easy (or pathological) input.
//! Real keys (IP pairs, URLs, click ids) are unordered, so we map rank
//! `r → key` through a seeded random bijection of `[0, m)`.
//!
//! The bijection is a 4-round Feistel network on `ceil(log2 m)` bits with
//! *cycle-walking*: a Feistel output outside `[0, m)` is fed back through
//! the network until it lands inside, which preserves bijectivity exactly.

use serde::{Deserialize, Serialize};

/// A seeded bijection of `[0, m)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeyPermutation {
    m: u64,
    /// Bits in each Feistel half.
    half_bits: u32,
    round_keys: [u64; 4],
}

/// SplitMix64-style mixing used as the Feistel round function.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl KeyPermutation {
    /// Create a permutation of `[0, m)` derived from `seed`.
    ///
    /// # Panics
    /// Panics when `m == 0`.
    pub fn new(seed: u64, m: u64) -> Self {
        assert!(m > 0, "permutation domain must be non-empty");
        // Round the bit width up to an even count so the Feistel halves are
        // balanced; cycle-walking absorbs the overshoot.
        let bits = (64 - (m - 1).leading_zeros()).max(2);
        let half_bits = bits.div_ceil(2);
        let mut s = seed;
        let round_keys = std::array::from_fn(|_| {
            s = mix(s);
            s
        });
        Self {
            m,
            half_bits,
            round_keys,
        }
    }

    /// Domain size.
    #[inline]
    pub fn domain(&self) -> u64 {
        self.m
    }

    #[inline]
    fn feistel(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut l = (x >> self.half_bits) & mask;
        let mut r = x & mask;
        for &k in &self.round_keys {
            let f = mix(r ^ k) & mask;
            (l, r) = (r, l ^ f);
        }
        (l << self.half_bits) | r
    }

    /// Map `x` (must be `< m`) to its image under the permutation.
    ///
    /// # Panics
    /// Panics in debug builds when `x >= m`.
    #[inline]
    pub fn permute(&self, x: u64) -> u64 {
        debug_assert!(x < self.m, "input {x} outside domain {}", self.m);
        let mut y = self.feistel(x);
        // Cycle-walk: the Feistel domain is the next power of four, at most
        // 4m, so the expected number of extra steps is < 3.
        while y >= self.m {
            y = self.feistel(y);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn zero_domain_panics() {
        let _ = KeyPermutation::new(1, 0);
    }

    #[test]
    fn is_a_bijection() {
        for m in [1u64, 2, 3, 7, 64, 1000, 4097] {
            let perm = KeyPermutation::new(42, m);
            let mut seen = vec![false; m as usize];
            for x in 0..m {
                let y = perm.permute(x);
                assert!(y < m, "m={m}: image {y} outside domain");
                assert!(!seen[y as usize], "m={m}: duplicate image {y}");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = KeyPermutation::new(5, 1000);
        let b = KeyPermutation::new(5, 1000);
        let c = KeyPermutation::new(6, 1000);
        let mut differs = false;
        for x in 0..1000 {
            assert_eq!(a.permute(x), b.permute(x));
            differs |= a.permute(x) != c.permute(x);
        }
        assert!(
            differs,
            "different seeds should give different permutations"
        );
    }

    #[test]
    fn scrambles_order() {
        // The permutation should not preserve rank order: count how many of
        // the first 100 inputs map into the first 100 outputs.
        let m = 1_000_000u64;
        let perm = KeyPermutation::new(123, m);
        let low_to_low = (0..100).filter(|&x| perm.permute(x) < 100).count();
        assert!(low_to_low <= 2, "permutation too orderly: {low_to_low}");
    }

    #[test]
    fn large_domain_spot_check() {
        let m = 1u64 << 40;
        let perm = KeyPermutation::new(77, m);
        let mut seen = std::collections::HashSet::new();
        for x in (0..1_000_000u64).step_by(997) {
            let y = perm.permute(x);
            assert!(y < m);
            assert!(seen.insert(y), "collision in large-domain spot check");
        }
    }
}
