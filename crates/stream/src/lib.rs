//! # streamgen — workload substrate for the ASketch reproduction
//!
//! Seeded, reproducible stream workloads:
//!
//! * [`zipf::Zipf`] — O(1) rejection-inversion Zipf sampling plus the
//!   closed-form harmonic sums the paper's analysis (§4) relies on.
//! * [`permute::KeyPermutation`] — exact Feistel bijections that scramble
//!   rank order into realistic key values.
//! * [`generator::StreamGenerator`] / [`generator::StreamSpec`] — the
//!   synthetic streams of §7.1 ("stream size 32M, 8M distinct, Zipf z").
//! * [`traces`] — surrogates for the IP-trace and Kosarak datasets.
//! * [`ground_truth::ExactCounter`] — exact counts for accuracy metrics.
//! * [`query`] — frequency-proportional and uniform query workloads.
//!
//! ## Example
//!
//! ```
//! use streamgen::generator::StreamSpec;
//! use streamgen::ground_truth::ExactCounter;
//!
//! let spec = StreamSpec { len: 10_000, distinct: 1_000, skew: 1.5, seed: 42 };
//! let keys = spec.materialize();
//! let truth = ExactCounter::from_keys(&keys);
//! assert_eq!(truth.total(), 10_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod ground_truth;
pub mod loader;
pub mod permute;
pub mod query;
pub mod traces;
pub mod zipf;

pub use generator::{StreamGenerator, StreamSpec};
pub use ground_truth::ExactCounter;
pub use permute::KeyPermutation;
pub use zipf::Zipf;
