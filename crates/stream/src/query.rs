//! Query-workload generation.
//!
//! The paper evaluates frequency-estimation queries "obtained by sampling
//! the data items based on their frequencies, that is, the high-frequency
//! items are queried more than the low-frequency items" (§7.1). Drawing
//! fresh keys from the stream's own distribution realizes exactly that.
//! A uniform-over-distinct-keys workload is also provided for the
//! low-frequency-accuracy analyses (Appendix B.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::StreamGenerator;
use crate::permute::KeyPermutation;

/// Draw `n` query keys proportionally to their stream frequency: fresh
/// draws from the same seeded distribution family (a distinct RNG stream so
/// queries are not simply a replay of the data).
pub fn frequency_proportional(seed: u64, distinct: u64, skew: f64, n: usize) -> Vec<u64> {
    // The permutation seed must match the data generator's so query keys
    // name the same items; only the sampling RNG differs.
    let mut g = StreamGenerator::new(seed, distinct, skew);
    g.reseed_sampler(seed ^ 0x5EED_5EED_5EED_5EED);
    g.take_keys(n)
}

/// Draw `n` query keys uniformly over the distinct-key domain (every item
/// equally likely regardless of frequency).
pub fn uniform_over_domain(seed: u64, distinct: u64, n: usize) -> Vec<u64> {
    let perm = KeyPermutation::new(seed ^ 0xA5A5_5A5A_F00D_CAFE, distinct);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0DD5_EEDF_ACE5_0FF5);
    (0..n)
        .map(|_| perm.permute(rng.gen_range(0..distinct)))
        .collect()
}

/// Draw `n` query keys by sampling positions of an already-materialized
/// stream (exactly frequency-proportional with respect to the realized
/// stream rather than the generating distribution).
pub fn sample_from_stream(seed: u64, stream: &[u64], n: usize) -> Vec<u64> {
    assert!(
        !stream.is_empty(),
        "cannot sample queries from an empty stream"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBADC_0FFE_E0DD_F00D);
    (0..n)
        .map(|_| stream[rng.gen_range(0..stream.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::ExactCounter;

    #[test]
    fn proportional_queries_favor_heavy_keys() {
        let distinct = 10_000u64;
        let skew = 1.5;
        let g = StreamGenerator::new(1, distinct, skew);
        let heavy = g.key_of_rank(1);
        let queries = frequency_proportional(1, distinct, skew, 20_000);
        let truth = ExactCounter::from_keys(&queries);
        assert_eq!(
            truth.top_k(1)[0].0,
            heavy,
            "rank-1 key must dominate the query workload"
        );
    }

    #[test]
    fn uniform_queries_cover_domain_evenly() {
        let distinct = 100u64;
        let queries = uniform_over_domain(7, distinct, 50_000);
        let truth = ExactCounter::from_keys(&queries);
        assert!(truth.distinct() == distinct as usize);
        let (max_k, max_c) = truth.top_k(1)[0];
        let mean = 50_000.0 / distinct as f64;
        assert!(
            (max_c as f64) < mean * 1.4,
            "key {max_k} queried {max_c} times, far above mean {mean}"
        );
    }

    #[test]
    fn stream_sampling_matches_stream_support() {
        let stream = vec![1u64, 1, 1, 2];
        let queries = sample_from_stream(3, &stream, 1000);
        assert!(queries.iter().all(|k| *k == 1 || *k == 2));
        let ones = queries.iter().filter(|&&k| k == 1).count();
        assert!(
            ones > 600,
            "key 1 holds 75% of stream mass, sampled {ones}/1000"
        );
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn sampling_empty_stream_panics() {
        let _ = sample_from_stream(1, &[], 10);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            frequency_proportional(5, 1000, 1.0, 100),
            frequency_proportional(5, 1000, 1.0, 100)
        );
        assert_eq!(
            uniform_over_domain(5, 1000, 100),
            uniform_over_domain(5, 1000, 100)
        );
    }
}
