//! Binary state codec for sketch persistence: the [`Persist`] trait plus
//! the little-endian reader/writer primitives it is built from.
//!
//! The durability layer (crate `asketch-durable`) frames these payloads
//! with magic numbers, versions, and CRC32C checksums; this module owns
//! only the *state bytes* themselves. Every implementation follows the
//! same discipline:
//!
//! * a leading per-type tag (4 bytes) so a payload decoded as the wrong
//!   type fails loudly instead of producing garbage counters;
//! * construction parameters (seed + dimensions) first, so the decoder
//!   can rebuild the deterministic hash machinery via the type's own
//!   `new`, then the raw counter state verbatim;
//! * counters are widened to `i64` on the wire regardless of the cell
//!   width, with a cell-width byte in the payload so a 32-bit snapshot is
//!   never silently loaded into a 64-bit sketch (or vice versa).
//!
//! Round-tripping is *bitwise-exact* for estimates: the decoder rebuilds
//! the identical hash functions from the stored seed and copies the cell
//! arrays in their internal order.

use crate::SketchError;

/// Typed decode failures. Every corrupt, truncated, or mistyped payload
/// surfaces as one of these — never as silently wrong counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The payload ended before `what` could be read.
    Truncated {
        /// Which field ran out of bytes.
        what: &'static str,
    },
    /// A structurally invalid payload (bad tag, impossible length, value
    /// out of domain).
    Corrupt {
        /// Human-readable description of the violation.
        what: String,
    },
    /// The payload is for a different type or cell width than requested.
    WrongType {
        /// What the decoder expected to find.
        expected: &'static str,
        /// The tag actually present.
        found: u32,
    },
    /// The stored construction parameters were rejected by the type's own
    /// constructor.
    Invalid(SketchError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated { what } => {
                write!(f, "persisted state truncated while reading {what}")
            }
            PersistError::Corrupt { what } => write!(f, "persisted state corrupt: {what}"),
            PersistError::WrongType { expected, found } => {
                write!(
                    f,
                    "persisted state is not a {expected} (found tag {found:#010x})"
                )
            }
            PersistError::Invalid(e) => write!(f, "persisted parameters rejected: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SketchError> for PersistError {
    fn from(e: SketchError) -> Self {
        PersistError::Invalid(e)
    }
}

/// Append a `u8` to `out`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32` to `out`.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64` to `out`.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64` to `out`.
#[inline]
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a persisted payload with typed, bounds-checked reads.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read a `u64` length/count field and narrow it to `usize`, rejecting
    /// values that could not possibly describe in-memory state (anything
    /// larger than the bytes left in the payload is corrupt, since every
    /// counted element occupies at least one byte).
    pub fn len(&mut self, what: &'static str) -> Result<usize, PersistError> {
        let v = self.u64(what)?;
        if v > self.remaining() as u64 {
            return Err(PersistError::Corrupt {
                what: format!("{what} = {v} exceeds payload size"),
            });
        }
        Ok(v as usize)
    }
}

/// Read and verify a leading type tag.
pub fn expect_tag(
    r: &mut ByteReader<'_>,
    tag: u32,
    expected: &'static str,
) -> Result<(), PersistError> {
    let found = r.u32("type tag")?;
    if found != tag {
        return Err(PersistError::WrongType { expected, found });
    }
    Ok(())
}

/// Exact binary state serialization: encode enough to rebuild `Self` with
/// *bitwise-identical estimates*, decode with loud typed failures.
pub trait Persist: Sized {
    /// Append this value's state bytes to `out`.
    fn write_state(&self, out: &mut Vec<u8>);

    /// Decode a value previously written by [`Persist::write_state`].
    ///
    /// # Errors
    /// Any truncation, corruption, or type mismatch yields a
    /// [`PersistError`]; partial or garbage state is never returned.
    fn read_state(r: &mut ByteReader<'_>) -> Result<Self, PersistError>;

    /// Serialize into a fresh byte vector.
    fn to_state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_state(&mut out);
        out
    }

    /// Deserialize from a byte slice, requiring every byte be consumed.
    ///
    /// # Errors
    /// Propagates [`Persist::read_state`] failures; trailing bytes are
    /// reported as corruption.
    fn from_state_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::read_state(&mut r)?;
        if !r.is_empty() {
            return Err(PersistError::Corrupt {
                what: format!("{} trailing bytes after state", r.remaining()),
            });
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_i64(&mut out, i64::MIN);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.i64("d").unwrap(), i64::MIN);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_typed() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        let e = r.u64("field-x").unwrap_err();
        assert!(matches!(e, PersistError::Truncated { what: "field-x" }));
        assert!(e.to_string().contains("field-x"));
    }

    #[test]
    fn absurd_length_is_corrupt() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut r = ByteReader::new(&out);
        assert!(matches!(
            r.len("cells").unwrap_err(),
            PersistError::Corrupt { .. }
        ));
    }

    #[test]
    fn tag_mismatch_is_typed() {
        let mut out = Vec::new();
        put_u32(&mut out, 0x1111_2222);
        let mut r = ByteReader::new(&out);
        let e = expect_tag(&mut r, 0x3333_4444, "CountMin").unwrap_err();
        assert!(matches!(
            e,
            PersistError::WrongType {
                expected: "CountMin",
                found: 0x1111_2222
            }
        ));
    }
}
