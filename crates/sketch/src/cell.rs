//! Counter-cell abstraction: sketches generic over their per-cell integer
//! width.
//!
//! The paper's C implementation (and the public Count-Min code it reuses)
//! stores 32-bit counters; this workspace defaults to 64-bit. The width
//! matters for fidelity: at a fixed byte budget, 32-bit cells double every
//! row's length `h` and therefore halve the `(e/h)·N` error term. The
//! [`Cell`] trait lets each sketch be instantiated either way
//! (`CountMin` = 64-bit alias, `CountMin32` = the paper's layout).
//!
//! Narrow cells saturate instead of wrapping on overflow, preserving the
//! one-sided guarantee even on streams that exceed `i32::MAX` per cell
//! (over-estimates stay over-estimates; they just stop growing).

use serde::de::DeserializeOwned;
use serde::Serialize;

/// An integer counter cell.
pub trait Cell:
    Copy + Default + Ord + Send + Sync + Serialize + DeserializeOwned + std::fmt::Debug + 'static
{
    /// Cell width in bytes.
    const BYTES: usize;

    /// Widen to `i64` (lossless).
    fn to_i64(self) -> i64;

    /// Narrow from `i64`, saturating at the cell's bounds.
    fn from_i64_saturating(v: i64) -> Self;

    /// `self + delta`, saturating at the cell's bounds.
    fn saturating_add_i64(self, delta: i64) -> Self;
}

impl Cell for i64 {
    const BYTES: usize = 8;

    #[inline]
    fn to_i64(self) -> i64 {
        self
    }

    #[inline]
    fn from_i64_saturating(v: i64) -> Self {
        v
    }

    #[inline]
    fn saturating_add_i64(self, delta: i64) -> Self {
        self.saturating_add(delta)
    }
}

impl Cell for i32 {
    const BYTES: usize = 4;

    #[inline]
    fn to_i64(self) -> i64 {
        self as i64
    }

    #[inline]
    fn from_i64_saturating(v: i64) -> Self {
        v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
    }

    #[inline]
    fn saturating_add_i64(self, delta: i64) -> Self {
        Self::from_i64_saturating((self as i64).saturating_add(delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(<i64 as Cell>::BYTES, 8);
        assert_eq!(<i32 as Cell>::BYTES, 4);
    }

    #[test]
    fn i32_saturates() {
        let max = i32::MAX;
        assert_eq!(max.saturating_add_i64(10), i32::MAX);
        assert_eq!(i32::from_i64_saturating(i64::MAX), i32::MAX);
        assert_eq!(i32::from_i64_saturating(i64::MIN), i32::MIN);
        assert_eq!(i32::from_i64_saturating(42), 42);
        assert_eq!(0i32.saturating_add_i64(-5), -5);
    }

    #[test]
    fn i64_roundtrip() {
        assert_eq!(123i64.to_i64(), 123);
        assert_eq!(i64::from_i64_saturating(-9), -9);
        assert_eq!(5i64.saturating_add_i64(i64::MAX), i64::MAX);
    }
}
