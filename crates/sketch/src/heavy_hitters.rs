//! Sketch + heap heavy-hitter tracking.
//!
//! Plain sketches answer point queries but cannot *enumerate* frequent
//! items; the classic remedy (paper §2, citing Charikar et al. \[7\]) is an
//! auxiliary top-k candidate set maintained online: every arrival's fresh
//! estimate is compared against the tracked minimum, evicting it when
//! beaten. This module provides that construction over any
//! [`UpdateEstimate`] sketch — both as the natural top-k baseline for
//! ASketch's filter-based ranking (paper Table 5) and as a reusable
//! library feature.
//!
//! Unlike the ASketch filter, the candidate set stores *sketch estimates*
//! (over-estimates, frozen at each item's last arrival), so its ranking
//! inherits all collision noise — the deficiency ASketch's exact filter
//! counts remove.

use crate::fast_map::FxHashMap;
use crate::traits::{FrequencyEstimator, TopK, UpdateEstimate};
use crate::SketchError;

/// A sketch with an online top-`k` candidate set.
#[derive(Debug, Clone)]
pub struct SketchHeavyHitters<S> {
    sketch: S,
    k: usize,
    /// key -> estimate as of the key's most recent arrival.
    tracked: FxHashMap<u64, i64>,
}

impl<S: UpdateEstimate> SketchHeavyHitters<S> {
    /// Track the top-`k` items over `sketch`.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidDimensions`] if `k == 0`.
    pub fn new(sketch: S, k: usize) -> Result<Self, SketchError> {
        if k == 0 {
            return Err(SketchError::InvalidDimensions {
                what: "SketchHeavyHitters k=0".into(),
            });
        }
        Ok(Self {
            sketch,
            k,
            tracked: FxHashMap::default(),
        })
    }

    /// Candidate-set capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying sketch.
    pub fn sketch(&self) -> &S {
        &self.sketch
    }

    /// Heap bytes of the candidate set (key + estimate + map overhead per
    /// tracked item).
    pub fn tracker_bytes(&self) -> usize {
        self.k * 32
    }

    fn evict_min_if_needed(&mut self) {
        if self.tracked.len() <= self.k {
            return;
        }
        let (&key, _) = self
            .tracked
            .iter()
            .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(b.0)))
            .expect("non-empty when over capacity");
        self.tracked.remove(&key);
    }
}

impl<S: UpdateEstimate> FrequencyEstimator for SketchHeavyHitters<S> {
    fn update(&mut self, key: u64, delta: i64) {
        let est = self.sketch.update_and_estimate(key, delta);
        if let Some(e) = self.tracked.get_mut(&key) {
            *e = est;
            return;
        }
        let min = self.tracked.values().copied().min().unwrap_or(i64::MIN);
        if self.tracked.len() < self.k || est > min {
            self.tracked.insert(key, est);
            self.evict_min_if_needed();
        }
    }

    fn estimate(&self, key: u64) -> i64 {
        // Point queries go straight to the sketch (fresher than the frozen
        // tracked estimate).
        self.sketch.estimate(key)
    }

    fn size_bytes(&self) -> usize {
        self.sketch.size_bytes() + self.tracker_bytes()
    }
}

impl<S: UpdateEstimate> TopK for SketchHeavyHitters<S> {
    fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        let mut v: Vec<(u64, i64)> = self.tracked.iter().map(|(&k, &e)| (k, e)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountMin;

    fn hh(k: usize) -> SketchHeavyHitters<CountMin> {
        SketchHeavyHitters::new(CountMin::new(5, 4, 1 << 12).unwrap(), k).unwrap()
    }

    #[test]
    fn zero_k_rejected() {
        assert!(SketchHeavyHitters::new(CountMin::new(1, 2, 4).unwrap(), 0).is_err());
    }

    #[test]
    fn tracks_the_heavy_items() {
        let mut h = hh(4);
        for round in 0..500 {
            h.insert(1);
            h.insert(2);
            if round % 2 == 0 {
                h.insert(3);
            }
            h.insert(1000 + round); // light churn
        }
        let top: Vec<u64> = h.top_k(3).into_iter().map(|(k, _)| k).collect();
        assert!(
            top.contains(&1) && top.contains(&2) && top.contains(&3),
            "{top:?}"
        );
    }

    #[test]
    fn candidate_set_bounded() {
        let mut h = hh(8);
        for i in 0..10_000u64 {
            h.insert(i);
        }
        assert!(h.top_k(100).len() <= 8);
    }

    #[test]
    fn estimates_remain_one_sided() {
        let mut h = hh(4);
        for _ in 0..100 {
            h.insert(7);
        }
        assert!(h.estimate(7) >= 100);
    }

    #[test]
    fn ranking_orders_by_estimate() {
        let mut h = hh(4);
        for (key, n) in [(1u64, 30), (2, 20), (3, 10)] {
            for _ in 0..n {
                h.insert(key);
            }
        }
        let top = h.top_k(3);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        assert_eq!(top[2].0, 3);
        assert!(top[0].1 >= 30);
    }

    #[test]
    fn size_includes_tracker() {
        let h = hh(16);
        assert_eq!(h.size_bytes(), h.sketch().size_bytes() + 16 * 32);
    }
}
