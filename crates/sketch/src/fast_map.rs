//! A fast, DoS-irrelevant hasher for internal hash maps.
//!
//! The standard library's SipHash is safe for adversarial inputs but slow
//! for the integer keys used throughout this workspace. Workload keys here
//! are generated, not attacker-controlled, so we use an Fx-style
//! multiply-rotate hash (the rustc hasher) implemented locally to avoid an
//! external dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fx-style hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        // Sequential integers should land in many distinct 8-bit buckets.
        let mut buckets = [false; 256];
        for i in 0..256u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() >> 56) as usize] = true;
        }
        let used = buckets.iter().filter(|&&b| b).count();
        assert!(used > 128, "only {used}/256 top-byte buckets used");
    }

    #[test]
    fn write_bytes_consistent_with_u64() {
        let mut a = FxHasher::default();
        a.write_u64(0xDEADBEEF);
        let mut b = FxHasher::default();
        b.write(&0xDEADBEEFu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
