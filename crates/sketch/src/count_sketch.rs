//! Count Sketch (Charikar, Chen & Farach-Colton, 2002).
//!
//! Like Count-Min, but each row also applies a pairwise-independent ±1 sign
//! to the update, and the point estimate is the *median* of the per-row
//! signed readings rather than the minimum. The estimate is unbiased with
//! two-sided error `O(‖f‖₂ / √h)` per row.
//!
//! Included because the paper positions ASketch as generic over the
//! underlying sketch (its Figure 1 names Count Sketch explicitly as one of
//! the compatible back-ends). Note that Count Sketch does **not** provide
//! the one-sided guarantee, so ASketch-over-CountSketch inherits its
//! two-sided error for items living in the sketch.

use serde::{Deserialize, Serialize};

use crate::cell::Cell;
use crate::hash::{HashBank, SplitMix64};
use crate::traits::{FrequencyEstimator, Mergeable, UpdateEstimate};
use crate::SketchError;

/// Count Sketch with 64-bit cells (workspace default).
pub type CountSketch = CountSketchG<i64>;

/// Count Sketch with 32-bit cells (the paper's layout; saturating).
pub type CountSketch32 = CountSketchG<i32>;

/// The Count Sketch, generic over its counter-cell width.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct CountSketchG<C: Cell = i64> {
    /// Bucket hash per row.
    hashes: HashBank,
    /// Sign hash per row (range 2, mapped to ±1).
    signs: HashBank,
    /// Row-major `w × h` counter table.
    table: Vec<C>,
    h: usize,
    seed: u64,
}

impl<C: Cell> CountSketchG<C> {
    /// Create a sketch with `depth` rows of `width` cells.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidDimensions`] when either dimension is 0.
    pub fn new(seed: u64, depth: usize, width: usize) -> Result<Self, SketchError> {
        if depth == 0 || width == 0 {
            return Err(SketchError::InvalidDimensions {
                what: format!("depth={depth}, width={width}"),
            });
        }
        // Derive a distinct seed stream for the sign functions so bucket and
        // sign hashes are independent.
        let sign_seed = SplitMix64::new(seed ^ 0xC0FF_EE00_D15E_A5E5).next_u64();
        Ok(Self {
            hashes: HashBank::new(seed, depth, width),
            signs: HashBank::new(sign_seed, depth, 2),
            table: vec![C::default(); depth * width],
            h: width,
            seed,
        })
    }

    /// Create a sketch of `depth` rows fitting within `budget_bytes`.
    ///
    /// # Errors
    /// Returns an error when the budget cannot hold one cell per row.
    pub fn with_byte_budget(
        seed: u64,
        depth: usize,
        budget_bytes: usize,
    ) -> Result<Self, SketchError> {
        if depth == 0 {
            return Err(SketchError::InvalidDimensions {
                what: "depth=0".into(),
            });
        }
        let width = budget_bytes / (depth * C::BYTES);
        if width == 0 {
            return Err(SketchError::BudgetTooSmall {
                needed: depth * C::BYTES,
                available: budget_bytes,
            });
        }
        Self::new(seed, depth, width)
    }

    /// Number of rows (`w`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.hashes.width()
    }

    /// Row length (`h`).
    #[inline]
    pub fn width(&self) -> usize {
        self.h
    }

    #[inline]
    fn sign(&self, row: usize, key: u64) -> i64 {
        // Map {0,1} to {-1,+1}.
        (self.signs.hash(row, key) as i64) * 2 - 1
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        self.table.fill(C::default());
    }
}

/// Median of a small scratch vector (length = depth, typically ≤ 8).
fn median(mut xs: Vec<i64>) -> i64 {
    xs.sort_unstable();
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        // Average of the two middle elements, rounding toward the larger to
        // keep a mild over-estimation bias (harmless for strict streams).
        let a = xs[n / 2 - 1];
        let b = xs[n / 2];
        a + (b - a + 1) / 2
    }
}

impl<C: Cell> FrequencyEstimator for CountSketchG<C> {
    #[inline]
    fn update(&mut self, key: u64, delta: i64) {
        for row in 0..self.depth() {
            let idx = row * self.h + self.hashes.hash(row, key);
            let signed = delta.saturating_mul(self.sign(row, key));
            self.table[idx] = self.table[idx].saturating_add_i64(signed);
        }
    }

    fn estimate(&self, key: u64) -> i64 {
        let readings: Vec<i64> = (0..self.depth())
            .map(|row| {
                self.table[row * self.h + self.hashes.hash(row, key)].to_i64() * self.sign(row, key)
            })
            .collect();
        median(readings)
    }

    fn size_bytes(&self) -> usize {
        self.table.len() * C::BYTES
    }
}

impl<C: Cell> UpdateEstimate for CountSketchG<C> {}

impl<C: Cell> Mergeable for CountSketchG<C> {
    fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.seed != other.seed || self.h != other.h || self.depth() != other.depth() {
            return Err(SketchError::IncompatibleMerge {
                what: "CountSketch parameter mismatch".into(),
            });
        }
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a = a.saturating_add_i64(b.to_i64());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(vec![3]), 3);
        assert_eq!(median(vec![1, 5, 3]), 3);
        assert_eq!(median(vec![1, 3]), 2);
        assert_eq!(median(vec![1, 2]), 2, "rounds toward larger");
        assert_eq!(median(vec![-5, -1]), -3);
    }

    #[test]
    fn exact_when_sparse() {
        let mut cs = CountSketch::new(3, 5, 1 << 14).unwrap();
        for key in 0..50u64 {
            cs.update(key, (key as i64) + 1);
        }
        for key in 0..50u64 {
            assert_eq!(cs.estimate(key), (key as i64) + 1);
        }
    }

    #[test]
    fn unbiasedness_rough_check() {
        // Heavy collisions; the mean error over keys should hover near zero
        // because collisions enter with random signs.
        let mut cs = CountSketch::new(11, 5, 64).unwrap();
        let per_key = 10i64;
        let distinct = 2_000u64;
        for key in 0..distinct {
            cs.update(key, per_key);
        }
        let mean_err: f64 = (0..distinct)
            .map(|k| (cs.estimate(k) - per_key) as f64)
            .sum::<f64>()
            / distinct as f64;
        assert!(
            mean_err.abs() < per_key as f64,
            "mean error {mean_err} suggests bias"
        );
    }

    #[test]
    fn heavy_hitter_survives_noise() {
        let mut cs = CountSketch::new(5, 5, 256).unwrap();
        cs.update(999_999, 100_000);
        for key in 0..5_000u64 {
            cs.insert(key);
        }
        let est = cs.estimate(999_999);
        assert!(
            (est - 100_000).abs() < 5_000,
            "heavy hitter estimate {est} too far off"
        );
    }

    #[test]
    fn merge_roundtrip() {
        let mut a = CountSketch::new(4, 3, 128).unwrap();
        let mut b = CountSketch::new(4, 3, 128).unwrap();
        a.update(1, 10);
        b.update(1, 7);
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(1), 17);
        let c = CountSketch::new(5, 3, 128).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn byte_budget_respected() {
        let cs = CountSketch::with_byte_budget(1, 8, 16 * 1024).unwrap();
        assert!(cs.size_bytes() <= 16 * 1024);
        assert!(CountSketch::with_byte_budget(1, 8, 4).is_err());
    }
}
