//! Holistic UDAF-style pre-aggregation (Cormode, Johnson, Korn,
//! Muthukrishnan, Spatscheck & Srivastava, SIGMOD 2004 — reference \[10\]).
//!
//! A small *low-level aggregation table* absorbs run-length locality in the
//! stream: an arriving tuple is merged into the table if its key is present,
//! claims a free slot if one exists, and otherwise the whole table is
//! *flushed* into the underlying sketch and the tuple starts a fresh table.
//! Unlike the ASketch filter, the table has no notion of item frequency —
//! it is a batching buffer, not a heavy-hitter separator — so
//!
//! * it cannot answer queries alone (pending counts must be combined with
//!   the sketch), and
//! * at low skew it flushes constantly and becomes pure overhead, which is
//!   exactly the regime where the paper shows H-UDAF falling behind
//!   (Figure 5a, skew < 1).
//!
//! Key lookup in the table reuses the same vectorized scan as the ASketch
//! filter (paper §7.1: "for the lookup in the low-level table, we use the
//! same code that we use for the filter lookup").

use serde::{Deserialize, Serialize};

use crate::cell::Cell;
use crate::count_min::CountMinG;
use crate::lookup;
use crate::traits::{FrequencyEstimator, UpdateEstimate};
use crate::SketchError;

/// Sentinel for an unoccupied table slot.
const EMPTY_KEY: u64 = u64::MAX;

#[inline]
fn canon(key: u64) -> u64 {
    if key == EMPTY_KEY {
        EMPTY_KEY - 1
    } else {
        key
    }
}

/// H-UDAF with 64-bit sketch cells (workspace default).
pub type HolisticUdaf = HolisticUdafG<i64>;

/// H-UDAF with 32-bit sketch cells (the paper's layout).
pub type HolisticUdaf32 = HolisticUdafG<i32>;

/// Count-Min sketch fronted by a run-length aggregation table, generic
/// over the sketch's counter-cell width (the aggregation table itself
/// keeps 64-bit pending counts; it holds only a few dozen entries).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct HolisticUdafG<C: Cell = i64> {
    ids: Vec<u64>,
    counts: Vec<i64>,
    /// Occupied slot count; slots `0..fill` are always the occupied ones
    /// because the table only grows until it is flushed wholesale.
    fill: usize,
    sketch: CountMinG<C>,
    /// Number of wholesale flushes performed (exposed for experiments).
    flushes: u64,
}

/// Bytes per aggregation-table slot (key + count).
pub const TABLE_SLOT_BYTES: usize = std::mem::size_of::<u64>() + std::mem::size_of::<i64>();

impl<C: Cell> HolisticUdafG<C> {
    /// Create an H-UDAF summary with a `table_items`-slot aggregation table
    /// in front of a `depth × width` Count-Min.
    ///
    /// # Errors
    /// Propagates invalid sketch dimensions; rejects a zero-slot table.
    pub fn new(
        seed: u64,
        depth: usize,
        width: usize,
        table_items: usize,
    ) -> Result<Self, SketchError> {
        if table_items == 0 {
            return Err(SketchError::InvalidDimensions {
                what: "HolisticUdaf table_items=0".into(),
            });
        }
        Ok(Self {
            ids: vec![EMPTY_KEY; table_items],
            counts: vec![0; table_items],
            fill: 0,
            sketch: CountMinG::new(seed, depth, width)?,
            flushes: 0,
        })
    }

    /// Create a summary fitting `budget_bytes` total: the aggregation table
    /// takes `table_items · 16` bytes and the sketch receives the rest, so
    /// the "same total space" comparison against CMS/ASketch is fair.
    ///
    /// # Errors
    /// Returns an error when the remainder cannot hold one sketch cell per
    /// row.
    pub fn with_byte_budget(
        seed: u64,
        depth: usize,
        budget_bytes: usize,
        table_items: usize,
    ) -> Result<Self, SketchError> {
        let table_bytes = table_items * TABLE_SLOT_BYTES;
        let remaining =
            budget_bytes
                .checked_sub(table_bytes)
                .ok_or(SketchError::BudgetTooSmall {
                    needed: table_bytes,
                    available: budget_bytes,
                })?;
        let sketch = CountMinG::with_byte_budget(seed, depth, remaining)?;
        let mut s = Self::new(seed, depth, sketch.width(), table_items)?;
        s.sketch = sketch;
        Ok(s)
    }

    /// Aggregation-table capacity in items.
    #[inline]
    pub fn table_capacity(&self) -> usize {
        self.ids.len()
    }

    /// Number of wholesale table flushes so far.
    #[inline]
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// The underlying Count-Min sketch.
    #[inline]
    pub fn sketch(&self) -> &CountMinG<C> {
        &self.sketch
    }

    /// Push every pending table entry into the sketch and clear the table.
    pub fn flush(&mut self) {
        for i in 0..self.fill {
            self.sketch.update(self.ids[i], self.counts[i]);
            self.ids[i] = EMPTY_KEY;
            self.counts[i] = 0;
        }
        if self.fill > 0 {
            self.flushes += 1;
        }
        self.fill = 0;
    }

    /// Pending (not yet flushed) count for `key`.
    #[inline]
    fn pending(&self, key: u64) -> i64 {
        lookup::find_key(&self.ids[..self.fill], key).map_or(0, |i| self.counts[i])
    }
}

impl<C: Cell> FrequencyEstimator for HolisticUdafG<C> {
    fn update(&mut self, key: u64, delta: i64) {
        let key = canon(key);
        if let Some(i) = lookup::find_key(&self.ids[..self.fill], key) {
            self.counts[i] += delta;
            return;
        }
        if self.fill == self.ids.len() {
            self.flush();
        }
        let i = self.fill;
        self.ids[i] = key;
        self.counts[i] = delta;
        self.fill += 1;
    }

    /// Sketch estimate plus any pending table count. The table alone can
    /// never answer (paper §7.2.1) — combining keeps the one-sided
    /// guarantee without forcing a flush on the query path.
    fn estimate(&self, key: u64) -> i64 {
        let key = canon(key);
        self.sketch.estimate(key) + self.pending(key)
    }

    fn size_bytes(&self) -> usize {
        self.ids.len() * TABLE_SLOT_BYTES + self.sketch.size_bytes()
    }
}

impl<C: Cell> UpdateEstimate for HolisticUdafG<C> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_table_rejected() {
        assert!(HolisticUdaf::new(1, 4, 64, 0).is_err());
    }

    #[test]
    fn aggregates_runs_without_touching_sketch() {
        let mut h = HolisticUdaf::new(1, 4, 1 << 12, 8).unwrap();
        for _ in 0..100 {
            h.insert(7);
        }
        assert_eq!(h.flush_count(), 0, "run fits in one slot — no flush");
        assert_eq!(h.sketch().estimate(7), 0, "count still pending");
        assert_eq!(h.estimate(7), 100, "estimate sees pending counts");
    }

    #[test]
    fn flushes_when_full() {
        let mut h = HolisticUdaf::new(1, 4, 1 << 12, 2).unwrap();
        h.insert(1);
        h.insert(2);
        h.insert(3); // table full of {1,2} -> flush, then 3 pends
        assert_eq!(h.flush_count(), 1);
        assert_eq!(h.sketch().estimate(1), 1);
        assert_eq!(h.sketch().estimate(3), 0);
        assert_eq!(h.estimate(3), 1);
    }

    #[test]
    fn estimates_match_truth_when_sparse() {
        let mut h = HolisticUdaf::new(3, 4, 1 << 14, 16).unwrap();
        for key in 0..200u64 {
            h.update(key, (key % 7) as i64 + 1);
        }
        for key in 0..200u64 {
            assert_eq!(h.estimate(key), (key % 7) as i64 + 1);
        }
    }

    #[test]
    fn one_sided_guarantee_via_combination() {
        let mut h = HolisticUdaf::new(5, 3, 32, 4).unwrap();
        let mut truth = std::collections::HashMap::new();
        let mut x = 3u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            let key = x % 200;
            h.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(h.estimate(key) >= t, "under-count for key {key}");
        }
    }

    #[test]
    fn manual_flush_idempotent() {
        let mut h = HolisticUdaf::new(1, 4, 256, 4).unwrap();
        h.insert(9);
        h.flush();
        let f = h.flush_count();
        h.flush(); // nothing pending
        assert_eq!(h.flush_count(), f, "empty flush not counted");
        assert_eq!(h.estimate(9), 1);
    }

    #[test]
    fn budget_split_between_table_and_sketch() {
        let h = HolisticUdaf::with_byte_budget(1, 8, 64 * 1024, 32).unwrap();
        assert!(h.size_bytes() <= 64 * 1024);
        let plain = crate::CountMin::with_byte_budget(1, 8, 64 * 1024).unwrap();
        assert!(h.sketch().width() < plain.width());
        assert!(HolisticUdaf::with_byte_budget(1, 8, 128, 32).is_err());
    }

    #[test]
    fn sentinel_key_usable() {
        let mut h = HolisticUdaf::new(1, 4, 1 << 10, 4).unwrap();
        h.insert(u64::MAX);
        assert_eq!(h.estimate(u64::MAX), 1);
    }
}
