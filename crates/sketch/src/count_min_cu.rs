//! Count-Min with *conservative update* (Estan & Varghese, 2003 —
//! reference \[13\] of the ASketch paper).
//!
//! On an update, plain Count-Min adds `delta` to all `w` addressed cells;
//! conservative update raises each cell only as far as needed to keep the
//! invariant `cell >= estimate(key)`: the new value of every addressed
//! cell is `max(cell, min_over_addressed + delta)`. Estimates remain
//! one-sided while over-counting shrinks substantially (typically 1.5–4×
//! on skewed streams), at the cost of supporting only *inserts* — a
//! conservative cell can no longer attribute its value to specific items,
//! so deletions (and therefore the paper's Appendix-A turnstile mode)
//! are unsupported.
//!
//! Included as an extension: the ASketch filter composes with it exactly
//! as with plain Count-Min (`ASketch<F, CountMinCu>`), giving a stronger
//! modern baseline than the paper had available.

use serde::{Deserialize, Serialize};

use crate::cell::Cell;
use crate::hash::HashBank;
use crate::traits::{FrequencyEstimator, UpdateEstimate};
use crate::SketchError;

/// Conservative-update Count-Min with 64-bit cells.
pub type CountMinCu = CountMinCuG<i64>;

/// Conservative-update Count-Min with 32-bit cells.
pub type CountMinCu32 = CountMinCuG<i32>;

/// The conservative-update Count-Min sketch.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct CountMinCuG<C: Cell = i64> {
    hashes: HashBank,
    table: Vec<C>,
    h: usize,
    /// Scratch indices reused across updates to avoid re-hashing.
    #[serde(skip)]
    scratch: Vec<usize>,
}

impl<C: Cell> CountMinCuG<C> {
    /// Create a sketch with `depth` rows of `width` cells.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidDimensions`] when either dimension is 0.
    pub fn new(seed: u64, depth: usize, width: usize) -> Result<Self, SketchError> {
        if depth == 0 || width == 0 {
            return Err(SketchError::InvalidDimensions {
                what: format!("depth={depth}, width={width}"),
            });
        }
        Ok(Self {
            hashes: HashBank::new(seed, depth, width),
            table: vec![C::default(); depth * width],
            h: width,
            scratch: vec![0; depth],
        })
    }

    /// Create a sketch of `depth` rows fitting within `budget_bytes`.
    ///
    /// # Errors
    /// Returns an error when the budget cannot hold one cell per row.
    pub fn with_byte_budget(
        seed: u64,
        depth: usize,
        budget_bytes: usize,
    ) -> Result<Self, SketchError> {
        if depth == 0 {
            return Err(SketchError::InvalidDimensions {
                what: "depth=0".into(),
            });
        }
        let width = budget_bytes / (depth * C::BYTES);
        if width == 0 {
            return Err(SketchError::BudgetTooSmall {
                needed: depth * C::BYTES,
                available: budget_bytes,
            });
        }
        Self::new(seed, depth, width)
    }

    /// Number of rows (`w`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.hashes.width()
    }

    /// Row length (`h`).
    #[inline]
    pub fn width(&self) -> usize {
        self.h
    }
}

impl<C: Cell> FrequencyEstimator for CountMinCuG<C> {
    /// Conservative update: raise each addressed cell to
    /// `max(cell, current_min + delta)`.
    ///
    /// # Panics
    /// Panics on negative `delta` — conservative update cannot support
    /// deletions (see module docs).
    fn update(&mut self, key: u64, delta: i64) {
        assert!(delta >= 0, "conservative update supports inserts only");
        if delta == 0 {
            return;
        }
        // Resize scratch if deserialization dropped it.
        if self.scratch.len() != self.depth() {
            self.scratch = vec![0; self.depth()];
        }
        let mut min = i64::MAX;
        for (row, func) in self.hashes.funcs().iter().enumerate() {
            let idx = row * self.h + func.hash(key);
            self.scratch[row] = idx;
            let v = self.table[idx].to_i64();
            if v < min {
                min = v;
            }
        }
        let target = min.saturating_add(delta);
        for &idx in &self.scratch {
            if self.table[idx].to_i64() < target {
                self.table[idx] = C::from_i64_saturating(target);
            }
        }
    }

    fn estimate(&self, key: u64) -> i64 {
        let mut est = i64::MAX;
        for (row, func) in self.hashes.funcs().iter().enumerate() {
            let v = self.table[row * self.h + func.hash(key)].to_i64();
            if v < est {
                est = v;
            }
        }
        est
    }

    fn size_bytes(&self) -> usize {
        self.table.len() * C::BYTES
    }
}

impl<C: Cell> UpdateEstimate for CountMinCuG<C> {
    fn update_and_estimate(&mut self, key: u64, delta: i64) -> i64 {
        self.update(key, delta);
        self.estimate(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountMin;

    #[test]
    fn dimensions_validated() {
        assert!(CountMinCu::new(1, 0, 4).is_err());
        assert!(CountMinCu::new(1, 4, 0).is_err());
        assert!(CountMinCu::with_byte_budget(1, 8, 4).is_err());
    }

    #[test]
    fn one_sided_guarantee() {
        let mut cu = CountMinCu::new(3, 2, 8).unwrap();
        let mut truth = std::collections::HashMap::new();
        let mut x = 77u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            let key = x % 100;
            cu.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(cu.estimate(key) >= t, "under-count for {key}");
        }
    }

    #[test]
    fn never_worse_than_plain_cms() {
        // Cell-for-cell, conservative update's estimates are bounded above
        // by plain Count-Min's for the same seed and stream.
        let mut cu = CountMinCu::new(9, 4, 64).unwrap();
        let mut cms = CountMin::new(9, 4, 64).unwrap();
        let mut x = 5u64;
        let mut keys = Vec::new();
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let key = x % 2_000;
            cu.insert(key);
            cms.insert(key);
            keys.push(key);
        }
        keys.sort_unstable();
        keys.dedup();
        let mut strictly_better = 0usize;
        for &key in &keys {
            assert!(
                cu.estimate(key) <= cms.estimate(key),
                "CU must not exceed CMS"
            );
            if cu.estimate(key) < cms.estimate(key) {
                strictly_better += 1;
            }
        }
        assert!(
            strictly_better > keys.len() / 4,
            "CU should beat CMS on a substantial fraction of keys ({strictly_better}/{})",
            keys.len()
        );
    }

    #[test]
    fn exact_when_sparse() {
        let mut cu = CountMinCu::new(5, 4, 1 << 14).unwrap();
        for key in 0..100u64 {
            cu.update(key, (key as i64) + 1);
        }
        for key in 0..100u64 {
            assert_eq!(cu.estimate(key), (key as i64) + 1);
        }
    }

    #[test]
    #[should_panic(expected = "inserts only")]
    fn deletion_rejected() {
        let mut cu = CountMinCu::new(1, 2, 8).unwrap();
        cu.update(1, -1);
    }

    #[test]
    fn zero_delta_noop() {
        let mut cu = CountMinCu::new(1, 2, 8).unwrap();
        cu.update(1, 0);
        assert_eq!(cu.estimate(1), 0);
    }

    #[test]
    fn composes_with_asketch_semantics() {
        // update_and_estimate is what ASketch's overflow path needs.
        let mut cu = CountMinCu::new(2, 4, 1 << 10).unwrap();
        let est = cu.update_and_estimate(9, 5);
        assert_eq!(est, 5);
        assert_eq!(cu.update_and_estimate(9, 2), 7);
    }
}
