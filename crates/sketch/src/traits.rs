//! Core traits shared by all stream summaries in this workspace.

/// A single stream tuple `(k, u)`: a key and a (usually positive) count.
///
/// The paper's streams carry `u = 1` almost everywhere; negative deltas model
/// item deletion (Appendix A) and are supported by every estimator here.
pub type Tuple = (u64, i64);

/// A summary that can ingest stream tuples and answer point frequency
/// queries.
///
/// Implementations must provide the *one-sided* guarantee where the paper
/// requires it (Count-Min, FCM, ASketch over either): for strict streams
/// (no negative totals), `estimate(k) >= true_count(k)`.
pub trait FrequencyEstimator {
    /// Ingest one tuple, adding `delta` to `key`'s count.
    fn update(&mut self, key: u64, delta: i64);

    /// Estimated frequency of `key`.
    fn estimate(&self, key: u64) -> i64;

    /// Total heap space consumed by the summary's counting state, in bytes.
    ///
    /// Used by the evaluation harness to hold the "same total space"
    /// invariant across methods.
    fn size_bytes(&self) -> usize;

    /// Convenience: ingest `key` with a count of one.
    #[inline]
    fn insert(&mut self, key: u64) {
        self.update(key, 1);
    }

    /// Ingest a whole slice of tuples.
    #[inline]
    fn extend_from_tuples(&mut self, tuples: &[Tuple]) {
        self.update_batch(tuples);
    }

    /// Ingest a batch of tuples.
    ///
    /// Semantically identical to calling [`FrequencyEstimator::update`] for
    /// each tuple in order; implementations may override it to amortize
    /// per-tuple costs (hash-function dispatch, SIMD feature detection,
    /// cache-miss latency via software prefetch) across the batch.
    #[inline]
    fn update_batch(&mut self, tuples: &[Tuple]) {
        for &(k, u) in tuples {
            self.update(k, u);
        }
    }

    /// Answer a point query for every key in `keys`, in order.
    ///
    /// Equivalent to mapping [`FrequencyEstimator::estimate`] over `keys`;
    /// overrides may batch the hash computations and prefetch counter rows.
    #[inline]
    fn estimate_batch(&self, keys: &[u64]) -> Vec<i64> {
        keys.iter().map(|&k| self.estimate(k)).collect()
    }

    /// Hint that the counters for `keys` are about to be touched.
    ///
    /// Purely advisory: the default does nothing, and overrides must not
    /// change any observable state (software prefetch only). Callers use it
    /// to overlap the sketch's cache misses with unrelated work, e.g.
    /// ASketch primes the sketch rows for an upcoming chunk while the
    /// filter is still absorbing the current one.
    #[inline]
    fn prime(&self, keys: &[u64]) {
        let _ = keys;
    }

    /// Ingest every key in `keys` with a count of one.
    ///
    /// The default stages keys through a small stack buffer of tuples so
    /// that tuned [`FrequencyEstimator::update_batch`] overrides (and their
    /// prefetch windows) kick in without any heap allocation; this is the
    /// entry point SPMD shard ingest uses.
    fn insert_batch(&mut self, keys: &[u64]) {
        let mut buf = [(0u64, 0i64); 256];
        for chunk in keys.chunks(buf.len()) {
            for (slot, &k) in buf.iter_mut().zip(chunk) {
                *slot = (k, 1);
            }
            self.update_batch(&buf[..chunk.len()]);
        }
    }
}

/// A summary that additionally supports an *update-then-estimate* fast path.
///
/// ASketch's exchange check (Algorithm 1, line 9) needs the estimate of the
/// tuple just inserted; sketches whose update already touches every relevant
/// cell can return it without a second pass over the hash functions.
pub trait UpdateEstimate: FrequencyEstimator {
    /// Add `delta` to `key` and return the post-update estimate.
    fn update_and_estimate(&mut self, key: u64, delta: i64) -> i64 {
        self.update(key, delta);
        self.estimate(key)
    }
}

/// A summary that can run under a *supervised* parallel runtime.
///
/// Supervision needs exactly three capabilities beyond counting:
///
/// * `Clone` — the runtime checkpoints the summary by deep copy and, after
///   a worker fault, restores from the last checkpoint plus a replay
///   journal (see `asketch-parallel`'s fault model);
/// * `Send` — the summary moves across worker threads on spawn/restart;
/// * `'static` — the worker thread owns it with no borrowed state.
///
/// Blanket-implemented: any `UpdateEstimate + Clone + Send + 'static`
/// summary is supervisable, which covers every sketch in this workspace.
pub trait Supervisable: UpdateEstimate + Clone + Send + 'static {}

impl<T: UpdateEstimate + Clone + Send + 'static> Supervisable for T {}

/// A summary that can report its (approximate) top-k heaviest items.
pub trait TopK {
    /// Return up to `k` `(key, estimated_count)` pairs, heaviest first.
    fn top_k(&self, k: usize) -> Vec<(u64, i64)>;
}

/// Summaries over the *same parameters* (seeds, dimensions) that can be
/// merged, enabling SPMD-style parallel counting with a commutative combine.
pub trait Mergeable: Sized {
    /// Fold `other` into `self`.
    ///
    /// # Errors
    /// Returns `Err` if the two summaries were built with incompatible
    /// parameters (different dimensions or hash seeds).
    fn merge(&mut self, other: &Self) -> Result<(), crate::SketchError>;
}
