//! Misra–Gries frequent-items counter (Misra & Gries, 1982).
//!
//! Maintains at most `k` `(key, counter)` pairs. An arriving key increments
//! its counter if monitored, claims a free slot if one exists, and otherwise
//! decrements *every* counter by one (evicting zeros). Any item with true
//! frequency above `N/(k+1)` is guaranteed to be monitored.
//!
//! In this workspace the MG counter plays the role it plays in
//! Frequency-Aware Counting \[34\]: a cheap high-frequency detector consulted
//! on every update to decide how many sketch rows an item should touch. Key
//! lookups use the same vectorized linear scan as the ASketch filter
//! (paper §7.1, "for lookup in the MG counter, we use the same
//! hardware-conscious SIMD-enabled lookup code").

use serde::{Deserialize, Serialize};

use crate::lookup;
use crate::SketchError;

/// The Misra–Gries summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MisraGries {
    /// Monitored keys; `EMPTY_KEY` marks free slots so the id array can be
    /// scanned without an occupancy side-table.
    ids: Vec<u64>,
    /// Counter per slot (0 for free slots).
    counts: Vec<i64>,
    /// Number of occupied slots.
    len: usize,
}

/// Sentinel for unoccupied slots. Real keys equal to this value are handled
/// by remapping (see `canon`), keeping the public interface total over u64.
const EMPTY_KEY: u64 = u64::MAX;

/// Remap the one colliding key so `EMPTY_KEY` never appears in `ids`.
#[inline]
fn canon(key: u64) -> u64 {
    if key == EMPTY_KEY {
        EMPTY_KEY - 1
    } else {
        key
    }
}

impl MisraGries {
    /// Create a counter monitoring at most `capacity` items.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidDimensions`] if `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self, SketchError> {
        if capacity == 0 {
            return Err(SketchError::InvalidDimensions {
                what: "MisraGries capacity=0".into(),
            });
        }
        Ok(Self {
            ids: vec![EMPTY_KEY; capacity],
            counts: vec![0; capacity],
            len: 0,
        })
    }

    /// Maximum number of monitored items.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.ids.len()
    }

    /// Number of currently monitored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are monitored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes consumed by the counting state.
    pub fn size_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<u64>() + self.counts.len() * std::mem::size_of::<i64>()
    }

    /// Process one occurrence of `key`; returns whether `key` is monitored
    /// *after* the observation (saving callers a second lookup).
    pub fn observe(&mut self, key: u64) -> bool {
        let key = canon(key);
        if let Some(i) = lookup::find_key(&self.ids, key) {
            self.counts[i] += 1;
            return true;
        }
        if self.len < self.capacity() {
            // Claim the first free slot.
            let i = lookup::find_key(&self.ids, EMPTY_KEY)
                .expect("len < capacity implies a free slot exists");
            self.ids[i] = key;
            self.counts[i] = 1;
            self.len += 1;
            return true;
        }
        // Decrement-all step; free any slot that reaches zero.
        for i in 0..self.ids.len() {
            self.counts[i] -= 1;
            if self.counts[i] == 0 {
                self.ids[i] = EMPTY_KEY;
                self.len -= 1;
            }
        }
        false
    }

    /// Whether `key` is currently monitored (i.e. classified high-frequency).
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        lookup::find_key(&self.ids, canon(key)).is_some()
    }

    /// The counter for `key`, if monitored. This is a lower bound on the
    /// true frequency minus the global decrement debt.
    #[inline]
    pub fn count(&self, key: u64) -> Option<i64> {
        lookup::find_key(&self.ids, canon(key)).map(|i| self.counts[i])
    }

    /// All monitored `(key, counter)` pairs, heaviest first.
    pub fn items(&self) -> Vec<(u64, i64)> {
        let mut v: Vec<(u64, i64)> = self
            .ids
            .iter()
            .zip(&self.counts)
            .filter(|(&id, _)| id != EMPTY_KEY)
            .map(|(&id, &c)| (id, c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Remove all monitored items.
    pub fn clear(&mut self) {
        self.ids.fill(EMPTY_KEY);
        self.counts.fill(0);
        self.len = 0;
    }

    /// The raw slot arrays `(ids, counts)` in internal slot order, free-slot
    /// sentinels included. Slot *order* is behaviorally significant (a new
    /// key claims the first free slot), so exact persistence must capture it
    /// verbatim rather than going through [`MisraGries::items`].
    pub fn raw_slots(&self) -> (&[u64], &[i64]) {
        (&self.ids, &self.counts)
    }

    /// Rebuild a counter from raw slot arrays as produced by
    /// [`MisraGries::raw_slots`]; the occupancy count is recomputed.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidDimensions`] when the arrays are empty
    /// or of mismatched length.
    pub fn from_raw_slots(ids: Vec<u64>, counts: Vec<i64>) -> Result<Self, SketchError> {
        if ids.is_empty() || ids.len() != counts.len() {
            return Err(SketchError::InvalidDimensions {
                what: format!(
                    "MisraGries raw slots: {} ids vs {} counts",
                    ids.len(),
                    counts.len()
                ),
            });
        }
        let len = ids.iter().filter(|&&id| id != EMPTY_KEY).count();
        Ok(Self { ids, counts, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_rejected() {
        assert!(MisraGries::new(0).is_err());
    }

    #[test]
    fn fills_then_decrements() {
        let mut mg = MisraGries::new(2).unwrap();
        mg.observe(1);
        mg.observe(2);
        assert_eq!(mg.len(), 2);
        assert_eq!(mg.count(1), Some(1));
        // Third distinct key triggers decrement-all, evicting both.
        mg.observe(3);
        assert_eq!(mg.len(), 0);
        assert!(!mg.contains(3));
    }

    #[test]
    fn heavy_item_guaranteed_monitored() {
        // An item with frequency > N/(k+1) must be present at the end.
        let k = 9;
        let mut mg = MisraGries::new(k).unwrap();
        let n = 10_000u64;
        // Heavy key 0 appears 20% of the time, the rest are near-distinct.
        for i in 0..n {
            if i % 5 == 0 {
                mg.observe(0);
            } else {
                mg.observe(1000 + i);
            }
        }
        assert!(mg.contains(0), "heavy hitter must survive");
    }

    #[test]
    fn counter_is_underestimate() {
        let mut mg = MisraGries::new(3).unwrap();
        for _ in 0..100 {
            mg.observe(7);
        }
        for i in 0..50 {
            mg.observe(100 + i);
        }
        let c = mg.count(7).expect("heavy item monitored");
        assert!(c <= 100, "MG counters never over-count");
        assert!(c >= 100 - 50, "decrements bounded by light traffic");
    }

    #[test]
    fn items_sorted_heaviest_first() {
        let mut mg = MisraGries::new(4).unwrap();
        for _ in 0..5 {
            mg.observe(10);
        }
        for _ in 0..3 {
            mg.observe(20);
        }
        mg.observe(30);
        let items = mg.items();
        assert_eq!(items[0].0, 10);
        assert_eq!(items[1].0, 20);
        assert_eq!(items[2].0, 30);
    }

    #[test]
    fn sentinel_key_is_usable() {
        let mut mg = MisraGries::new(2).unwrap();
        mg.observe(u64::MAX);
        assert!(mg.contains(u64::MAX));
        assert_eq!(mg.count(u64::MAX), Some(1));
    }

    #[test]
    fn clear_empties() {
        let mut mg = MisraGries::new(2).unwrap();
        mg.observe(1);
        mg.clear();
        assert!(mg.is_empty());
        assert!(!mg.contains(1));
    }
}
