//! Count-Min sketch (Cormode & Muthukrishnan, 2005).
//!
//! The 2-dimensional array of `w` rows (one per pairwise-independent hash
//! function) by `h` cells. An update adds `delta` to one cell per row; a
//! point query returns the minimum over the `w` addressed cells.
//!
//! Guarantees (strict streams, total count `N`): the estimate never
//! under-counts, and over-counts by more than `(e/h)·N` with probability at
//! most `e^-w`.
//!
//! This implementation stores the table row-major in a single flat vector
//! so one update touches `w` cache lines at predictable offsets, supports
//! negative deltas (item deletion, paper Appendix A), and is generic over
//! the cell width: [`CountMin`] uses 64-bit counters, [`CountMin32`]
//! matches the paper's 32-bit C layout (twice the cells per byte, half the
//! `(e/h)·N` error at equal budgets).

use serde::{Deserialize, Serialize};

use crate::blocked::LINE_BYTES;
use crate::cell::Cell;
use crate::hash::HashBank;
use crate::lookup::{prefetch_read, ScanKernel};
use crate::persist::{self, Persist, PersistError};
use crate::traits::{FrequencyEstimator, Mergeable, TopK, Tuple, UpdateEstimate};
use crate::view::{AtomicCells, SharedView};
use crate::SketchError;

/// Software-pipelining depth of the batched paths, in tuples: cell indexes
/// are hashed and their cache lines prefetched this many tuples before the
/// read-modify-write lands. Sized to cover DRAM latency at the few-ns/tuple
/// pace of the apply loop without thrashing L1.
pub(crate) const LOOKAHEAD: usize = 16;

/// Bytes consumed by one counter cell of the default (64-bit) layout.
pub const CELL_BYTES: usize = std::mem::size_of::<i64>();

/// Count-Min with 64-bit cells (workspace default).
pub type CountMin = CountMinG<i64>;

/// Count-Min with 32-bit cells (the paper's layout; saturating).
pub type CountMin32 = CountMinG<i32>;

/// The Count-Min sketch, generic over its counter-cell width.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct CountMinG<C: Cell = i64> {
    /// `w` hash functions, each with range `h`.
    hashes: HashBank,
    /// Row-major `w × h` counter table.
    table: Vec<C>,
    /// Range of each hash function (row length).
    h: usize,
    /// Seed the hash bank was derived from (needed to validate merges).
    seed: u64,
}

impl<C: Cell> CountMinG<C> {
    /// Create a sketch with `depth` hash functions (rows) of `width` cells
    /// each, seeded deterministically.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidDimensions`] when either dimension is 0.
    pub fn new(seed: u64, depth: usize, width: usize) -> Result<Self, SketchError> {
        if depth == 0 || width == 0 {
            return Err(SketchError::InvalidDimensions {
                what: format!("depth={depth}, width={width}"),
            });
        }
        Ok(Self {
            hashes: HashBank::new(seed, depth, width),
            table: vec![C::default(); depth * width],
            h: width,
            seed,
        })
    }

    /// Create a sketch of `depth` rows fitting within `budget_bytes` of
    /// counter space (the paper's "synopsis size"). The width is the largest
    /// `h` with `depth · h · cell_bytes <= budget_bytes`.
    ///
    /// # Errors
    /// Returns [`SketchError::BudgetTooSmall`] unless every row gets at
    /// least one full cache line ([`LINE_BYTES`]) of cells. Narrower rows
    /// are never what a byte-budget caller wants — the error bound `(e/h)·N`
    /// is already catastrophic at `h < 8`, and silently sizing `h` to 1 or 2
    /// turns a mis-typed budget into a sketch that answers `N` for
    /// everything. Use [`CountMinG::new`] to request tiny widths explicitly.
    pub fn with_byte_budget(
        seed: u64,
        depth: usize,
        budget_bytes: usize,
    ) -> Result<Self, SketchError> {
        if depth == 0 {
            return Err(SketchError::InvalidDimensions {
                what: "depth=0".into(),
            });
        }
        let width = budget_bytes / (depth * C::BYTES);
        if width < LINE_BYTES / C::BYTES {
            return Err(SketchError::BudgetTooSmall {
                needed: depth * LINE_BYTES,
                available: budget_bytes,
            });
        }
        Self::new(seed, depth, width)
    }

    /// Number of hash functions (`w` in the paper).
    #[inline]
    pub fn depth(&self) -> usize {
        self.hashes.width()
    }

    /// Range of each hash function (`h` in the paper).
    #[inline]
    pub fn width(&self) -> usize {
        self.h
    }

    /// The seed this sketch was built with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Bytes per counter cell of this instantiation.
    #[inline]
    pub fn cell_bytes(&self) -> usize {
        C::BYTES
    }

    /// Reset every counter to zero, keeping the hash functions.
    pub fn clear(&mut self) {
        self.table.fill(C::default());
    }

    /// Sum of one row's counters — for a strict stream this equals the total
    /// stream count `N` (absent saturation), a useful invariant for tests.
    pub fn row_sum(&self, row: usize) -> i64 {
        let start = row * self.h;
        self.table[start..start + self.h]
            .iter()
            .map(|c| c.to_i64())
            .sum()
    }

    /// Direct cell read (row, column); exposed for white-box tests and the
    /// analysis harness.
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> i64 {
        self.table[row * self.h + col].to_i64()
    }
}

impl<C: Cell> FrequencyEstimator for CountMinG<C> {
    #[inline]
    fn update(&mut self, key: u64, delta: i64) {
        for (row, func) in self.hashes.funcs().iter().enumerate() {
            let idx = row * self.h + func.hash(key);
            self.table[idx] = self.table[idx].saturating_add_i64(delta);
        }
    }

    #[inline]
    fn estimate(&self, key: u64) -> i64 {
        let mut est = i64::MAX;
        for (row, func) in self.hashes.funcs().iter().enumerate() {
            let v = self.table[row * self.h + func.hash(key)].to_i64();
            if v < est {
                est = v;
            }
        }
        est
    }

    fn size_bytes(&self) -> usize {
        self.table.len() * C::BYTES
    }

    /// Batched ingest: hashes are hoisted out of the per-tuple loop and each
    /// tuple's `w` cells are prefetched [`LOOKAHEAD`] tuples ahead of the
    /// read-modify-write, hiding the (cold, random-index) table misses that
    /// dominate single-tuple `update` on sketch sizes past L2.
    ///
    /// Exactly equivalent to applying `update` to each tuple in order — the
    /// ring only reorders *address computation*, never the cell writes.
    fn update_batch(&mut self, tuples: &[Tuple]) {
        let funcs = self.hashes.funcs();
        let depth = funcs.len();
        let look = LOOKAHEAD.min(tuples.len());
        if look == 0 {
            return;
        }
        // Ring of precomputed cell indexes for the next `look` tuples.
        let mut ring = vec![0usize; look * depth];
        for (j, &(key, _)) in tuples.iter().take(look).enumerate() {
            for (row, func) in funcs.iter().enumerate() {
                let idx = row * self.h + func.hash(key);
                ring[j * depth + row] = idx;
                prefetch_read(&self.table[idx]);
            }
        }
        for i in 0..tuples.len() {
            let slot = (i % look) * depth;
            let delta = tuples[i].1;
            for &idx in &ring[slot..slot + depth] {
                // SAFETY: idx = row*h + hash(key) with hash(key) < h, so
                // idx < depth*h = table.len().
                debug_assert!(idx < self.table.len());
                let cell = unsafe { self.table.get_unchecked_mut(idx) };
                *cell = cell.saturating_add_i64(delta);
            }
            if let Some(&(next_key, _)) = tuples.get(i + look) {
                for (row, func) in funcs.iter().enumerate() {
                    let idx = row * self.h + func.hash(next_key);
                    ring[slot + row] = idx;
                    prefetch_read(&self.table[idx]);
                }
            }
        }
    }

    /// Batched point queries with the same hash-hoisting + prefetch ring as
    /// [`CountMinG::update_batch`]; the per-key row-min runs through the
    /// vectorized [`ScanKernel::find_min`] over a gathered value buffer.
    fn estimate_batch(&self, keys: &[u64]) -> Vec<i64> {
        let funcs = self.hashes.funcs();
        let depth = funcs.len();
        let look = LOOKAHEAD.min(keys.len());
        if look == 0 {
            return Vec::new();
        }
        let kernel = ScanKernel::get();
        let mut ring = vec![0usize; look * depth];
        for (j, &key) in keys.iter().take(look).enumerate() {
            for (row, func) in funcs.iter().enumerate() {
                let idx = row * self.h + func.hash(key);
                ring[j * depth + row] = idx;
                prefetch_read(&self.table[idx]);
            }
        }
        let mut vals = vec![0i64; depth];
        let mut out = Vec::with_capacity(keys.len());
        for i in 0..keys.len() {
            let slot = (i % look) * depth;
            for (v, &idx) in vals.iter_mut().zip(&ring[slot..slot + depth]) {
                *v = self.table[idx].to_i64();
            }
            let est = kernel.find_min(&vals).map_or(i64::MAX, |m| vals[m]);
            out.push(est);
            if let Some(&next_key) = keys.get(i + look) {
                for (row, func) in funcs.iter().enumerate() {
                    let idx = row * self.h + func.hash(next_key);
                    ring[slot + row] = idx;
                    prefetch_read(&self.table[idx]);
                }
            }
        }
        out
    }

    /// Pull the `w` cells addressed by each key into cache. Advisory only.
    #[inline]
    fn prime(&self, keys: &[u64]) {
        for &key in keys {
            for (row, func) in self.hashes.funcs().iter().enumerate() {
                prefetch_read(&self.table[row * self.h + func.hash(key)]);
            }
        }
    }
}

impl<C: Cell> UpdateEstimate for CountMinG<C> {
    #[inline]
    fn update_and_estimate(&mut self, key: u64, delta: i64) -> i64 {
        let mut est = i64::MAX;
        for (row, func) in self.hashes.funcs().iter().enumerate() {
            let idx = row * self.h + func.hash(key);
            self.table[idx] = self.table[idx].saturating_add_i64(delta);
            let v = self.table[idx].to_i64();
            if v < est {
                est = v;
            }
        }
        est
    }
}

/// Published replica of a [`CountMinG`]: the hash bank (immutable) plus an
/// atomic copy of the counter table. See [`crate::view`] for the protocol.
#[derive(Debug)]
pub struct CountMinView {
    hashes: HashBank,
    h: usize,
    cells: AtomicCells,
}

impl<C: Cell> SharedView for CountMinG<C> {
    type View = CountMinView;

    fn new_view(&self) -> CountMinView {
        let view = CountMinView {
            hashes: self.hashes.clone(),
            h: self.h,
            cells: AtomicCells::new(self.table.len()),
        };
        self.store_view(&view);
        view
    }

    fn store_view(&self, view: &CountMinView) {
        debug_assert_eq!(view.cells.len(), self.table.len());
        view.cells.store_all(self.table.iter().map(|c| c.to_i64()));
    }

    /// Exactly the row-min of [`CountMinG::estimate`], read from the
    /// published cells.
    fn view_estimate(view: &CountMinView, key: u64) -> i64 {
        let mut est = i64::MAX;
        for (row, func) in view.hashes.funcs().iter().enumerate() {
            let v = view.cells.load(row * view.h + func.hash(key));
            if v < est {
                est = v;
            }
        }
        est
    }
}

impl<C: Cell> Mergeable for CountMinG<C> {
    fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.seed != other.seed || self.h != other.h || self.depth() != other.depth() {
            return Err(SketchError::IncompatibleMerge {
                what: format!(
                    "CountMin {}x{} seed {} vs {}x{} seed {}",
                    self.depth(),
                    self.h,
                    self.seed,
                    other.depth(),
                    other.h,
                    other.seed
                ),
            });
        }
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a = a.saturating_add_i64(b.to_i64());
        }
        Ok(())
    }
}

impl<C: Cell> TopK for CountMinG<C> {
    /// Count-Min has no item directory, so it cannot enumerate heavy
    /// hitters by itself. Heavy-hitter support for plain CMS requires an
    /// external heap (paper §2) — the `asketch` crate provides it through
    /// its filter.
    fn top_k(&self, _k: usize) -> Vec<(u64, i64)> {
        Vec::new()
    }
}

/// Payload tag for persisted Count-Min state (`"SKCM"`).
const PERSIST_TAG: u32 = u32::from_le_bytes(*b"SKCM");

impl<C: Cell> Persist for CountMinG<C> {
    /// Layout: tag, cell width, `seed`, `depth`, `width`, then the
    /// row-major table widened to `i64`. The hash bank is rebuilt from the
    /// seed, so estimates round-trip bitwise.
    fn write_state(&self, out: &mut Vec<u8>) {
        persist::put_u32(out, PERSIST_TAG);
        persist::put_u8(out, C::BYTES as u8);
        persist::put_u64(out, self.seed);
        persist::put_u64(out, self.depth() as u64);
        persist::put_u64(out, self.h as u64);
        for c in &self.table {
            persist::put_i64(out, c.to_i64());
        }
    }

    fn read_state(r: &mut persist::ByteReader<'_>) -> Result<Self, PersistError> {
        persist::expect_tag(r, PERSIST_TAG, "CountMin")?;
        let cell = r.u8("CountMin cell width")?;
        if cell as usize != C::BYTES {
            return Err(PersistError::Corrupt {
                what: format!("CountMin cell width {cell} != expected {}", C::BYTES),
            });
        }
        let seed = r.u64("CountMin seed")?;
        let depth = r.u64("CountMin depth")? as usize;
        let width = r.u64("CountMin width")? as usize;
        if depth
            .checked_mul(width)
            .is_none_or(|cells| cells * 8 > r.remaining())
        {
            return Err(PersistError::Corrupt {
                what: format!("CountMin {depth}x{width} table exceeds payload"),
            });
        }
        let mut s = Self::new(seed, depth, width)?;
        for c in s.table.iter_mut() {
            *c = C::from_i64_saturating(r.i64("CountMin cell")?);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_round_trips_bitwise() {
        let mut cms = CountMin::new(99, 4, 512).unwrap();
        let mut cms32 = CountMin32::new(99, 4, 512).unwrap();
        let mut x = 3u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            cms.update(x % 700, 1 + (x % 5) as i64);
            cms32.update(x % 700, 1 + (x % 5) as i64);
        }
        let back = CountMin::from_state_bytes(&cms.to_state_bytes()).unwrap();
        let back32 = CountMin32::from_state_bytes(&cms32.to_state_bytes()).unwrap();
        for key in 0..700u64 {
            assert_eq!(back.estimate(key), cms.estimate(key), "key {key}");
            assert_eq!(back32.estimate(key), cms32.estimate(key), "key {key}");
        }
    }

    #[test]
    fn persist_rejects_cell_width_and_type_confusion() {
        let cms = CountMin::new(1, 2, 64).unwrap();
        let bytes = cms.to_state_bytes();
        // 64-bit state must not load as a 32-bit sketch.
        assert!(matches!(
            CountMin32::from_state_bytes(&bytes),
            Err(PersistError::Corrupt { .. })
        ));
        // A foreign tag must be rejected before any state is built.
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        assert!(matches!(
            CountMin::from_state_bytes(&wrong),
            Err(PersistError::WrongType { .. })
        ));
        // Truncation anywhere is loud.
        assert!(CountMin::from_state_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(CountMin::new(1, 0, 16).is_err());
        assert!(CountMin::new(1, 4, 0).is_err());
    }

    #[test]
    fn byte_budget_sizes_width() {
        let cms = CountMin::with_byte_budget(1, 8, 128 * 1024).unwrap();
        assert_eq!(cms.depth(), 8);
        assert_eq!(cms.width(), 128 * 1024 / (8 * CELL_BYTES));
        assert!(cms.size_bytes() <= 128 * 1024);
    }

    #[test]
    fn narrow_cells_double_width_at_same_budget() {
        let wide = CountMin::with_byte_budget(1, 8, 128 * 1024).unwrap();
        let narrow = CountMin32::with_byte_budget(1, 8, 128 * 1024).unwrap();
        assert_eq!(narrow.width(), 2 * wide.width());
        assert_eq!(narrow.cell_bytes(), 4);
        assert!(narrow.size_bytes() <= 128 * 1024);
    }

    #[test]
    fn tiny_budget_rejected() {
        let err = CountMin::with_byte_budget(1, 8, 8).unwrap_err();
        assert!(matches!(err, SketchError::BudgetTooSmall { .. }));
    }

    #[test]
    fn sub_cache_line_rows_rejected_at_boundary() {
        // A byte-budget row must span at least one cache line of cells.
        // i64, depth 2: the floor is 2 rows × 64 B = 128 B.
        let err = CountMin::with_byte_budget(1, 2, 127).unwrap_err();
        assert!(
            matches!(
                err,
                SketchError::BudgetTooSmall {
                    needed: 128,
                    available: 127
                }
            ),
            "got {err:?}"
        );
        let ok = CountMin::with_byte_budget(1, 2, 128).unwrap();
        assert_eq!(ok.width(), 8, "exactly one line of i64 cells per row");
        // i32 packs 16 cells per line, so the same 128 B floor holds at
        // depth 2 but yields twice the width.
        let err = CountMin32::with_byte_budget(1, 2, 127).unwrap_err();
        assert!(matches!(
            err,
            SketchError::BudgetTooSmall { needed: 128, .. }
        ));
        assert_eq!(CountMin32::with_byte_budget(1, 2, 128).unwrap().width(), 16);
        // Degenerate widths (1–7 cells) that the old rounding accepted must
        // now error loudly instead of answering ~N for every key.
        assert!(CountMin::with_byte_budget(1, 8, 8 * 8 * 7).is_err());
    }

    #[test]
    fn exact_when_no_collisions() {
        // With a huge table and few keys, estimates are exact.
        let mut cms = CountMin::new(7, 4, 1 << 16).unwrap();
        for key in 0..100u64 {
            for _ in 0..(key + 1) {
                cms.insert(key);
            }
        }
        for key in 0..100u64 {
            assert_eq!(cms.estimate(key), (key + 1) as i64);
        }
    }

    #[test]
    fn one_sided_guarantee() {
        // Even in a tiny, collision-heavy table the estimate never
        // under-counts on a strict stream — in both cell widths.
        fn check<C: Cell>() {
            let mut cms = CountMinG::<C>::new(3, 2, 8).unwrap();
            let mut truth = std::collections::HashMap::new();
            let mut x: u64 = 12345;
            for _ in 0..10_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let key = x % 100;
                cms.insert(key);
                *truth.entry(key).or_insert(0i64) += 1;
            }
            for (&key, &t) in &truth {
                assert!(cms.estimate(key) >= t, "under-count for key {key}");
            }
        }
        check::<i64>();
        check::<i32>();
    }

    #[test]
    fn i32_saturates_instead_of_wrapping() {
        let mut cms = CountMin32::new(1, 1, 1).unwrap();
        cms.update(0, i64::MAX);
        assert_eq!(cms.estimate(0), i32::MAX as i64);
        cms.update(0, 1);
        assert_eq!(cms.estimate(0), i32::MAX as i64, "stays saturated");
    }

    #[test]
    fn error_bound_holds_on_average() {
        // Markov-style check of the (e/h)·N bound: average over-count over
        // many keys should be below N/h (the expected value per cell).
        let h = 512usize;
        let mut cms = CountMin::new(3, 4, h).unwrap();
        let n = 100_000u64;
        let distinct = 10_000u64;
        for i in 0..n {
            cms.insert(i % distinct);
        }
        let per_key = (n / distinct) as i64;
        let mut total_over = 0i64;
        for key in 0..distinct {
            total_over += cms.estimate(key) - per_key;
        }
        let avg_over = total_over as f64 / distinct as f64;
        let bound = std::f64::consts::E * n as f64 / h as f64;
        assert!(
            avg_over < bound,
            "avg over-count {avg_over} exceeds (e/h)N = {bound}"
        );
    }

    #[test]
    fn update_and_estimate_matches_separate_calls() {
        let mut a = CountMin::new(9, 4, 64).unwrap();
        let mut b = CountMin::new(9, 4, 64).unwrap();
        for key in 0..500u64 {
            let ea = a.update_and_estimate(key % 37, 2);
            b.update(key % 37, 2);
            let eb = b.estimate(key % 37);
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn negative_updates_supported() {
        let mut cms = CountMin::new(5, 4, 1 << 14).unwrap();
        cms.update(42, 10);
        cms.update(42, -4);
        assert_eq!(cms.estimate(42), 6);
    }

    #[test]
    fn row_sums_equal_total_count() {
        let mut cms = CountMin::new(5, 6, 128).unwrap();
        let mut total = 0i64;
        for key in 0..1000u64 {
            let delta = (key % 5) as i64 + 1;
            cms.update(key, delta);
            total += delta;
        }
        for row in 0..cms.depth() {
            assert_eq!(cms.row_sum(row), total);
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = CountMin::new(11, 4, 256).unwrap();
        let mut b = CountMin::new(11, 4, 256).unwrap();
        a.update(7, 5);
        b.update(7, 3);
        b.update(9, 2);
        a.merge(&b).unwrap();
        assert!(a.estimate(7) >= 8);
        assert!(a.estimate(9) >= 2);
    }

    #[test]
    fn merge_rejects_mismatched() {
        let mut a = CountMin::new(1, 4, 256).unwrap();
        let b = CountMin::new(2, 4, 256).unwrap();
        assert!(a.merge(&b).is_err());
        let c = CountMin::new(1, 4, 128).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn update_batch_matches_scalar_loop() {
        fn check<C: Cell>(len: usize) {
            let mut batched = CountMinG::<C>::new(13, 4, 512).unwrap();
            let mut scalar = CountMinG::<C>::new(13, 4, 512).unwrap();
            let mut x: u64 = 99;
            let tuples: Vec<Tuple> = (0..len)
                .map(|i| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let delta = if i % 7 == 3 { -1 } else { (i % 3) as i64 + 1 };
                    (x % 200, delta)
                })
                .collect();
            batched.update_batch(&tuples);
            for &(k, u) in &tuples {
                scalar.update(k, u);
            }
            for row in 0..batched.depth() {
                for col in 0..batched.width() {
                    assert_eq!(batched.cell(row, col), scalar.cell(row, col), "len={len}");
                }
            }
        }
        // Lengths around the LOOKAHEAD boundary, both cell widths.
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            check::<i64>(len);
            check::<i32>(len);
        }
    }

    #[test]
    fn estimate_batch_matches_pointwise() {
        let mut cms = CountMin::new(21, 4, 256).unwrap();
        for key in 0..500u64 {
            cms.update(key % 61, (key % 4) as i64);
        }
        for len in [0usize, 1, 5, 8, 9, 100] {
            let keys: Vec<u64> = (0..len as u64).map(|k| k * 17 % 90).collect();
            let batch = cms.estimate_batch(&keys);
            let point: Vec<i64> = keys.iter().map(|&k| cms.estimate(k)).collect();
            assert_eq!(batch, point, "len={len}");
        }
    }

    #[test]
    fn prime_and_insert_batch_observably_equivalent() {
        let mut a = CountMin::new(3, 4, 128).unwrap();
        let mut b = CountMin::new(3, 4, 128).unwrap();
        let keys: Vec<u64> = (0..300).map(|k| k * 7 % 97).collect();
        a.prime(&keys); // must not change state
        a.insert_batch(&keys);
        for &k in &keys {
            b.insert(k);
        }
        for row in 0..a.depth() {
            assert_eq!(a.row_sum(row), b.row_sum(row));
        }
        for &k in &keys {
            assert_eq!(a.estimate(k), b.estimate(k));
        }
    }

    #[test]
    fn shared_view_matches_estimate_exactly() {
        let mut cms = CountMin::new(77, 4, 512).unwrap();
        let view = cms.new_view();
        let mut x = 3u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(97);
            cms.update(x % 300, (x % 4) as i64 + 1);
        }
        cms.store_view(&view);
        for key in 0..400u64 {
            assert_eq!(
                CountMin::view_estimate(&view, key),
                cms.estimate(key),
                "key {key}"
            );
        }
    }

    #[test]
    fn fresh_view_reflects_current_contents() {
        let mut cms = CountMin::new(5, 3, 64).unwrap();
        cms.update(9, 12);
        let view = cms.new_view();
        assert_eq!(CountMin::view_estimate(&view, 9), cms.estimate(9));
    }

    #[test]
    fn clear_resets_counts() {
        let mut cms = CountMin::new(3, 2, 16).unwrap();
        cms.insert(1);
        cms.clear();
        assert_eq!(cms.estimate(1), 0);
        assert_eq!(cms.row_sum(0), 0);
    }
}
