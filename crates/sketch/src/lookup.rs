//! Vectorized linear-scan key lookup.
//!
//! The ASketch filter, the Misra–Gries counter used by FCM, and the Holistic
//! UDAF low-level table all store a *small* array of keys and need a fast
//! "where is this key?" primitive. The paper implements it as a linear scan
//! with SSE2 compare + movemask + count-trailing-zeros (Algorithm 3) and
//! reuses the same code in all three places; we do the same here.
//!
//! Keys in this workspace are `u64`, so the x86 path uses the 64-bit-lane
//! compares (`_mm_cmpeq_epi64` under SSE4.1, `_mm256_cmpeq_epi64` under
//! AVX2). On other architectures, or when the CPU lacks those features, a
//! branch-light scalar scan over fixed-size chunks is used; it autovectorizes
//! well and preserves identical semantics.
//!
//! All variants return the index of the **first** occurrence of the key.

/// Find the first index of `key` in `ids`, or `None`.
///
/// Dispatches through the process-wide cached [`ScanKernel`]; batch callers
/// that scan many times in a row should hoist `ScanKernel::get()` out of
/// their loop and call [`ScanKernel::find_key`] directly.
#[inline]
pub fn find_key(ids: &[u64], key: u64) -> Option<usize> {
    ScanKernel::get().find_key(ids, key)
}

/// A resolved scan strategy: the CPU-feature dispatch done once, reusable
/// across a whole batch of lookups.
///
/// `std`'s `is_x86_feature_detected!` caches the CPUID results, but each
/// call still pays an atomic load plus two branches — measurable when the
/// scan itself is a handful of vector compares over a 32-item filter. The
/// first `ScanKernel::get()` resolves the feature set; every later call is
/// a single relaxed atomic load, and callers holding a `ScanKernel` value
/// pay nothing at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanKernel {
    /// 256-bit compares, four keys per register.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// 128-bit compares, two keys per register.
    #[cfg(target_arch = "x86_64")]
    Sse41,
    /// 128-bit NEON compares, two keys per register (baseline on aarch64).
    #[cfg(target_arch = "aarch64")]
    Neon,
    /// Chunked scalar scan; autovectorizes and matches SIMD semantics.
    Scalar,
}

/// Cached dispatch decision: 0 = undetected, 1 = scalar, 2 = sse4.1,
/// 3 = avx2, 4 = neon. Monotone writes, so racing detections agree.
static SCAN_KERNEL: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

impl ScanKernel {
    /// The best kernel for this CPU, detected on first use then cached.
    #[inline]
    pub fn get() -> Self {
        use std::sync::atomic::Ordering;
        match SCAN_KERNEL.load(Ordering::Relaxed) {
            0 => Self::detect(),
            #[cfg(target_arch = "x86_64")]
            2 => ScanKernel::Sse41,
            #[cfg(target_arch = "x86_64")]
            3 => ScanKernel::Avx2,
            #[cfg(target_arch = "aarch64")]
            4 => ScanKernel::Neon,
            _ => ScanKernel::Scalar,
        }
    }

    #[cold]
    fn detect() -> Self {
        use std::sync::atomic::Ordering;
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                SCAN_KERNEL.store(3, Ordering::Relaxed);
                return ScanKernel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse4.1") {
                SCAN_KERNEL.store(2, Ordering::Relaxed);
                return ScanKernel::Sse41;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                SCAN_KERNEL.store(4, Ordering::Relaxed);
                return ScanKernel::Neon;
            }
        }
        SCAN_KERNEL.store(1, Ordering::Relaxed);
        ScanKernel::Scalar
    }

    /// Find the first index of `key` in `ids` using this kernel.
    #[inline]
    pub fn find_key(self, ids: &[u64], key: u64) -> Option<usize> {
        match self {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the Avx2 variant is only constructed after runtime
            // AVX2 detection in `detect()`.
            ScanKernel::Avx2 => unsafe { find_key_avx2(ids, key) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above, for SSE4.1.
            ScanKernel::Sse41 => unsafe { find_key_sse41(ids, key) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above, for NEON.
            ScanKernel::Neon => unsafe { find_key_neon(ids, key) },
            ScanKernel::Scalar => find_key_scalar(ids, key),
        }
    }

    /// Find the first index of the minimum of `counts` using this kernel.
    ///
    /// Only the AVX2 path is vectorized: the min-reduction needs packed
    /// 64-bit compares, and `pcmpgtq` arrived in SSE4.2 — one step past the
    /// SSE4.1 feature level this dispatch distinguishes — so the SSE4.1 and
    /// NEON variants share the scalar path (NEON's two-lane `cmgt` loses to
    /// scalar on the short slices this is used for).
    #[inline]
    pub fn find_min(self, counts: &[i64]) -> Option<usize> {
        match self {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2 is only constructed after runtime detection.
            ScanKernel::Avx2 => unsafe { find_min_avx2(counts) },
            _ => find_min_scalar(counts),
        }
    }
}

/// Issue a best-effort read prefetch for the cache line holding `*p`.
///
/// Purely a latency hint: no-op off x86_64, never faults, and has no
/// observable semantics, so callers may pass addresses they have not yet
/// bounds-checked against concurrent state. Batched sketch updates use it
/// to pull the `w` counter rows for upcoming keys into cache while the
/// current keys are still being applied.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is architecturally defined to be safe for any
    // address, mapped or not; it cannot fault or write.
    unsafe {
        std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Portable scan. Chunked so LLVM can unroll/vectorize; exact same result
/// as the SIMD paths.
#[inline]
pub fn find_key_scalar(ids: &[u64], key: u64) -> Option<usize> {
    const CHUNK: usize = 8;
    let mut base = 0;
    let mut chunks = ids.chunks_exact(CHUNK);
    for chunk in &mut chunks {
        // Branch-free accumulation of a hit mask for the whole chunk; only
        // one branch per 8 elements on the (common) miss path.
        let mut mask: u32 = 0;
        for (i, &id) in chunk.iter().enumerate() {
            mask |= ((id == key) as u32) << i;
        }
        if mask != 0 {
            return Some(base + mask.trailing_zeros() as usize);
        }
        base += CHUNK;
    }
    chunks
        .remainder()
        .iter()
        .position(|&id| id == key)
        .map(|i| base + i)
}

/// SSE4.1 path: two 64-bit lanes per `__m128i`, four registers per
/// iteration (8 keys), mirroring the paper's 16-item SSE2 kernel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn find_key_sse41(ids: &[u64], key: u64) -> Option<usize> {
    use std::arch::x86_64::*;
    let mut base = 0usize;
    let mut chunks = ids.chunks_exact(8);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly 8 contiguous u64s (64 bytes), so the
        // four unaligned 16-byte loads stay in bounds; SSE4.1 availability
        // is guaranteed by the caller's feature check.
        let m = unsafe {
            let needle = _mm_set1_epi64x(key as i64);
            let p = chunk.as_ptr() as *const __m128i;
            let c0 = _mm_cmpeq_epi64(needle, _mm_loadu_si128(p));
            let c1 = _mm_cmpeq_epi64(needle, _mm_loadu_si128(p.add(1)));
            let c2 = _mm_cmpeq_epi64(needle, _mm_loadu_si128(p.add(2)));
            let c3 = _mm_cmpeq_epi64(needle, _mm_loadu_si128(p.add(3)));
            // Each 64-bit lane contributes 8 identical byte-mask bits; pack
            // the four 16-bit movemasks into one u64 hit mask.
            (_mm_movemask_epi8(c0) as u16 as u64)
                | ((_mm_movemask_epi8(c1) as u16 as u64) << 16)
                | ((_mm_movemask_epi8(c2) as u16 as u64) << 32)
                | ((_mm_movemask_epi8(c3) as u16 as u64) << 48)
        };
        if m != 0 {
            // 8 mask bits per 64-bit lane => lane index = tz / 8.
            return Some(base + (m.trailing_zeros() as usize) / 8);
        }
        base += 8;
    }
    find_key_scalar(chunks.remainder(), key).map(|i| base + i)
}

/// AVX2 path: four 64-bit lanes per `__m256i`, two registers per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn find_key_avx2(ids: &[u64], key: u64) -> Option<usize> {
    use std::arch::x86_64::*;
    let mut base = 0usize;
    let mut chunks = ids.chunks_exact(8);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly 8 contiguous u64s (64 bytes), so both
        // unaligned 32-byte loads stay in bounds; AVX2 availability is
        // guaranteed by the caller's feature check.
        let m = unsafe {
            let needle = _mm256_set1_epi64x(key as i64);
            let p = chunk.as_ptr() as *const __m256i;
            let c0 = _mm256_cmpeq_epi64(needle, _mm256_loadu_si256(p));
            let c1 = _mm256_cmpeq_epi64(needle, _mm256_loadu_si256(p.add(1)));
            (_mm256_movemask_epi8(c0) as u32 as u64)
                | ((_mm256_movemask_epi8(c1) as u32 as u64) << 32)
        };
        if m != 0 {
            return Some(base + (m.trailing_zeros() as usize) / 8);
        }
        base += 8;
    }
    find_key_scalar(chunks.remainder(), key).map(|i| base + i)
}

/// NEON path: two 64-bit lanes per `uint64x2_t`, four registers per
/// iteration (8 keys), mirroring the x86 kernels.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn find_key_neon(ids: &[u64], key: u64) -> Option<usize> {
    use std::arch::aarch64::*;
    let mut base = 0usize;
    let mut chunks = ids.chunks_exact(8);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly 8 contiguous u64s (64 bytes), so the
        // four 16-byte loads stay in bounds; NEON availability is guaranteed
        // by the caller's feature check.
        let m = unsafe {
            let needle = vdupq_n_u64(key);
            let p = chunk.as_ptr();
            let c0 = vceqq_u64(needle, vld1q_u64(p));
            let c1 = vceqq_u64(needle, vld1q_u64(p.add(2)));
            let c2 = vceqq_u64(needle, vld1q_u64(p.add(4)));
            let c3 = vceqq_u64(needle, vld1q_u64(p.add(6)));
            // Each matching lane is all-ones; fold one bit per lane into an
            // 8-bit hit mask ordered by position.
            (vgetq_lane_u64(c0, 0) & 1)
                | ((vgetq_lane_u64(c0, 1) & 1) << 1)
                | ((vgetq_lane_u64(c1, 0) & 1) << 2)
                | ((vgetq_lane_u64(c1, 1) & 1) << 3)
                | ((vgetq_lane_u64(c2, 0) & 1) << 4)
                | ((vgetq_lane_u64(c2, 1) & 1) << 5)
                | ((vgetq_lane_u64(c3, 0) & 1) << 6)
                | ((vgetq_lane_u64(c3, 1) & 1) << 7)
        };
        if m != 0 {
            return Some(base + m.trailing_zeros() as usize);
        }
        base += 8;
    }
    find_key_scalar(chunks.remainder(), key).map(|i| base + i)
}

/// Find the index of the minimum value in `counts`, scanning linearly.
///
/// Used by the Vector filter (which has no heap), the Misra–Gries counter,
/// and the batched Count-Min row-min. Returns `None` on an empty slice.
/// Ties resolve to the first occurrence.
///
/// Dispatches through the process-wide cached [`ScanKernel`]; batch callers
/// should hoist `ScanKernel::get()` and call [`ScanKernel::find_min`].
#[inline]
pub fn find_min(counts: &[i64]) -> Option<usize> {
    ScanKernel::get().find_min(counts)
}

/// Portable min-index scan; the semantic reference for the SIMD path.
#[inline]
pub fn find_min_scalar(counts: &[i64]) -> Option<usize> {
    if counts.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_v = counts[0];
    for (i, &v) in counts.iter().enumerate().skip(1) {
        if v < best_v {
            best = i;
            best_v = v;
        }
    }
    Some(best)
}

/// AVX2 min-index: a branch-free vectorized min-reduction over 4-lane
/// chunks, then a scalar scan for the first index holding that value —
/// preserving the first-occurrence tie rule exactly. AVX2 has no packed
/// 64-bit min, so the lane min is composed from `cmpgt` + `blendv`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn find_min_avx2(counts: &[i64]) -> Option<usize> {
    use std::arch::x86_64::*;
    if counts.is_empty() {
        return None;
    }
    let mut chunks = counts.chunks_exact(4);
    // SAFETY: each chunk is exactly 4 contiguous i64s, so every unaligned
    // 32-byte load stays in bounds; AVX2 is guaranteed by the caller.
    let mut best = unsafe {
        let mut minv = _mm256_set1_epi64x(i64::MAX);
        for chunk in &mut chunks {
            let a = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
            minv = _mm256_blendv_epi8(minv, a, _mm256_cmpgt_epi64(minv, a));
        }
        let mut buf = [i64::MAX; 4];
        _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, minv);
        buf.iter().copied().min().unwrap_or(i64::MAX)
    };
    for &v in chunks.remainder() {
        if v < best {
            best = v;
        }
    }
    // First index of the global min; `best` is exact, so this always hits.
    counts.iter().position(|&v| v == best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_impls(ids: &[u64], key: u64) -> Vec<Option<usize>> {
        let mut out = vec![find_key_scalar(ids, key), find_key(ids, key)];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.1") {
                out.push(unsafe { find_key_sse41(ids, key) });
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                out.push(unsafe { find_key_avx2(ids, key) });
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                out.push(unsafe { find_key_neon(ids, key) });
            }
        }
        out
    }

    #[test]
    fn empty_slice() {
        for r in all_impls(&[], 5) {
            assert_eq!(r, None);
        }
    }

    #[test]
    fn finds_at_every_position() {
        // Exercise positions spanning chunk boundaries for every impl.
        for len in [1usize, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100] {
            let ids: Vec<u64> = (0..len as u64).map(|i| i + 1000).collect();
            for pos in 0..len {
                let key = ids[pos];
                for r in all_impls(&ids, key) {
                    assert_eq!(r, Some(pos), "len={len} pos={pos}");
                }
            }
            for r in all_impls(&ids, 1) {
                assert_eq!(r, None, "len={len} absent key");
            }
        }
    }

    #[test]
    fn returns_first_occurrence() {
        let ids = vec![9, 9, 3, 9, 3, 3, 9, 3, 3, 9];
        for r in all_impls(&ids, 3) {
            assert_eq!(r, Some(2));
        }
        for r in all_impls(&ids, 9) {
            assert_eq!(r, Some(0));
        }
    }

    #[test]
    fn handles_extreme_keys() {
        let ids = vec![u64::MAX, 0, u64::MAX - 1, 1];
        for r in all_impls(&ids, u64::MAX) {
            assert_eq!(r, Some(0));
        }
        for r in all_impls(&ids, 0) {
            assert_eq!(r, Some(1));
        }
    }

    #[test]
    fn scan_kernel_is_cached_and_consistent() {
        let a = ScanKernel::get();
        let b = ScanKernel::get();
        assert_eq!(a, b, "detection must be stable across calls");
        #[cfg(target_arch = "aarch64")]
        {
            // NEON is architecturally mandatory on aarch64; detection must
            // pick the vector kernel, never silently fall back to scalar.
            if std::arch::is_aarch64_feature_detected!("neon") {
                assert_eq!(a, ScanKernel::Neon, "aarch64 must dispatch to NEON");
            }
        }
        let ids: Vec<u64> = (0..37).map(|i| i * 3 + 1).collect();
        for (pos, &key) in ids.iter().enumerate() {
            assert_eq!(a.find_key(&ids, key), Some(pos));
            assert_eq!(a.find_key(&ids, key), find_key(&ids, key));
        }
        assert_eq!(a.find_key(&ids, 0), None);
    }

    #[test]
    fn prefetch_is_side_effect_free() {
        let data = [1u64, 2, 3];
        prefetch_read(data.as_ptr());
        prefetch_read(std::ptr::null::<u64>());
        assert_eq!(data, [1, 2, 3]);
    }

    fn all_min_impls(counts: &[i64]) -> Vec<Option<usize>> {
        let mut out = vec![
            find_min_scalar(counts),
            find_min(counts),
            ScanKernel::Scalar.find_min(counts),
            ScanKernel::get().find_min(counts),
        ];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                out.push(unsafe { find_min_avx2(counts) });
            }
        }
        out
    }

    #[test]
    fn find_min_basics() {
        for r in all_min_impls(&[]) {
            assert_eq!(r, None);
        }
        for r in all_min_impls(&[5]) {
            assert_eq!(r, Some(0));
        }
        for r in all_min_impls(&[5, 3, 7, 3]) {
            assert_eq!(r, Some(1), "ties resolve first");
        }
        for r in all_min_impls(&[i64::MAX, i64::MIN, 0]) {
            assert_eq!(r, Some(1));
        }
        for r in all_min_impls(&[i64::MAX; 9]) {
            assert_eq!(r, Some(0), "all-MAX slice still yields first index");
        }
    }

    #[test]
    fn find_min_matches_scalar_at_every_length() {
        // Every length 0..64 (spanning the 4-lane chunk boundaries), with a
        // planted minimum at every position and a small value range so ties
        // occur constantly — every impl must agree with the scalar reference.
        let mut x: u64 = 0x5EED;
        for len in 0..64usize {
            let mut counts: Vec<i64> = (0..len)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x % 7) as i64 - 3
                })
                .collect();
            let want = find_min_scalar(&counts);
            for r in all_min_impls(&counts) {
                assert_eq!(r, want, "len={len}");
            }
            for pos in 0..len {
                let saved = counts[pos];
                counts[pos] = -100; // unique global min at `pos`
                for r in all_min_impls(&counts) {
                    assert_eq!(r, Some(pos), "len={len} planted at {pos}");
                }
                counts[pos] = saved;
            }
        }
    }
}
