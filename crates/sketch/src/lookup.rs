//! Vectorized linear-scan key lookup.
//!
//! The ASketch filter, the Misra–Gries counter used by FCM, and the Holistic
//! UDAF low-level table all store a *small* array of keys and need a fast
//! "where is this key?" primitive. The paper implements it as a linear scan
//! with SSE2 compare + movemask + count-trailing-zeros (Algorithm 3) and
//! reuses the same code in all three places; we do the same here.
//!
//! Keys in this workspace are `u64`, so the x86 path uses the 64-bit-lane
//! compares (`_mm_cmpeq_epi64` under SSE4.1, `_mm256_cmpeq_epi64` under
//! AVX2). On other architectures, or when the CPU lacks those features, a
//! branch-light scalar scan over fixed-size chunks is used; it autovectorizes
//! well and preserves identical semantics.
//!
//! All variants return the index of the **first** occurrence of the key.

/// Find the first index of `key` in `ids`, or `None`.
///
/// Dispatches once per call on compile-time/runtime CPU features; for the
/// filter sizes used by ASketch (8–1024 items) the scan itself dominates.
#[inline]
pub fn find_key(ids: &[u64], key: u64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by runtime AVX2 detection.
            return unsafe { find_key_avx2(ids, key) };
        }
        if std::arch::is_x86_feature_detected!("sse4.1") {
            // SAFETY: guarded by runtime SSE4.1 detection.
            return unsafe { find_key_sse41(ids, key) };
        }
    }
    find_key_scalar(ids, key)
}

/// Portable scan. Chunked so LLVM can unroll/vectorize; exact same result
/// as the SIMD paths.
#[inline]
pub fn find_key_scalar(ids: &[u64], key: u64) -> Option<usize> {
    const CHUNK: usize = 8;
    let mut base = 0;
    let mut chunks = ids.chunks_exact(CHUNK);
    for chunk in &mut chunks {
        // Branch-free accumulation of a hit mask for the whole chunk; only
        // one branch per 8 elements on the (common) miss path.
        let mut mask: u32 = 0;
        for (i, &id) in chunk.iter().enumerate() {
            mask |= ((id == key) as u32) << i;
        }
        if mask != 0 {
            return Some(base + mask.trailing_zeros() as usize);
        }
        base += CHUNK;
    }
    chunks
        .remainder()
        .iter()
        .position(|&id| id == key)
        .map(|i| base + i)
}

/// SSE4.1 path: two 64-bit lanes per `__m128i`, four registers per
/// iteration (8 keys), mirroring the paper's 16-item SSE2 kernel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn find_key_sse41(ids: &[u64], key: u64) -> Option<usize> {
    use std::arch::x86_64::*;
    let mut base = 0usize;
    let mut chunks = ids.chunks_exact(8);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly 8 contiguous u64s (64 bytes), so the
        // four unaligned 16-byte loads stay in bounds; SSE4.1 availability
        // is guaranteed by the caller's feature check.
        let m = unsafe {
            let needle = _mm_set1_epi64x(key as i64);
            let p = chunk.as_ptr() as *const __m128i;
            let c0 = _mm_cmpeq_epi64(needle, _mm_loadu_si128(p));
            let c1 = _mm_cmpeq_epi64(needle, _mm_loadu_si128(p.add(1)));
            let c2 = _mm_cmpeq_epi64(needle, _mm_loadu_si128(p.add(2)));
            let c3 = _mm_cmpeq_epi64(needle, _mm_loadu_si128(p.add(3)));
            // Each 64-bit lane contributes 8 identical byte-mask bits; pack
            // the four 16-bit movemasks into one u64 hit mask.
            (_mm_movemask_epi8(c0) as u16 as u64)
                | ((_mm_movemask_epi8(c1) as u16 as u64) << 16)
                | ((_mm_movemask_epi8(c2) as u16 as u64) << 32)
                | ((_mm_movemask_epi8(c3) as u16 as u64) << 48)
        };
        if m != 0 {
            // 8 mask bits per 64-bit lane => lane index = tz / 8.
            return Some(base + (m.trailing_zeros() as usize) / 8);
        }
        base += 8;
    }
    find_key_scalar(chunks.remainder(), key).map(|i| base + i)
}

/// AVX2 path: four 64-bit lanes per `__m256i`, two registers per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn find_key_avx2(ids: &[u64], key: u64) -> Option<usize> {
    use std::arch::x86_64::*;
    let mut base = 0usize;
    let mut chunks = ids.chunks_exact(8);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly 8 contiguous u64s (64 bytes), so both
        // unaligned 32-byte loads stay in bounds; AVX2 availability is
        // guaranteed by the caller's feature check.
        let m = unsafe {
            let needle = _mm256_set1_epi64x(key as i64);
            let p = chunk.as_ptr() as *const __m256i;
            let c0 = _mm256_cmpeq_epi64(needle, _mm256_loadu_si256(p));
            let c1 = _mm256_cmpeq_epi64(needle, _mm256_loadu_si256(p.add(1)));
            (_mm256_movemask_epi8(c0) as u32 as u64)
                | ((_mm256_movemask_epi8(c1) as u32 as u64) << 32)
        };
        if m != 0 {
            return Some(base + (m.trailing_zeros() as usize) / 8);
        }
        base += 8;
    }
    find_key_scalar(chunks.remainder(), key).map(|i| base + i)
}

/// Find the index of the minimum value in `counts`, scanning linearly.
///
/// Used by the Vector filter (which has no heap) and by the Misra–Gries
/// counter. Returns `None` on an empty slice. Ties resolve to the first
/// occurrence.
#[inline]
pub fn find_min(counts: &[i64]) -> Option<usize> {
    if counts.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_v = counts[0];
    for (i, &v) in counts.iter().enumerate().skip(1) {
        if v < best_v {
            best = i;
            best_v = v;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_impls(ids: &[u64], key: u64) -> Vec<Option<usize>> {
        let mut out = vec![find_key_scalar(ids, key), find_key(ids, key)];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.1") {
                out.push(unsafe { find_key_sse41(ids, key) });
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                out.push(unsafe { find_key_avx2(ids, key) });
            }
        }
        out
    }

    #[test]
    fn empty_slice() {
        for r in all_impls(&[], 5) {
            assert_eq!(r, None);
        }
    }

    #[test]
    fn finds_at_every_position() {
        // Exercise positions spanning chunk boundaries for every impl.
        for len in [1usize, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100] {
            let ids: Vec<u64> = (0..len as u64).map(|i| i + 1000).collect();
            for pos in 0..len {
                let key = ids[pos];
                for r in all_impls(&ids, key) {
                    assert_eq!(r, Some(pos), "len={len} pos={pos}");
                }
            }
            for r in all_impls(&ids, 1) {
                assert_eq!(r, None, "len={len} absent key");
            }
        }
    }

    #[test]
    fn returns_first_occurrence() {
        let ids = vec![9, 9, 3, 9, 3, 3, 9, 3, 3, 9];
        for r in all_impls(&ids, 3) {
            assert_eq!(r, Some(2));
        }
        for r in all_impls(&ids, 9) {
            assert_eq!(r, Some(0));
        }
    }

    #[test]
    fn handles_extreme_keys() {
        let ids = vec![u64::MAX, 0, u64::MAX - 1, 1];
        for r in all_impls(&ids, u64::MAX) {
            assert_eq!(r, Some(0));
        }
        for r in all_impls(&ids, 0) {
            assert_eq!(r, Some(1));
        }
    }

    #[test]
    fn find_min_basics() {
        assert_eq!(find_min(&[]), None);
        assert_eq!(find_min(&[5]), Some(0));
        assert_eq!(find_min(&[5, 3, 7, 3]), Some(1), "ties resolve first");
        assert_eq!(find_min(&[i64::MAX, i64::MIN, 0]), Some(1));
    }
}
