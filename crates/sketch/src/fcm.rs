//! Frequency-Aware Counting (FCM) — Thomas, Bordawekar, Aggarwal & Yu,
//! "On Efficient Query Processing of Stream Counts on the Cell Processor",
//! ICDE 2009. (Reference \[34\] of the ASketch paper.)
//!
//! FCM keeps the Count-Min `w × h` table but hashes each item into only a
//! *subset* of the `w` rows. Two auxiliary pairwise-independent hash
//! functions map the key to an `offset` and a `gap`; the item's rows are
//! `offset, offset+gap, offset+2·gap, … (mod w)`. High-frequency items —
//! detected online by a Misra–Gries counter — use fewer rows (`w/2`) than
//! low-frequency items (`⌈4w/5⌉`), reducing the collision damage heavy items
//! inflict on light ones.
//!
//! The ASketch paper evaluates two configurations, both supported here:
//!
//! * the original FCM with an MG counter sized like the ASketch filter
//!   ([`Fcm::new`] with `mg_capacity = Some(..)`), and
//! * the "modified FCM" used *inside* ASketch-FCM, which drops the MG
//!   counter entirely (`mg_capacity = None`) because the ASketch filter
//!   already separates the heavy items (paper §7.3).
//!
//! Caveat (inherited from FCM itself): an item that changes classification
//! mid-stream has touched different row subsets over time, so the min over
//! its *current* subset can in principle under-count. High-set rows are a
//! prefix of low-set rows under this row-selection rule, which confines the
//! effect to items that were classified high and later fell out of the MG
//! counter — rare for genuinely light items.

use serde::{Deserialize, Serialize};

use crate::cell::Cell;
use crate::count_min::LOOKAHEAD;
use crate::hash::{HashBank, PairwiseHash, SplitMix64};
use crate::lookup::prefetch_read;
use crate::misra_gries::MisraGries;
use crate::persist::{self, Persist, PersistError};
use crate::traits::{FrequencyEstimator, Mergeable, Tuple, UpdateEstimate};
use crate::view::{AtomicCells, SharedView};
use crate::SketchError;

/// FCM with 64-bit cells (workspace default).
pub type Fcm = FcmG<i64>;

/// FCM with 32-bit cells (the paper's layout; saturating).
pub type Fcm32 = FcmG<i32>;

/// Frequency-Aware Counting sketch, generic over its counter-cell width.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct FcmG<C: Cell = i64> {
    hashes: HashBank,
    /// Maps a key to the first row index.
    offset_hash: PairwiseHash,
    /// Maps a key to the row stride (adjusted to be coprime with `w`).
    gap_hash: PairwiseHash,
    table: Vec<C>,
    h: usize,
    /// Rows used for items classified high-frequency.
    rows_high: usize,
    /// Rows used for items classified low-frequency.
    rows_low: usize,
    /// Online heavy-item detector; `None` for the ASketch-FCM variant.
    mg: Option<MisraGries>,
    /// Seed every hash structure was derived from (needed to persist and
    /// to validate merges).
    seed: u64,
}

/// Greatest common divisor, used to force the row stride coprime with `w`.
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl<C: Cell> FcmG<C> {
    /// Create an FCM sketch with `depth` rows of `width` cells.
    ///
    /// `mg_capacity = Some(c)` attaches a Misra–Gries detector monitoring
    /// `c` items (its space is *included* in [`FrequencyEstimator::size_bytes`]);
    /// `None` treats every item as low-frequency (ASketch-FCM variant).
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidDimensions`] for zero dimensions or an
    /// MG capacity of zero.
    pub fn new(
        seed: u64,
        depth: usize,
        width: usize,
        mg_capacity: Option<usize>,
    ) -> Result<Self, SketchError> {
        if depth == 0 || width == 0 {
            return Err(SketchError::InvalidDimensions {
                what: format!("depth={depth}, width={width}"),
            });
        }
        let mut rng = SplitMix64::new(seed ^ 0xFC0F_FC0F_FC0F_FC0F);
        let offset_hash = PairwiseHash::from_rng(&mut rng, depth);
        // Gap drawn from [0, depth); adjusted per key to the next value
        // coprime with depth (see `rows_of`).
        let gap_hash = PairwiseHash::from_rng(&mut rng, depth.max(2));
        // Row counts per the paper: w/2 for high-frequency, 4w/5 for
        // low-frequency items, both at least 1.
        let rows_high = (depth / 2).max(1);
        let rows_low = (4 * depth).div_ceil(5).max(rows_high);
        let mg = match mg_capacity {
            Some(c) => Some(MisraGries::new(c)?),
            None => None,
        };
        Ok(Self {
            hashes: HashBank::new(seed, depth, width),
            offset_hash,
            gap_hash,
            table: vec![C::default(); depth * width],
            h: width,
            rows_high,
            rows_low,
            mg,
            seed,
        })
    }

    /// Create an FCM fitting within `budget_bytes`, *including* the MG
    /// counter's space so comparisons against other methods are fair
    /// (paper Table 1 allocates the same total space to every method).
    ///
    /// # Errors
    /// Returns an error when the budget cannot hold the MG counter plus one
    /// cell per row.
    pub fn with_byte_budget(
        seed: u64,
        depth: usize,
        budget_bytes: usize,
        mg_capacity: Option<usize>,
    ) -> Result<Self, SketchError> {
        let mg_bytes = mg_capacity.map_or(0, |c| c * 16);
        let remaining = budget_bytes
            .checked_sub(mg_bytes)
            .ok_or(SketchError::BudgetTooSmall {
                needed: mg_bytes + depth * C::BYTES,
                available: budget_bytes,
            })?;
        let width = remaining / (depth * C::BYTES);
        if width == 0 {
            return Err(SketchError::BudgetTooSmall {
                needed: mg_bytes + depth * C::BYTES,
                available: budget_bytes,
            });
        }
        Self::new(seed, depth, width, mg_capacity)
    }

    /// Number of rows (`w`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.hashes.width()
    }

    /// Row length (`h`).
    #[inline]
    pub fn width(&self) -> usize {
        self.h
    }

    /// Rows used for high-frequency items.
    #[inline]
    pub fn rows_high(&self) -> usize {
        self.rows_high
    }

    /// Rows used for low-frequency items.
    #[inline]
    pub fn rows_low(&self) -> usize {
        self.rows_low
    }

    /// The seed this sketch was built with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether `key` is currently classified as high-frequency.
    #[inline]
    pub fn is_high_frequency(&self, key: u64) -> bool {
        self.mg.as_ref().is_some_and(|mg| mg.contains(key))
    }

    /// The per-key row-selection parameters: start row and stride
    /// (adjusted to be coprime with `w` so strides visit distinct rows).
    #[inline]
    fn offset_gap(&self, key: u64) -> (usize, usize) {
        let w = self.depth();
        let offset = self.offset_hash.hash(key);
        let mut gap = 1 + self.gap_hash.hash(key) % (w.max(2) - 1).max(1);
        while gcd(gap, w) != 1 {
            gap += 1;
        }
        (offset, gap)
    }

    /// The row indices `key` maps to when touching `r` rows.
    /// (Hot paths inline the equivalent loop; kept for white-box tests.)
    #[cfg(test)]
    fn rows_of(&self, key: u64, r: usize) -> impl Iterator<Item = usize> + '_ {
        let w = self.depth();
        let (offset, gap) = self.offset_gap(key);
        (0..r).map(move |i| (offset + i * gap) % w)
    }

    /// Prefetch the cells of `key`'s *low-frequency* row set — a superset
    /// of the high-frequency set (high rows are a prefix of low rows), so
    /// the hint is right regardless of how the MG counter will classify the
    /// key when the update lands.
    #[inline]
    fn prefetch_rows(&self, key: u64) {
        let w = self.depth();
        let (offset, gap) = self.offset_gap(key);
        for i in 0..self.rows_low {
            let row = (offset + i * gap) % w;
            prefetch_read(&self.table[row * self.h + self.hashes.hash(row, key)]);
        }
    }

    fn estimate_over(&self, key: u64, r: usize) -> i64 {
        let w = self.depth();
        let (offset, gap) = self.offset_gap(key);
        let mut est = i64::MAX;
        for i in 0..r {
            let row = (offset + i * gap) % w;
            let v = self.table[row * self.h + self.hashes.hash(row, key)].to_i64();
            if v < est {
                est = v;
            }
        }
        est
    }
}

impl<C: Cell> FrequencyEstimator for FcmG<C> {
    fn update(&mut self, key: u64, delta: i64) {
        // Classify first (the MG counter observes every arrival), then hash
        // into the classification's row subset.
        let high = if let Some(mg) = self.mg.as_mut() {
            if delta > 0 {
                mg.observe(key)
            } else {
                mg.contains(key)
            }
        } else {
            false
        };
        let r = if high { self.rows_high } else { self.rows_low };
        let w = self.depth();
        let (offset, gap) = self.offset_gap(key);
        for i in 0..r {
            let row = (offset + i * gap) % w;
            let idx = row * self.h + self.hashes.hash(row, key);
            self.table[idx] = self.table[idx].saturating_add_i64(delta);
        }
    }

    fn estimate(&self, key: u64) -> i64 {
        let r = if self.is_high_frequency(key) {
            self.rows_high
        } else {
            self.rows_low
        };
        self.estimate_over(key, r)
    }

    fn size_bytes(&self) -> usize {
        self.table.len() * C::BYTES + self.mg.as_ref().map_or(0, |mg| mg.size_bytes())
    }

    /// Batched ingest: tuples are applied strictly in order (the MG
    /// classifier's state is order-sensitive), but each tuple's candidate
    /// cells are prefetched [`LOOKAHEAD`] tuples ahead, hiding the table
    /// misses behind the classify/hash work of the preceding tuples.
    fn update_batch(&mut self, tuples: &[Tuple]) {
        for &(key, _) in tuples.iter().take(LOOKAHEAD) {
            self.prefetch_rows(key);
        }
        for i in 0..tuples.len() {
            if let Some(&(next_key, _)) = tuples.get(i + LOOKAHEAD) {
                self.prefetch_rows(next_key);
            }
            let (key, delta) = tuples[i];
            self.update(key, delta);
        }
    }

    /// Pull each key's candidate cells into cache. Advisory only.
    #[inline]
    fn prime(&self, keys: &[u64]) {
        for &key in keys {
            self.prefetch_rows(key);
        }
    }
}

/// Published replica of an [`FcmG`]: hash parameters, an atomic copy of
/// the counter table, and a snapshot of the Misra–Gries high-frequency key
/// set (empty for the ASketch-FCM variant, which has no MG detector).
///
/// The high-key snapshot is republished wholesale on every
/// [`SharedView::store_view`]; a reader racing a publish may transiently
/// classify a key with the previous epoch's row subset — the same
/// classification-drift caveat FCM itself carries (see the module docs).
/// With `mg_capacity = None` (the configuration the concurrent ASketch
/// runtime uses) classification is constant and the replica is exact.
#[derive(Debug)]
pub struct FcmView {
    hashes: HashBank,
    offset_hash: PairwiseHash,
    gap_hash: PairwiseHash,
    h: usize,
    rows_high: usize,
    rows_low: usize,
    cells: AtomicCells,
    /// Snapshot of the MG key set, `u64::MAX`-padded to its capacity.
    high_keys: Box<[std::sync::atomic::AtomicU64]>,
}

impl FcmView {
    #[inline]
    fn is_high(&self, key: u64) -> bool {
        self.high_keys
            .iter()
            .any(|k| k.load(std::sync::atomic::Ordering::Relaxed) == key)
    }
}

impl<C: Cell> SharedView for FcmG<C> {
    type View = FcmView;

    fn new_view(&self) -> FcmView {
        let cap = self.mg.as_ref().map_or(0, |mg| mg.capacity());
        let high_keys: Vec<std::sync::atomic::AtomicU64> = (0..cap)
            .map(|_| std::sync::atomic::AtomicU64::new(u64::MAX))
            .collect();
        let view = FcmView {
            hashes: self.hashes.clone(),
            offset_hash: self.offset_hash,
            gap_hash: self.gap_hash,
            h: self.h,
            rows_high: self.rows_high,
            rows_low: self.rows_low,
            cells: AtomicCells::new(self.table.len()),
            high_keys: high_keys.into_boxed_slice(),
        };
        self.store_view(&view);
        view
    }

    fn store_view(&self, view: &FcmView) {
        debug_assert_eq!(view.cells.len(), self.table.len());
        view.cells.store_all(self.table.iter().map(|c| c.to_i64()));
        if let Some(mg) = self.mg.as_ref() {
            let monitored = mg.items();
            for (slot, entry) in view.high_keys.iter().zip(
                monitored
                    .iter()
                    .map(|&(k, _)| k)
                    .chain(std::iter::repeat(u64::MAX)),
            ) {
                slot.store(entry, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    /// Replicates [`FcmG::estimate`]: classify against the snapshotted MG
    /// key set, then take the min over the classification's row subset.
    fn view_estimate(view: &FcmView, key: u64) -> i64 {
        let w = view.hashes.width();
        let offset = view.offset_hash.hash(key);
        let mut gap = 1 + view.gap_hash.hash(key) % (w.max(2) - 1).max(1);
        while gcd(gap, w) != 1 {
            gap += 1;
        }
        let r = if view.is_high(key) {
            view.rows_high
        } else {
            view.rows_low
        };
        let mut est = i64::MAX;
        for i in 0..r {
            let row = (offset + i * gap) % w;
            let v = view.cells.load(row * view.h + view.hashes.hash(row, key));
            if v < est {
                est = v;
            }
        }
        est
    }
}

impl<C: Cell> UpdateEstimate for FcmG<C> {
    /// Single-pass update+estimate over the key's row subset; matters for
    /// ASketch-FCM, whose overflow path calls this on every forwarded tuple.
    fn update_and_estimate(&mut self, key: u64, delta: i64) -> i64 {
        let high = if let Some(mg) = self.mg.as_mut() {
            if delta > 0 {
                mg.observe(key)
            } else {
                mg.contains(key)
            }
        } else {
            false
        };
        let r = if high { self.rows_high } else { self.rows_low };
        let w = self.depth();
        let (offset, gap) = self.offset_gap(key);
        let mut est = i64::MAX;
        for i in 0..r {
            let row = (offset + i * gap) % w;
            let idx = row * self.h + self.hashes.hash(row, key);
            self.table[idx] = self.table[idx].saturating_add_i64(delta);
            let v = self.table[idx].to_i64();
            if v < est {
                est = v;
            }
        }
        est
    }
}

impl<C: Cell> Mergeable for FcmG<C> {
    /// Merge another FCM's counters into this one.
    ///
    /// Sound only when both sketches share seed and geometry (identical
    /// per-key row subsets) *and* neither carries a Misra–Gries detector:
    /// the MG state is order-sensitive, so there is no merged classifier
    /// that reproduces either input stream's row selection. MG-carrying
    /// sketches are rejected with a typed error instead of silently
    /// corrupting classification.
    fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.seed != other.seed || self.h != other.h || self.depth() != other.depth() {
            return Err(SketchError::IncompatibleMerge {
                what: format!(
                    "FCM {}x{} seed {} vs {}x{} seed {}",
                    self.depth(),
                    self.h,
                    self.seed,
                    other.depth(),
                    other.h,
                    other.seed
                ),
            });
        }
        if self.mg.is_some() || other.mg.is_some() {
            return Err(SketchError::IncompatibleMerge {
                what: "FCM with a Misra-Gries detector is not mergeable \
                       (order-sensitive classification)"
                    .into(),
            });
        }
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a = a.saturating_add_i64(b.to_i64());
        }
        Ok(())
    }
}

/// Payload tag for persisted FCM state (`"SKFC"`).
const PERSIST_TAG: u32 = u32::from_le_bytes(*b"SKFC");

impl<C: Cell> Persist for FcmG<C> {
    /// Layout: tag, cell width, `seed`, `depth`, `width`, MG capacity
    /// (0 = no detector), the row-major table widened to `i64`, then the MG
    /// raw slot arrays verbatim. Slot order matters: a new MG key claims
    /// the first free slot, so [`MisraGries::raw_slots`] is persisted
    /// as-is rather than the sorted item view.
    fn write_state(&self, out: &mut Vec<u8>) {
        persist::put_u32(out, PERSIST_TAG);
        persist::put_u8(out, C::BYTES as u8);
        persist::put_u64(out, self.seed);
        persist::put_u64(out, self.depth() as u64);
        persist::put_u64(out, self.h as u64);
        persist::put_u64(out, self.mg.as_ref().map_or(0, |mg| mg.capacity()) as u64);
        for c in &self.table {
            persist::put_i64(out, c.to_i64());
        }
        if let Some(mg) = self.mg.as_ref() {
            let (ids, counts) = mg.raw_slots();
            for &id in ids {
                persist::put_u64(out, id);
            }
            for &c in counts {
                persist::put_i64(out, c);
            }
        }
    }

    fn read_state(r: &mut persist::ByteReader<'_>) -> Result<Self, PersistError> {
        persist::expect_tag(r, PERSIST_TAG, "FCM")?;
        let cell = r.u8("FCM cell width")?;
        if cell as usize != C::BYTES {
            return Err(PersistError::Corrupt {
                what: format!("FCM cell width {cell} != expected {}", C::BYTES),
            });
        }
        let seed = r.u64("FCM seed")?;
        let depth = r.u64("FCM depth")? as usize;
        let width = r.u64("FCM width")? as usize;
        let mg_cap = r.u64("FCM mg capacity")? as usize;
        let cells = depth
            .checked_mul(width)
            .ok_or_else(|| PersistError::Corrupt {
                what: format!("FCM {depth}x{width} table overflows"),
            })?;
        if cells
            .checked_add(mg_cap.saturating_mul(2))
            .is_none_or(|n| n.checked_mul(8).is_none_or(|b| b > r.remaining()))
        {
            return Err(PersistError::Corrupt {
                what: format!("FCM {depth}x{width} (mg {mg_cap}) state exceeds payload"),
            });
        }
        let mut s = Self::new(seed, depth, width, (mg_cap > 0).then_some(mg_cap))?;
        for c in s.table.iter_mut() {
            *c = C::from_i64_saturating(r.i64("FCM cell")?);
        }
        if mg_cap > 0 {
            let mut ids = Vec::with_capacity(mg_cap);
            for _ in 0..mg_cap {
                ids.push(r.u64("FCM mg id")?);
            }
            let mut counts = Vec::with_capacity(mg_cap);
            for _ in 0..mg_cap {
                counts.push(r.i64("FCM mg count")?);
            }
            s.mg = Some(MisraGries::from_raw_slots(ids, counts)?);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_round_trips_and_resumes_identically() {
        // The restored sketch must not only answer identically but also
        // *evolve* identically — MG slot order is part of the state.
        for mg in [None, Some(8)] {
            let mut fcm = Fcm::new(7, 8, 256, mg).unwrap();
            let mut x = 1u64;
            for _ in 0..4_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
                fcm.insert(x % 300);
            }
            let mut back = Fcm::from_state_bytes(&fcm.to_state_bytes()).unwrap();
            for key in 0..300u64 {
                assert_eq!(back.estimate(key), fcm.estimate(key), "mg={mg:?} key={key}");
                assert_eq!(back.is_high_frequency(key), fcm.is_high_frequency(key));
            }
            for _ in 0..4_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
                fcm.insert(x % 300);
                back.insert(x % 300);
            }
            for key in 0..300u64 {
                assert_eq!(back.estimate(key), fcm.estimate(key), "post-resume {key}");
            }
        }
    }

    #[test]
    fn persist_rejects_32_64_confusion() {
        let fcm = Fcm::new(7, 4, 64, Some(4)).unwrap();
        assert!(matches!(
            Fcm32::from_state_bytes(&fcm.to_state_bytes()),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn merge_combines_mg_free_tables() {
        let mut a = Fcm::new(11, 8, 512, None).unwrap();
        let mut b = Fcm::new(11, 8, 512, None).unwrap();
        a.update(5, 3);
        b.update(5, 4);
        b.update(9, 2);
        a.merge(&b).unwrap();
        assert!(a.estimate(5) >= 7);
        assert!(a.estimate(9) >= 2);
    }

    #[test]
    fn merge_rejects_mismatched_geometry_and_mg() {
        let mut a = Fcm::new(11, 8, 512, None).unwrap();
        let seed = Fcm::new(12, 8, 512, None).unwrap();
        let width = Fcm::new(11, 8, 256, None).unwrap();
        let depth = Fcm::new(11, 4, 512, None).unwrap();
        for other in [&seed, &width, &depth] {
            assert!(matches!(
                a.merge(other),
                Err(SketchError::IncompatibleMerge { .. })
            ));
        }
        let with_mg = Fcm::new(11, 8, 512, Some(8)).unwrap();
        assert!(matches!(
            a.merge(&with_mg),
            Err(SketchError::IncompatibleMerge { .. })
        ));
        let mut with_mg = with_mg;
        let plain = Fcm::new(11, 8, 512, None).unwrap();
        assert!(matches!(
            with_mg.merge(&plain),
            Err(SketchError::IncompatibleMerge { .. })
        ));
    }

    #[test]
    fn gcd_works() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 8), 1);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn rows_are_distinct() {
        let fcm = Fcm::new(3, 8, 64, None).unwrap();
        for key in 0..200u64 {
            let rows: Vec<usize> = fcm.rows_of(key, fcm.rows_low()).collect();
            let mut dedup = rows.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), rows.len(), "duplicate rows for key {key}");
        }
    }

    #[test]
    fn high_rows_prefix_of_low_rows() {
        let fcm = Fcm::new(3, 8, 64, Some(8)).unwrap();
        for key in 0..50u64 {
            let high: Vec<usize> = fcm.rows_of(key, fcm.rows_high()).collect();
            let low: Vec<usize> = fcm.rows_of(key, fcm.rows_low()).collect();
            assert_eq!(&low[..high.len()], &high[..]);
        }
    }

    #[test]
    fn exact_when_sparse_without_mg() {
        let mut fcm = Fcm::new(5, 8, 1 << 14, None).unwrap();
        for key in 0..100u64 {
            fcm.update(key, (key as i64) + 1);
        }
        for key in 0..100u64 {
            assert_eq!(fcm.estimate(key), (key as i64) + 1);
        }
    }

    #[test]
    fn one_sided_for_stable_classification() {
        // Without the MG counter every item is permanently low-frequency,
        // so the one-sided guarantee is unconditional.
        let mut fcm = Fcm::new(5, 8, 32, None).unwrap();
        let mut truth = std::collections::HashMap::new();
        let mut x = 99u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(17);
            let key = x % 300;
            fcm.insert(key);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (&key, &t) in &truth {
            assert!(fcm.estimate(key) >= t, "under-count for {key}");
        }
    }

    #[test]
    fn mg_classifies_heavy_items() {
        let mut fcm = Fcm::new(5, 8, 1 << 12, Some(8)).unwrap();
        for i in 0..10_000u64 {
            if i % 3 == 0 {
                fcm.insert(42);
            } else {
                fcm.insert(1000 + i);
            }
        }
        assert!(fcm.is_high_frequency(42));
        // The heavy key's estimate covers its true count.
        assert!(fcm.estimate(42) >= (10_000 / 3) as i64);
    }

    #[test]
    fn update_batch_matches_scalar_loop_with_mg() {
        // The MG classifier makes FCM order-sensitive; batch must preserve
        // per-tuple ordering exactly, including negative deltas.
        for mg in [None, Some(8)] {
            let mut batched = Fcm::new(17, 8, 256, mg).unwrap();
            let mut scalar = Fcm::new(17, 8, 256, mg).unwrap();
            let mut x = 5u64;
            let tuples: Vec<Tuple> = (0..2000)
                .map(|i| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
                    let key = if i % 4 == 0 { 7 } else { x % 400 };
                    let delta = if i % 11 == 5 { -1 } else { 1 };
                    (key, delta)
                })
                .collect();
            batched.update_batch(&tuples);
            for &(k, u) in &tuples {
                scalar.update(k, u);
            }
            for key in 0..400u64 {
                assert_eq!(
                    batched.estimate(key),
                    scalar.estimate(key),
                    "mg={mg:?} key={key}"
                );
                assert_eq!(
                    batched.is_high_frequency(key),
                    scalar.is_high_frequency(key),
                    "mg={mg:?} key={key}"
                );
            }
        }
    }

    #[test]
    fn shared_view_matches_estimate_exactly() {
        // Both variants: the MG-less ASketch-FCM (always-low, exact by
        // construction) and the full FCM with a live MG detector.
        for mg in [None, Some(8)] {
            let mut fcm = Fcm::new(31, 8, 256, mg).unwrap();
            let view = fcm.new_view();
            let mut x = 11u64;
            for i in 0..8_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
                let key = if i % 3 == 0 { 42 } else { x % 500 };
                fcm.insert(key);
            }
            fcm.store_view(&view);
            for key in 0..500u64 {
                assert_eq!(
                    Fcm::view_estimate(&view, key),
                    fcm.estimate(key),
                    "mg={mg:?} key={key}"
                );
            }
        }
    }

    #[test]
    fn budget_includes_mg() {
        let with_mg = Fcm::with_byte_budget(1, 8, 64 * 1024, Some(32)).unwrap();
        let without = Fcm::with_byte_budget(1, 8, 64 * 1024, None).unwrap();
        assert!(
            with_mg.width() < without.width(),
            "MG space must come out of the table"
        );
        assert!(with_mg.size_bytes() <= 64 * 1024);
        assert!(Fcm::with_byte_budget(1, 8, 64, Some(32)).is_err());
    }
}
