//! Lock-free shared read views: a sketch publishes an atomic replica of its
//! counter table that concurrent readers can query while the owning thread
//! keeps ingesting.
//!
//! # Model
//!
//! A [`SharedView::View`] is an immutable-shape, atomically-written copy of
//! everything a point query needs: the hash parameters (cloned once at
//! construction, they never change) and one `AtomicI64` per counter cell.
//! The owner calls [`SharedView::store_view`] periodically (an *epoch
//! publish*); readers call [`SharedView::view_estimate`] at any time, with
//! no lock and no coordination.
//!
//! # Why torn reads are safe here
//!
//! Cells are published with `Relaxed` stores, so a reader can observe a mix
//! of two epochs. For the one-sided sketches in this workspace that is
//! harmless on insert-only streams: every cell is monotonically
//! non-decreasing, so each cell a reader loads lies between its value at
//! the previous publish and its value at the next one — and a min over
//! such cells lies between the previous epoch's estimate and the live
//! estimate. Runtimes that need a crisper bound (the concurrent ASketch
//! runtime) pair the view with a seqlock-published exact filter and
//! document the combined staleness window in ops.

use std::sync::atomic::{AtomicI64, Ordering};

use crate::hash::PairwiseHash;
use crate::traits::FrequencyEstimator;

/// A flat array of atomically readable counter cells, the storage half of
/// every [`SharedView::View`].
#[derive(Debug)]
pub struct AtomicCells {
    cells: Box<[AtomicI64]>,
}

impl AtomicCells {
    /// Allocate `len` zeroed cells.
    pub fn new(len: usize) -> Self {
        let cells: Vec<AtomicI64> = (0..len).map(|_| AtomicI64::new(0)).collect();
        Self {
            cells: cells.into_boxed_slice(),
        }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the view holds no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically read cell `i`.
    #[inline]
    pub fn load(&self, i: usize) -> i64 {
        self.cells[i].load(Ordering::Relaxed)
    }

    /// Atomically write cell `i`.
    #[inline]
    pub fn store(&self, i: usize, v: i64) {
        self.cells[i].store(v, Ordering::Relaxed);
    }

    /// Overwrite every cell from an iterator of current values (an epoch
    /// publish). Extra source values are ignored; missing ones leave the
    /// tail untouched.
    pub fn store_all(&self, values: impl Iterator<Item = i64>) {
        for (cell, v) in self.cells.iter().zip(values) {
            cell.store(v, Ordering::Relaxed);
        }
    }
}

/// Published replica of a [`crate::blocked::BlockedCountMinG`]: the two
/// hash functions (immutable) plus an atomic, `i64`-widened copy of every
/// bucket's cells. The same torn-read argument as the module docs applies —
/// blocked cells are monotone on insert-only streams, and the min over a
/// key's in-line slots is sandwiched between the previous publish and the
/// live value.
#[derive(Debug)]
pub struct BlockedView {
    /// Maps a key to its bucket (one cache line).
    pub(crate) bucket_hash: PairwiseHash,
    /// Seeds the in-line slot derivation for a key.
    pub(crate) slot_hash: PairwiseHash,
    /// In-line probes per key (`d`).
    pub(crate) depth: usize,
    /// Cells per bucket line.
    pub(crate) slots: usize,
    /// `buckets × slots` cells, widened to `i64`.
    pub(crate) cells: AtomicCells,
}

/// A sketch that can publish a lock-free shared replica of itself for
/// concurrent point queries.
///
/// The contract:
///
/// * [`new_view`](Self::new_view) allocates a view sized for this sketch,
///   initialised to the sketch's *current* contents;
/// * [`store_view`](Self::store_view) re-publishes the current contents
///   into an existing view (cheap enough to call every few thousand ops);
/// * [`view_estimate`](Self::view_estimate) answers exactly what
///   [`FrequencyEstimator::estimate`] would answer against the contents at
///   the last complete publish (modulo the torn-read window described in
///   the module docs).
///
/// After a final `store_view` with the owner quiesced, `view_estimate`
/// equals `estimate` *exactly* for every key.
pub trait SharedView: FrequencyEstimator {
    /// The published replica type. `Send + Sync` so reader threads can
    /// share it behind an `Arc`.
    type View: Send + Sync + 'static;

    /// Allocate a view of this sketch and publish the current contents.
    fn new_view(&self) -> Self::View;

    /// Publish the sketch's current contents into `view`.
    fn store_view(&self, view: &Self::View);

    /// Point query against the published replica.
    fn view_estimate(view: &Self::View, key: u64) -> i64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_cells_round_trip() {
        let c = AtomicCells::new(4);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        c.store(3, 41);
        assert_eq!(c.load(3), 41);
        c.store_all([1i64, 2, 3].into_iter());
        assert_eq!((c.load(0), c.load(1), c.load(2), c.load(3)), (1, 2, 3, 41));
    }
}
