//! Space Saving with the Stream-Summary data structure
//! (Metwally, Agrawal & El Abbadi, ICDT 2005 — reference \[27\]).
//!
//! Space Saving monitors exactly `m` items. A monitored arrival increments
//! the item's counter; an unmonitored arrival when full *replaces* the item
//! with the minimum counter, inheriting that minimum as over-estimation
//! `error`. Guarantees: every item with true count above `N/m` is monitored,
//! and `count - error <= true <= count` for monitored items.
//!
//! The Stream-Summary keeps items grouped in *buckets* of equal count;
//! buckets form a doubly-linked list in ascending count order, so both
//! "find the minimum" and "increment an item" are O(1) for unit updates.
//! We implement the links as indices into slabs (no pointer chasing through
//! separate allocations, no unsafe), with a hash map for key lookup —
//! exactly the "hash table + stream summary" composition the paper describes
//! (and measures as its pointer-heavy filter alternative).
//!
//! For frequency-estimation queries on *unmonitored* items the literature
//! offers two conventions, both evaluated in the paper's Figure 11:
//! return the minimum counter ([`UnmonitoredEstimate::Min`], never
//! under-estimates) or return 0 ([`UnmonitoredEstimate::Zero`]).

use serde::{Deserialize, Serialize};

use crate::fast_map::FxHashMap;
use crate::traits::{FrequencyEstimator, TopK};
use crate::SketchError;

const NIL: usize = usize::MAX;

/// Convention for estimating the frequency of an unmonitored item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnmonitoredEstimate {
    /// Return the minimum counter (suggested in \[27\]; one-sided).
    Min,
    /// Return zero (suggested in \[9\]; lower total error on skewed data).
    Zero,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Item {
    key: u64,
    count: i64,
    /// Maximum possible over-estimation inherited at replacement time.
    error: i64,
    bucket: usize,
    prev: usize,
    next: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Bucket {
    count: i64,
    /// Head of this bucket's item list.
    head: usize,
    prev: usize,
    next: usize,
    len: usize,
}

/// Space Saving summary over a Stream-Summary structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving {
    items: Vec<Item>,
    buckets: Vec<Bucket>,
    /// Free slots in `buckets` available for reuse.
    free_buckets: Vec<usize>,
    /// First (minimum-count) bucket, or NIL when empty.
    min_bucket: usize,
    /// key -> item slot.
    index: FxHashMap<u64, usize>,
    capacity: usize,
    mode: UnmonitoredEstimate,
}

impl SpaceSaving {
    /// Create a summary monitoring at most `capacity` items.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidDimensions`] if `capacity == 0`.
    pub fn new(capacity: usize, mode: UnmonitoredEstimate) -> Result<Self, SketchError> {
        if capacity == 0 {
            return Err(SketchError::InvalidDimensions {
                what: "SpaceSaving capacity=0".into(),
            });
        }
        Ok(Self {
            items: Vec::with_capacity(capacity),
            buckets: Vec::with_capacity(capacity.min(64)),
            free_buckets: Vec::new(),
            min_bucket: NIL,
            index: FxHashMap::default(),
            capacity,
            mode,
        })
    }

    /// Heap bytes per monitored item for this layout: the item slab entry,
    /// the bucket share, and the hash-map entry. This is the "up to four
    /// pointers per item" overhead the paper charges Stream-Summary with.
    pub const BYTES_PER_ITEM: usize =
        std::mem::size_of::<Item>() + std::mem::size_of::<Bucket>() / 2 + 24;

    /// Create a summary sized to fit within `budget_bytes`.
    ///
    /// # Errors
    /// Returns [`SketchError::BudgetTooSmall`] when not even one item fits.
    pub fn with_byte_budget(
        budget_bytes: usize,
        mode: UnmonitoredEstimate,
    ) -> Result<Self, SketchError> {
        let capacity = budget_bytes / Self::BYTES_PER_ITEM;
        if capacity == 0 {
            return Err(SketchError::BudgetTooSmall {
                needed: Self::BYTES_PER_ITEM,
                available: budget_bytes,
            });
        }
        Self::new(capacity, mode)
    }

    /// Maximum number of monitored items.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently monitored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the summary monitors no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The minimum counter among monitored items (0 when not yet full, per
    /// the algorithm's semantics: an unmonitored item would start from the
    /// evicted minimum, which is 0 while free slots remain).
    #[inline]
    pub fn min_count(&self) -> i64 {
        if self.len() < self.capacity || self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket].count
        }
    }

    /// Count and error for a monitored key.
    pub fn get(&self, key: u64) -> Option<(i64, i64)> {
        self.index.get(&key).map(|&slot| {
            let it = &self.items[slot];
            (it.count, it.error)
        })
    }

    /// Guaranteed (error-free) portion of a monitored key's count.
    pub fn guaranteed_count(&self, key: u64) -> Option<i64> {
        self.get(key).map(|(c, e)| c - e)
    }

    fn alloc_bucket(&mut self, count: i64) -> usize {
        let b = Bucket {
            count,
            head: NIL,
            prev: NIL,
            next: NIL,
            len: 0,
        };
        if let Some(idx) = self.free_buckets.pop() {
            self.buckets[idx] = b;
            idx
        } else {
            self.buckets.push(b);
            self.buckets.len() - 1
        }
    }

    /// Insert bucket `nb` immediately after `after` (NIL = at the front).
    fn link_bucket_after(&mut self, nb: usize, after: usize) {
        if after == NIL {
            let old_head = self.min_bucket;
            self.buckets[nb].next = old_head;
            self.buckets[nb].prev = NIL;
            if old_head != NIL {
                self.buckets[old_head].prev = nb;
            }
            self.min_bucket = nb;
        } else {
            let next = self.buckets[after].next;
            self.buckets[nb].prev = after;
            self.buckets[nb].next = next;
            self.buckets[after].next = nb;
            if next != NIL {
                self.buckets[next].prev = nb;
            }
        }
    }

    fn unlink_bucket(&mut self, b: usize) {
        let (prev, next) = (self.buckets[b].prev, self.buckets[b].next);
        if prev != NIL {
            self.buckets[prev].next = next;
        } else {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next].prev = prev;
        }
        self.free_buckets.push(b);
    }

    fn attach_item(&mut self, slot: usize, bucket: usize) {
        let head = self.buckets[bucket].head;
        self.items[slot].bucket = bucket;
        self.items[slot].prev = NIL;
        self.items[slot].next = head;
        if head != NIL {
            self.items[head].prev = slot;
        }
        self.buckets[bucket].head = slot;
        self.buckets[bucket].len += 1;
    }

    /// Detach `slot` from its bucket; removes the bucket if it empties.
    fn detach_item(&mut self, slot: usize) {
        let b = self.items[slot].bucket;
        let (prev, next) = (self.items[slot].prev, self.items[slot].next);
        if prev != NIL {
            self.items[prev].next = next;
        } else {
            self.buckets[b].head = next;
        }
        if next != NIL {
            self.items[next].prev = prev;
        }
        self.buckets[b].len -= 1;
        if self.buckets[b].len == 0 {
            self.unlink_bucket(b);
        }
    }

    /// Move `slot` to the bucket for `new_count`, walking forward from its
    /// current bucket. O(1) for unit increments; O(buckets walked) for
    /// larger deltas.
    fn move_item_to_count(&mut self, slot: usize, new_count: i64) {
        let cur = self.items[slot].bucket;
        debug_assert!(new_count > self.buckets[cur].count);
        // Find insertion point: the last bucket (starting at cur) with
        // count < new_count. The current bucket may disappear on detach, so
        // record the scan path first.
        let mut after = cur;
        let mut next = self.buckets[cur].next;
        while next != NIL && self.buckets[next].count < new_count {
            after = next;
            next = self.buckets[next].next;
        }
        let target = if next != NIL && self.buckets[next].count == new_count {
            Some(next)
        } else {
            None
        };
        // `after` may equal `cur`; if cur empties on detach it is unlinked,
        // in which case the new bucket links after cur's predecessor.
        let after_prev = self.buckets[after].prev;
        let cur_will_vanish = self.buckets[cur].len == 1;
        self.detach_item(slot);
        self.items[slot].count = new_count;
        match target {
            Some(b) => self.attach_item(slot, b),
            None => {
                let anchor = if cur_will_vanish && after == cur {
                    after_prev
                } else {
                    after
                };
                let nb = self.alloc_bucket(new_count);
                self.link_bucket_after(nb, anchor);
                self.attach_item(slot, nb);
            }
        }
    }

    /// Process `delta` (> 0) arrivals of `key`.
    pub fn observe(&mut self, key: u64, delta: i64) {
        assert!(delta > 0, "SpaceSaving supports positive updates only");
        if let Some(&slot) = self.index.get(&key) {
            let new_count = self.items[slot].count + delta;
            self.move_item_to_count(slot, new_count);
            return;
        }
        if self.len() < self.capacity {
            // Fresh item with error 0.
            let slot = self.items.len();
            self.items.push(Item {
                key,
                count: delta,
                error: 0,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            // Find/create the bucket for `delta`, scanning from the front.
            let mut after = NIL;
            let mut cur = self.min_bucket;
            while cur != NIL && self.buckets[cur].count < delta {
                after = cur;
                cur = self.buckets[cur].next;
            }
            if cur != NIL && self.buckets[cur].count == delta {
                self.attach_item(slot, cur);
            } else {
                let nb = self.alloc_bucket(delta);
                self.link_bucket_after(nb, after);
                self.attach_item(slot, nb);
            }
            self.index.insert(key, slot);
            return;
        }
        // Full: replace the minimum item.
        let mb = self.min_bucket;
        debug_assert_ne!(mb, NIL);
        let slot = self.buckets[mb].head;
        let min = self.buckets[mb].count;
        let old_key = self.items[slot].key;
        self.index.remove(&old_key);
        self.items[slot].key = key;
        self.items[slot].error = min;
        self.index.insert(key, slot);
        self.move_item_to_count(slot, min + delta);
    }

    /// Verify internal invariants; used by tests and debug assertions.
    /// Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen_items = 0usize;
        let mut prev_count = i64::MIN;
        let mut b = self.min_bucket;
        let mut prev_b = NIL;
        while b != NIL {
            let bucket = &self.buckets[b];
            if bucket.count <= prev_count {
                return Err(format!("bucket counts not strictly ascending at {b}"));
            }
            if bucket.prev != prev_b {
                return Err(format!("bucket {b} has wrong prev link"));
            }
            if bucket.len == 0 {
                return Err(format!("empty bucket {b} still linked"));
            }
            let mut slot = bucket.head;
            let mut prev_slot = NIL;
            let mut n = 0usize;
            while slot != NIL {
                let it = &self.items[slot];
                if it.bucket != b {
                    return Err(format!("item {slot} bucket backlink wrong"));
                }
                if it.count != bucket.count {
                    return Err(format!(
                        "item {slot} count {} != bucket {}",
                        it.count, bucket.count
                    ));
                }
                if it.prev != prev_slot {
                    return Err(format!("item {slot} prev link wrong"));
                }
                if it.error > it.count {
                    return Err(format!("item {slot} error exceeds count"));
                }
                if self.index.get(&it.key) != Some(&slot) {
                    return Err(format!("index missing or wrong for key {}", it.key));
                }
                prev_slot = slot;
                slot = it.next;
                n += 1;
            }
            if n != bucket.len {
                return Err(format!("bucket {b} len {} != walked {n}", bucket.len));
            }
            seen_items += n;
            prev_count = bucket.count;
            prev_b = b;
            b = bucket.next;
        }
        if seen_items != self.index.len() {
            return Err(format!(
                "walked {seen_items} items but index holds {}",
                self.index.len()
            ));
        }
        Ok(())
    }
}

impl FrequencyEstimator for SpaceSaving {
    fn update(&mut self, key: u64, delta: i64) {
        self.observe(key, delta);
    }

    fn estimate(&self, key: u64) -> i64 {
        match self.get(key) {
            Some((count, _)) => count,
            None => match self.mode {
                UnmonitoredEstimate::Min => self.min_count(),
                UnmonitoredEstimate::Zero => 0,
            },
        }
    }

    fn size_bytes(&self) -> usize {
        self.capacity * Self::BYTES_PER_ITEM
    }
}

impl TopK for SpaceSaving {
    fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        // Walk buckets from the tail (max). We do not store a tail pointer,
        // so walk to the end first; top-k is a query-time operation and k is
        // small in all workloads.
        let mut last = NIL;
        let mut b = self.min_bucket;
        while b != NIL {
            last = b;
            b = self.buckets[b].next;
        }
        let mut out = Vec::with_capacity(k);
        let mut b = last;
        while b != NIL && out.len() < k {
            let mut slot = self.buckets[b].head;
            while slot != NIL && out.len() < k {
                let it = &self.items[slot];
                out.push((it.key, it.count));
                slot = it.next;
            }
            b = self.buckets[b].prev;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss(capacity: usize) -> SpaceSaving {
        SpaceSaving::new(capacity, UnmonitoredEstimate::Min).unwrap()
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(SpaceSaving::new(0, UnmonitoredEstimate::Min).is_err());
    }

    #[test]
    fn counts_exact_below_capacity() {
        let mut s = ss(10);
        for i in 0..5u64 {
            for _ in 0..=i {
                s.observe(i, 1);
            }
        }
        s.check_invariants().unwrap();
        for i in 0..5u64 {
            assert_eq!(s.get(i), Some(((i + 1) as i64, 0)));
        }
        assert_eq!(s.min_count(), 0, "not yet full");
    }

    #[test]
    fn eviction_inherits_min_as_error() {
        let mut s = ss(2);
        s.observe(1, 1);
        s.observe(1, 1); // count 2
        s.observe(2, 1); // count 1 (min)
        s.observe(3, 1); // evicts key 2: count = 2, error = 1
        s.check_invariants().unwrap();
        assert_eq!(s.get(2), None);
        assert_eq!(s.get(3), Some((2, 1)));
        assert_eq!(s.guaranteed_count(3), Some(1));
    }

    #[test]
    fn one_sided_overestimate() {
        let mut s = ss(8);
        let mut truth = std::collections::HashMap::new();
        let mut x = 5u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            // Zipf-ish: key 0 heavy, tail light.
            let key = if x.is_multiple_of(3) { 0 } else { x % 500 };
            s.observe(key, 1);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        s.check_invariants().unwrap();
        for (key, count, error) in s.top_k(8).iter().map(|&(k, c)| (k, c, s.get(k).unwrap().1)) {
            let t = truth.get(&key).copied().unwrap_or(0);
            assert!(
                count >= t,
                "count {count} under-estimates true {t} for {key}"
            );
            assert!(count - error <= t, "guaranteed part must not exceed truth");
        }
        // The unambiguous heavy hitter must be monitored and ranked first.
        assert_eq!(s.top_k(1)[0].0, 0);
    }

    #[test]
    fn heavy_hitter_guarantee() {
        // Any item with frequency > N/m is monitored at the end.
        let m = 10;
        let mut s = ss(m);
        let n = 5_000u64;
        for i in 0..n {
            if i % 4 == 0 {
                s.observe(42, 1); // 25% > 1/10
            } else {
                s.observe(i, 1);
            }
        }
        assert!(s.get(42).is_some());
    }

    #[test]
    fn unmonitored_modes() {
        let mut min_mode = SpaceSaving::new(2, UnmonitoredEstimate::Min).unwrap();
        let mut zero_mode = SpaceSaving::new(2, UnmonitoredEstimate::Zero).unwrap();
        for s in [&mut min_mode, &mut zero_mode] {
            s.observe(1, 1);
            s.observe(1, 1);
            s.observe(2, 1);
        }
        assert_eq!(min_mode.estimate(99), 1, "min of the full summary");
        assert_eq!(zero_mode.estimate(99), 0);
    }

    #[test]
    fn large_delta_updates() {
        let mut s = ss(4);
        s.observe(1, 100);
        s.observe(2, 50);
        s.observe(1, 7);
        s.check_invariants().unwrap();
        assert_eq!(s.get(1), Some((107, 0)));
        assert_eq!(s.top_k(2), vec![(1, 107), (2, 50)]);
    }

    #[test]
    #[should_panic(expected = "positive updates only")]
    fn negative_update_panics() {
        ss(2).observe(1, -1);
    }

    #[test]
    fn top_k_orders_descending() {
        let mut s = ss(16);
        for (key, n) in [(1u64, 5), (2, 9), (3, 1), (4, 7)] {
            for _ in 0..n {
                s.observe(key, 1);
            }
        }
        let top = s.top_k(3);
        assert_eq!(top[0], (2, 9));
        assert_eq!(top[1], (4, 7));
        assert_eq!(top[2], (1, 5));
    }

    #[test]
    fn invariants_under_churn() {
        let mut s = ss(7);
        let mut x = 1u64;
        for step in 0..5_000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.observe(x % 50, 1 + (x % 3) as i64);
            if step.is_multiple_of(257) {
                s.check_invariants()
                    .unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        s.check_invariants().unwrap();
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn byte_budget_capacity() {
        let s = SpaceSaving::with_byte_budget(4096, UnmonitoredEstimate::Min).unwrap();
        assert!(s.capacity() >= 1);
        assert!(s.size_bytes() <= 4096 + SpaceSaving::BYTES_PER_ITEM);
        assert!(SpaceSaving::with_byte_budget(1, UnmonitoredEstimate::Min).is_err());
    }
}
