//! Error type for sketch construction and combination.

use std::fmt;

/// Errors raised by sketch constructors and merge operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// A dimension (width, depth, capacity, byte budget) was zero or
    /// otherwise unusable.
    InvalidDimensions {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// Two summaries with different shapes or hash seeds were merged.
    IncompatibleMerge {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// A byte budget was too small to hold the requested structure.
    BudgetTooSmall {
        /// Bytes requested by the configuration.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::InvalidDimensions { what } => {
                write!(f, "invalid sketch dimensions: {what}")
            }
            SketchError::IncompatibleMerge { what } => {
                write!(f, "incompatible sketches cannot be merged: {what}")
            }
            SketchError::BudgetTooSmall { needed, available } => {
                write!(
                    f,
                    "byte budget too small: need at least {needed} bytes, have {available}"
                )
            }
        }
    }
}

impl std::error::Error for SketchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SketchError::BudgetTooSmall {
            needed: 1024,
            available: 64,
        };
        let s = e.to_string();
        assert!(s.contains("1024") && s.contains("64"));
    }
}
