//! # sketches — the frequency-sketch substrate
//!
//! Every stream summary the ASketch paper builds on or compares against,
//! implemented from scratch:
//!
//! * [`CountMin`] — Count-Min sketch \[11\], the default ASketch back-end.
//! * [`BlockedCountMin`] — cache-line-blocked Count-Min: all `d` counters
//!   for a key packed in one 64-byte bucket line, one cache miss per
//!   update/estimate instead of `d`.
//! * [`CountSketch`] — Count Sketch \[7\], an alternative back-end.
//! * [`Fcm`] — Frequency-Aware Counting \[34\], with and without its
//!   Misra–Gries detector.
//! * [`MisraGries`] — the MG frequent-items counter \[28\].
//! * [`SpaceSaving`] — Space Saving over a Stream-Summary structure \[27\].
//! * [`HolisticUdaf`] — run-length pre-aggregation in front of Count-Min
//!   \[10\].
//!
//! Shared infrastructure: pairwise-independent Carter–Wegman hashing
//! ([`hash`]), the vectorized small-array key scan ([`lookup`]) reused by
//! the ASketch filter, and a fast internal hash map ([`fast_map`]).
//!
//! ## Example
//!
//! ```
//! use sketches::{CountMin, FrequencyEstimator};
//!
//! let mut cms = CountMin::with_byte_budget(42, 8, 128 * 1024).unwrap();
//! for _ in 0..1000 {
//!     cms.insert(7);
//! }
//! assert!(cms.estimate(7) >= 1000); // one-sided guarantee
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

pub mod blocked;
pub mod cell;
pub mod count_min;
pub mod count_min_cu;
pub mod count_sketch;
pub mod error;
pub mod fast_map;
pub mod fcm;
pub mod hash;
pub mod heavy_hitters;
pub mod holistic_udaf;
pub mod lookup;
pub mod misra_gries;
pub mod persist;
pub mod space_saving;
pub mod traits;
pub mod view;

pub use blocked::{BlockedCell, BlockedCountMin, BlockedCountMin32, BlockedCountMinG, LINE_BYTES};
pub use cell::Cell;
pub use count_min::{CountMin, CountMin32, CountMinG};
pub use count_min_cu::{CountMinCu, CountMinCu32, CountMinCuG};
pub use count_sketch::{CountSketch, CountSketch32, CountSketchG};
pub use error::SketchError;
pub use fcm::{Fcm, Fcm32, FcmG};
pub use heavy_hitters::SketchHeavyHitters;
pub use holistic_udaf::{HolisticUdaf, HolisticUdaf32, HolisticUdafG};
pub use misra_gries::MisraGries;
pub use persist::{Persist, PersistError};
pub use space_saving::{SpaceSaving, UnmonitoredEstimate};
pub use traits::{FrequencyEstimator, Mergeable, Supervisable, TopK, Tuple, UpdateEstimate};
pub use view::{AtomicCells, BlockedView, SharedView};
