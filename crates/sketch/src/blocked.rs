//! Cache-line-blocked Count-Min sketch.
//!
//! A standard Count-Min update touches `d` counters in `d` *different* rows
//! — `d` random cache lines per tuple. On tables past last-level cache that
//! is `d` DRAM misses, and it is exactly the cost the ASketch filter exists
//! to amortize for hot keys (PAPER.md §1, Figure 5). For the keys that
//! *miss* the filter, the layout itself is the remaining lever (SALSA makes
//! the same observation about counter packing): put all `d` counters for a
//! key in **one 64-byte line**.
//!
//! One bucket = one cache line holding [`BlockedCountMinG::SLOTS`] cells
//! (8×`i64` or 16×`i32`). A single pairwise-independent hash picks the
//! bucket; a second pairwise-independent hash is expanded into `d` *distinct*
//! in-line slot indexes (see [`derive_slot_mask`]). Update adds `delta` to
//! the `d` selected cells, estimate takes their min — both touch exactly one
//! line, and the in-line add/min are SIMD-vectorized through the same
//! [`ScanKernel`] dispatch the key scan uses.
//!
//! # Guarantee
//!
//! One-sidedness survives intact: slot selection is a deterministic function
//! of the key, counters only grow on inserts (saturating, never wrapping),
//! and the estimate is a min over cells that each received every occurrence
//! of the key. The *error model* differs from standard CM: two keys in the
//! same bucket collide in a slot with probability ≈ `d/slots` per probe
//! (instead of `1/h` per row), so at equal byte budget the blocked layout
//! trades a modestly worse collision constant for a `d`-fold reduction in
//! lines touched. DESIGN.md §11 quantifies the trade; `BENCH_layout.json`
//! measures it.

use crate::cell::Cell;
use crate::count_min::LOOKAHEAD;
use crate::hash::{PairwiseHash, SplitMix64};
use crate::lookup::{prefetch_read, ScanKernel};
use crate::persist::{self, Persist, PersistError};
use crate::traits::{FrequencyEstimator, Mergeable, TopK, Tuple, UpdateEstimate};
use crate::view::{AtomicCells, BlockedView, SharedView};
use crate::SketchError;

/// Bytes in one bucket: one hardware cache line.
pub const LINE_BYTES: usize = 64;

/// Blocked Count-Min with 64-bit cells (8 slots per line, workspace default).
pub type BlockedCountMin = BlockedCountMinG<i64>;

/// Blocked Count-Min with 32-bit saturating cells (16 slots per line).
pub type BlockedCountMin32 = BlockedCountMinG<i32>;

/// Cell types usable in a blocked line: [`Cell`] plus vectorizable masked
/// add/min over one line. The two methods must agree *exactly* with the
/// scalar reference semantics (`saturating_add_i64` per selected slot;
/// min of `to_i64` over selected slots) for every kernel.
pub trait BlockedCell: Cell {
    /// `line[s] = line[s].saturating_add_i64(delta)` for every slot `s` with
    /// bit `s` set in `mask`. `line` is exactly one bucket
    /// ([`LINE_BYTES`]`/BYTES` cells).
    fn masked_add(kernel: ScanKernel, line: &mut [Self], mask: u16, delta: i64);

    /// Min of `line[s].to_i64()` over the slots selected by `mask`, or
    /// `i64::MAX` when `mask == 0`.
    fn masked_min(kernel: ScanKernel, line: &[Self], mask: u16) -> i64;
}

/// Scalar reference for [`BlockedCell::masked_add`]; every SIMD kernel must
/// match it bit-for-bit (the differential tests below enforce this).
#[inline]
fn masked_add_scalar<C: Cell>(line: &mut [C], mask: u16, delta: i64) {
    let mut m = mask;
    while m != 0 {
        let s = m.trailing_zeros() as usize;
        line[s] = line[s].saturating_add_i64(delta);
        m &= m - 1;
    }
}

/// Scalar reference for [`BlockedCell::masked_min`].
#[inline]
fn masked_min_scalar<C: Cell>(line: &[C], mask: u16) -> i64 {
    let mut est = i64::MAX;
    let mut m = mask;
    while m != 0 {
        let s = m.trailing_zeros() as usize;
        let v = line[s].to_i64();
        if v < est {
            est = v;
        }
        m &= m - 1;
    }
    est
}

/// AVX2 masked saturating add over one 8×`i64` line.
///
/// There is no 64-bit saturating-add instruction; overflow is detected by
/// sign of the comparison against the addend: with a per-lane delta `d ≥ 0`
/// the add wrapped iff `sum < a`, with `d ≤ 0` iff `sum > a` (each lane's
/// `d` is `delta` or 0, so one sign covers the whole vector).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn masked_add_avx2_i64(line: &mut [i64], mask: u16, delta: i64) {
    use std::arch::x86_64::*;
    debug_assert_eq!(line.len(), 8);
    // SAFETY: `line` is exactly 8 contiguous i64s (64 bytes), so both
    // unaligned 32-byte load/store pairs stay in bounds; AVX2 availability
    // is guaranteed by the caller's feature check.
    unsafe {
        let p = line.as_mut_ptr() as *mut __m256i;
        let bits = _mm256_set1_epi64x(mask as i64);
        let delta_v = _mm256_set1_epi64x(delta);
        let sat = _mm256_set1_epi64x(if delta >= 0 { i64::MAX } else { i64::MIN });
        let sels = [
            _mm256_setr_epi64x(1, 2, 4, 8),
            _mm256_setr_epi64x(16, 32, 64, 128),
        ];
        for (i, sel) in sels.into_iter().enumerate() {
            let lane = _mm256_cmpeq_epi64(_mm256_and_si256(bits, sel), sel);
            let d = _mm256_and_si256(delta_v, lane);
            let a = _mm256_loadu_si256(p.add(i));
            let sum = _mm256_add_epi64(a, d);
            let wrapped = if delta >= 0 {
                _mm256_cmpgt_epi64(a, sum)
            } else {
                _mm256_cmpgt_epi64(sum, a)
            };
            _mm256_storeu_si256(p.add(i), _mm256_blendv_epi8(sum, sat, wrapped));
        }
    }
}

/// AVX2 masked min over one 8×`i64` line (unselected lanes read as
/// `i64::MAX`). AVX2 has no packed 64-bit min, so it is composed from
/// `cmpgt` + `blendv`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn masked_min_avx2_i64(line: &[i64], mask: u16) -> i64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(line.len(), 8);
    // SAFETY: as in `masked_add_avx2_i64` — two in-bounds 32-byte loads
    // under a caller-checked AVX2 guarantee.
    unsafe {
        let p = line.as_ptr() as *const __m256i;
        let bits = _mm256_set1_epi64x(mask as i64);
        let maxv = _mm256_set1_epi64x(i64::MAX);
        let mut minv = maxv;
        let sels = [
            _mm256_setr_epi64x(1, 2, 4, 8),
            _mm256_setr_epi64x(16, 32, 64, 128),
        ];
        for (i, sel) in sels.into_iter().enumerate() {
            let lane = _mm256_cmpeq_epi64(_mm256_and_si256(bits, sel), sel);
            let vals = _mm256_blendv_epi8(maxv, _mm256_loadu_si256(p.add(i)), lane);
            minv = _mm256_blendv_epi8(minv, vals, _mm256_cmpgt_epi64(minv, vals));
        }
        let mut buf = [i64::MAX; 4];
        _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, minv);
        buf.iter().copied().min().unwrap_or(i64::MAX)
    }
}

/// AVX2 masked saturating add over one 16×`i32` line. `delta` must already
/// fit in `i32` (the dispatch falls back to scalar otherwise — clamping the
/// delta first would change semantics, e.g. `-2^31 + (2^31 + 5) = 5` fits).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn masked_add_avx2_i32(line: &mut [i32], mask: u16, delta: i32) {
    use std::arch::x86_64::*;
    debug_assert_eq!(line.len(), 16);
    // SAFETY: `line` is exactly 16 contiguous i32s (64 bytes); AVX2 is
    // caller-checked.
    unsafe {
        let p = line.as_mut_ptr() as *mut __m256i;
        let bits = _mm256_set1_epi32(mask as i32);
        let delta_v = _mm256_set1_epi32(delta);
        let sat = _mm256_set1_epi32(if delta >= 0 { i32::MAX } else { i32::MIN });
        let sels = [
            _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128),
            _mm256_setr_epi32(256, 512, 1024, 2048, 4096, 8192, 16384, 32768),
        ];
        for (i, sel) in sels.into_iter().enumerate() {
            let lane = _mm256_cmpeq_epi32(_mm256_and_si256(bits, sel), sel);
            let d = _mm256_and_si256(delta_v, lane);
            let a = _mm256_loadu_si256(p.add(i));
            let sum = _mm256_add_epi32(a, d);
            let wrapped = if delta >= 0 {
                _mm256_cmpgt_epi32(a, sum)
            } else {
                _mm256_cmpgt_epi32(sum, a)
            };
            _mm256_storeu_si256(p.add(i), _mm256_blendv_epi8(sum, sat, wrapped));
        }
    }
}

/// AVX2 masked min over one 16×`i32` line.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn masked_min_avx2_i32(line: &[i32], mask: u16) -> i64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(line.len(), 16);
    // SAFETY: two in-bounds 32-byte loads under a caller-checked AVX2
    // guarantee.
    unsafe {
        let p = line.as_ptr() as *const __m256i;
        let bits = _mm256_set1_epi32(mask as i32);
        let maxv = _mm256_set1_epi32(i32::MAX);
        let mut minv = maxv;
        let sels = [
            _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128),
            _mm256_setr_epi32(256, 512, 1024, 2048, 4096, 8192, 16384, 32768),
        ];
        for (i, sel) in sels.into_iter().enumerate() {
            let lane = _mm256_cmpeq_epi32(_mm256_and_si256(bits, sel), sel);
            let vals = _mm256_blendv_epi8(maxv, _mm256_loadu_si256(p.add(i)), lane);
            minv = _mm256_min_epi32(minv, vals);
        }
        let mut buf = [i32::MAX; 8];
        _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, minv);
        buf.iter().copied().min().unwrap_or(i32::MAX) as i64
    }
}

/// SSE4.1 masked saturating add over one 16×`i32` line (four 128-bit
/// quarters). The 64-bit line has no SSE4.1 path: `pcmpgtq` is SSE4.2, so
/// `i64` falls back to scalar on pre-AVX2 hardware.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn masked_add_sse41_i32(line: &mut [i32], mask: u16, delta: i32) {
    use std::arch::x86_64::*;
    debug_assert_eq!(line.len(), 16);
    // SAFETY: `line` is exactly 16 contiguous i32s, so the four unaligned
    // 16-byte load/store pairs stay in bounds; SSE4.1 is caller-checked.
    unsafe {
        let p = line.as_mut_ptr() as *mut __m128i;
        let bits = _mm_set1_epi32(mask as i32);
        let delta_v = _mm_set1_epi32(delta);
        let sat = _mm_set1_epi32(if delta >= 0 { i32::MAX } else { i32::MIN });
        let sels = [
            _mm_setr_epi32(1, 2, 4, 8),
            _mm_setr_epi32(16, 32, 64, 128),
            _mm_setr_epi32(256, 512, 1024, 2048),
            _mm_setr_epi32(4096, 8192, 16384, 32768),
        ];
        for (i, sel) in sels.into_iter().enumerate() {
            let lane = _mm_cmpeq_epi32(_mm_and_si128(bits, sel), sel);
            let d = _mm_and_si128(delta_v, lane);
            let a = _mm_loadu_si128(p.add(i));
            let sum = _mm_add_epi32(a, d);
            let wrapped = if delta >= 0 {
                _mm_cmpgt_epi32(a, sum)
            } else {
                _mm_cmpgt_epi32(sum, a)
            };
            _mm_storeu_si128(p.add(i), _mm_blendv_epi8(sum, sat, wrapped));
        }
    }
}

/// SSE4.1 masked min over one 16×`i32` line.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn masked_min_sse41_i32(line: &[i32], mask: u16) -> i64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(line.len(), 16);
    // SAFETY: four in-bounds 16-byte loads under a caller-checked SSE4.1
    // guarantee.
    unsafe {
        let p = line.as_ptr() as *const __m128i;
        let bits = _mm_set1_epi32(mask as i32);
        let maxv = _mm_set1_epi32(i32::MAX);
        let mut minv = maxv;
        let sels = [
            _mm_setr_epi32(1, 2, 4, 8),
            _mm_setr_epi32(16, 32, 64, 128),
            _mm_setr_epi32(256, 512, 1024, 2048),
            _mm_setr_epi32(4096, 8192, 16384, 32768),
        ];
        for (i, sel) in sels.into_iter().enumerate() {
            let lane = _mm_cmpeq_epi32(_mm_and_si128(bits, sel), sel);
            let vals = _mm_blendv_epi8(maxv, _mm_loadu_si128(p.add(i)), lane);
            minv = _mm_min_epi32(minv, vals);
        }
        let mut buf = [i32::MAX; 4];
        _mm_storeu_si128(buf.as_mut_ptr() as *mut __m128i, minv);
        buf.iter().copied().min().unwrap_or(i32::MAX) as i64
    }
}

impl BlockedCell for i64 {
    #[inline]
    fn masked_add(kernel: ScanKernel, line: &mut [Self], mask: u16, delta: i64) {
        #[cfg(target_arch = "x86_64")]
        if kernel == ScanKernel::Avx2 {
            // SAFETY: the Avx2 variant is only constructed after runtime
            // AVX2 detection.
            unsafe { masked_add_avx2_i64(line, mask, delta) };
            return;
        }
        let _ = kernel;
        masked_add_scalar(line, mask, delta);
    }

    #[inline]
    fn masked_min(kernel: ScanKernel, line: &[Self], mask: u16) -> i64 {
        if mask == 0 {
            return i64::MAX;
        }
        #[cfg(target_arch = "x86_64")]
        if kernel == ScanKernel::Avx2 {
            // SAFETY: as above.
            return unsafe { masked_min_avx2_i64(line, mask) };
        }
        let _ = kernel;
        masked_min_scalar(line, mask)
    }
}

impl BlockedCell for i32 {
    #[inline]
    fn masked_add(kernel: ScanKernel, line: &mut [Self], mask: u16, delta: i64) {
        #[cfg(target_arch = "x86_64")]
        // Deltas outside i32 take the scalar path: they must saturate
        // against the *widened* sum, which the 32-bit lanes cannot express.
        if let Ok(d32) = i32::try_from(delta) {
            match kernel {
                // SAFETY: SIMD variants are only constructed after runtime
                // feature detection.
                ScanKernel::Avx2 => {
                    unsafe { masked_add_avx2_i32(line, mask, d32) };
                    return;
                }
                ScanKernel::Sse41 => {
                    unsafe { masked_add_sse41_i32(line, mask, d32) };
                    return;
                }
                _ => {}
            }
        }
        let _ = kernel;
        masked_add_scalar(line, mask, delta);
    }

    #[inline]
    fn masked_min(kernel: ScanKernel, line: &[Self], mask: u16) -> i64 {
        if mask == 0 {
            return i64::MAX;
        }
        #[cfg(target_arch = "x86_64")]
        match kernel {
            // SAFETY: SIMD variants imply runtime-detected features.
            ScanKernel::Avx2 => return unsafe { masked_min_avx2_i32(line, mask) },
            ScanKernel::Sse41 => return unsafe { masked_min_sse41_i32(line, mask) },
            _ => {}
        }
        let _ = kernel;
        masked_min_scalar(line, mask)
    }
}

/// Expand one 61-bit pairwise-independent hash value into `depth` *distinct*
/// slot indexes within a `slots`-cell line, returned as a bitmask.
///
/// Each round consumes `log2(slots)` low bits as a candidate slot and
/// rotates the hash value; an occupied candidate linear-probes to the next
/// free slot (wrapping). Distinctness matters for the error bound: `d`
/// probes of the same cell would make the min degenerate to that one cell.
#[inline]
fn derive_slot_mask(slot_hash: &PairwiseHash, key: u64, slots: usize, depth: usize) -> u16 {
    debug_assert!(slots.is_power_of_two() && slots <= 16 && depth <= slots);
    let mut bits = slot_hash.hash_full(key);
    let lane_mask = (slots - 1) as u64;
    let shift = slots.trailing_zeros();
    let mut used: u16 = 0;
    for _ in 0..depth {
        let mut s = (bits & lane_mask) as usize;
        bits = bits.rotate_right(shift);
        while used & (1u16 << s) != 0 {
            s = (s + 1) & (slots - 1);
        }
        used |= 1u16 << s;
    }
    used
}

/// The cache-line-blocked Count-Min sketch, generic over cell width.
///
/// Storage is a flat cell vector over-allocated by one line and indexed
/// from a 64-byte-aligned offset, so every bucket occupies exactly one
/// cache line (no straddling) without unsafe casts or custom allocators.
#[derive(Debug)]
pub struct BlockedCountMinG<C: BlockedCell = i64> {
    /// Maps a key to its bucket.
    bucket_hash: PairwiseHash,
    /// Seeds the in-line slot derivation.
    slot_hash: PairwiseHash,
    /// Backing cells; the live table is `buf[offset .. offset + buckets*SLOTS]`.
    buf: Vec<C>,
    /// Cell index of the first 64-byte-aligned line in `buf`.
    offset: usize,
    /// Number of bucket lines.
    buckets: usize,
    /// In-line probes per key (`d` in the paper's terms).
    depth: usize,
    /// Seed both hashes were derived from (validates merges).
    seed: u64,
}

/// Cell offset of the first [`LINE_BYTES`]-aligned position in `buf`.
fn align_offset<C>(buf: &[C]) -> usize {
    let addr = buf.as_ptr() as usize;
    let misalign = addr % LINE_BYTES;
    if misalign == 0 {
        0
    } else {
        // The allocator aligns to the cell size, so the byte gap to the next
        // line boundary is a whole number of cells.
        (LINE_BYTES - misalign) / std::mem::size_of::<C>()
    }
}

impl<C: BlockedCell> Clone for BlockedCountMinG<C> {
    fn clone(&self) -> Self {
        // The aligned offset is a property of the allocation, so a fresh
        // clone must re-derive it rather than copy `buf` verbatim.
        let len = self.buckets * Self::SLOTS;
        let mut buf = vec![C::default(); len + Self::SLOTS];
        let offset = align_offset(&buf);
        buf[offset..offset + len].copy_from_slice(self.cells());
        Self {
            bucket_hash: self.bucket_hash,
            slot_hash: self.slot_hash,
            buf,
            offset,
            buckets: self.buckets,
            depth: self.depth,
            seed: self.seed,
        }
    }
}

impl<C: BlockedCell> BlockedCountMinG<C> {
    /// Cells per bucket line for this cell width.
    pub const SLOTS: usize = LINE_BYTES / C::BYTES;

    /// Create a sketch of `buckets` cache-line buckets with `depth` in-line
    /// probes per key, seeded deterministically.
    ///
    /// # Errors
    /// Returns [`SketchError::InvalidDimensions`] when `buckets == 0`,
    /// `depth == 0`, or `depth` exceeds the [`Self::SLOTS`] cells of a line.
    pub fn new(seed: u64, depth: usize, buckets: usize) -> Result<Self, SketchError> {
        // Layout invariants of the cell type — a violation is a bug in a new
        // `Cell` impl, not a runtime condition.
        assert!(C::BYTES == std::mem::size_of::<C>() && LINE_BYTES.is_multiple_of(C::BYTES));
        assert!(Self::SLOTS.is_power_of_two() && Self::SLOTS <= 16);
        if depth == 0 || buckets == 0 || depth > Self::SLOTS {
            return Err(SketchError::InvalidDimensions {
                what: format!(
                    "blocked depth={depth}, buckets={buckets} (line holds {} cells)",
                    Self::SLOTS
                ),
            });
        }
        let mut rng = SplitMix64::new(seed);
        let bucket_hash = PairwiseHash::from_rng(&mut rng, buckets);
        let slot_hash = PairwiseHash::from_rng(&mut rng, Self::SLOTS);
        let len = buckets * Self::SLOTS;
        let buf = vec![C::default(); len + Self::SLOTS];
        let offset = align_offset(&buf);
        debug_assert!(offset + len <= buf.len());
        Ok(Self {
            bucket_hash,
            slot_hash,
            buf,
            offset,
            buckets,
            depth,
            seed,
        })
    }

    /// Create a sketch fitting within `budget_bytes` of counter space: the
    /// largest bucket count with `buckets · 64 <= budget_bytes`.
    ///
    /// # Errors
    /// [`SketchError::BudgetTooSmall`] if not even one line fits;
    /// [`SketchError::InvalidDimensions`] per [`Self::new`].
    pub fn with_byte_budget(
        seed: u64,
        depth: usize,
        budget_bytes: usize,
    ) -> Result<Self, SketchError> {
        let buckets = budget_bytes / LINE_BYTES;
        if buckets == 0 {
            return Err(SketchError::BudgetTooSmall {
                needed: LINE_BYTES,
                available: budget_bytes,
            });
        }
        Self::new(seed, depth, buckets)
    }

    /// In-line probes per key (`d`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of bucket lines.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Cells per bucket line.
    #[inline]
    pub fn slots(&self) -> usize {
        Self::SLOTS
    }

    /// The seed this sketch was built with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Reset every counter to zero, keeping the hash functions.
    pub fn clear(&mut self) {
        self.buf.fill(C::default());
    }

    /// Direct cell read (bucket, slot); for white-box tests and analysis.
    #[inline]
    pub fn cell(&self, bucket: usize, slot: usize) -> i64 {
        self.cells()[bucket * Self::SLOTS + slot].to_i64()
    }

    /// Sum of every cell. On a strict stream without saturation this equals
    /// `depth × N` (each tuple lands in `depth` distinct cells) — the
    /// blocked analogue of the per-row-sum invariant.
    pub fn cell_sum(&self) -> i64 {
        self.cells().iter().map(|c| c.to_i64()).sum()
    }

    /// The live, line-aligned table.
    #[inline]
    fn cells(&self) -> &[C] {
        &self.buf[self.offset..self.offset + self.buckets * Self::SLOTS]
    }

    /// One bucket's line, mutably.
    #[inline]
    fn line_mut(&mut self, bucket: usize) -> &mut [C] {
        let start = self.offset + bucket * Self::SLOTS;
        &mut self.buf[start..start + Self::SLOTS]
    }

    /// One bucket's line.
    #[inline]
    fn line(&self, bucket: usize) -> &[C] {
        let start = self.offset + bucket * Self::SLOTS;
        &self.buf[start..start + Self::SLOTS]
    }

    /// The `depth` distinct in-line slots for `key`, as a bitmask.
    #[inline]
    fn slot_mask(&self, key: u64) -> u16 {
        derive_slot_mask(&self.slot_hash, key, Self::SLOTS, self.depth)
    }
}

impl<C: BlockedCell> FrequencyEstimator for BlockedCountMinG<C> {
    #[inline]
    fn update(&mut self, key: u64, delta: i64) {
        let kernel = ScanKernel::get();
        let b = self.bucket_hash.hash(key);
        let mask = self.slot_mask(key);
        C::masked_add(kernel, self.line_mut(b), mask, delta);
    }

    #[inline]
    fn estimate(&self, key: u64) -> i64 {
        let kernel = ScanKernel::get();
        let b = self.bucket_hash.hash(key);
        let mask = self.slot_mask(key);
        C::masked_min(kernel, self.line(b), mask)
    }

    fn size_bytes(&self) -> usize {
        self.buckets * LINE_BYTES
    }

    /// Batched ingest with the same software-pipelining ring as
    /// `CountMinG::update_batch`, but one `(bucket, slot-mask)` pair — one
    /// prefetched line — per tuple instead of `w` row cells.
    fn update_batch(&mut self, tuples: &[Tuple]) {
        let look = LOOKAHEAD.min(tuples.len());
        if look == 0 {
            return;
        }
        let kernel = ScanKernel::get();
        let mut ring: Vec<(usize, u16)> = vec![(0, 0); look];
        for (j, &(key, _)) in tuples.iter().take(look).enumerate() {
            let b = self.bucket_hash.hash(key);
            ring[j] = (b, self.slot_mask(key));
            prefetch_read(self.line(b).as_ptr());
        }
        for i in 0..tuples.len() {
            let slot = i % look;
            let (b, mask) = ring[slot];
            C::masked_add(kernel, self.line_mut(b), mask, tuples[i].1);
            if let Some(&(next_key, _)) = tuples.get(i + look) {
                let nb = self.bucket_hash.hash(next_key);
                ring[slot] = (nb, self.slot_mask(next_key));
                prefetch_read(self.line(nb).as_ptr());
            }
        }
    }

    /// Batched point queries with the same prefetch ring.
    fn estimate_batch(&self, keys: &[u64]) -> Vec<i64> {
        let look = LOOKAHEAD.min(keys.len());
        if look == 0 {
            return Vec::new();
        }
        let kernel = ScanKernel::get();
        let mut ring: Vec<(usize, u16)> = vec![(0, 0); look];
        for (j, &key) in keys.iter().take(look).enumerate() {
            let b = self.bucket_hash.hash(key);
            ring[j] = (b, self.slot_mask(key));
            prefetch_read(self.line(b).as_ptr());
        }
        let mut out = Vec::with_capacity(keys.len());
        for i in 0..keys.len() {
            let slot = i % look;
            let (b, mask) = ring[slot];
            out.push(C::masked_min(kernel, self.line(b), mask));
            if let Some(&next_key) = keys.get(i + look) {
                let nb = self.bucket_hash.hash(next_key);
                ring[slot] = (nb, self.slot_mask(next_key));
                prefetch_read(self.line(nb).as_ptr());
            }
        }
        out
    }

    /// Pull each key's single line into cache. Advisory only.
    #[inline]
    fn prime(&self, keys: &[u64]) {
        for &key in keys {
            prefetch_read(self.line(self.bucket_hash.hash(key)).as_ptr());
        }
    }
}

impl<C: BlockedCell> UpdateEstimate for BlockedCountMinG<C> {
    #[inline]
    fn update_and_estimate(&mut self, key: u64, delta: i64) -> i64 {
        let kernel = ScanKernel::get();
        let b = self.bucket_hash.hash(key);
        let mask = self.slot_mask(key);
        let line = self.line_mut(b);
        C::masked_add(kernel, line, mask, delta);
        C::masked_min(kernel, line, mask)
    }
}

impl<C: BlockedCell> SharedView for BlockedCountMinG<C> {
    type View = BlockedView;

    fn new_view(&self) -> BlockedView {
        let view = BlockedView {
            bucket_hash: self.bucket_hash,
            slot_hash: self.slot_hash,
            depth: self.depth,
            slots: Self::SLOTS,
            cells: AtomicCells::new(self.buckets * Self::SLOTS),
        };
        self.store_view(&view);
        view
    }

    fn store_view(&self, view: &BlockedView) {
        debug_assert_eq!(view.cells.len(), self.buckets * Self::SLOTS);
        view.cells
            .store_all(self.cells().iter().map(|c| c.to_i64()));
    }

    /// Exactly the masked line-min of [`FrequencyEstimator::estimate`], read
    /// from the published cells.
    fn view_estimate(view: &BlockedView, key: u64) -> i64 {
        let base = view.bucket_hash.hash(key) * view.slots;
        let mut m = derive_slot_mask(&view.slot_hash, key, view.slots, view.depth);
        let mut est = i64::MAX;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            let v = view.cells.load(base + s);
            if v < est {
                est = v;
            }
            m &= m - 1;
        }
        est
    }
}

impl<C: BlockedCell> Mergeable for BlockedCountMinG<C> {
    fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        if self.seed != other.seed || self.buckets != other.buckets || self.depth != other.depth {
            return Err(SketchError::IncompatibleMerge {
                what: format!(
                    "BlockedCountMin d={} b={} seed {} vs d={} b={} seed {}",
                    self.depth, self.buckets, self.seed, other.depth, other.buckets, other.seed
                ),
            });
        }
        let offset = self.offset;
        let len = self.buckets * Self::SLOTS;
        for (a, b) in self.buf[offset..offset + len].iter_mut().zip(other.cells()) {
            *a = a.saturating_add_i64(b.to_i64());
        }
        Ok(())
    }
}

impl<C: BlockedCell> TopK for BlockedCountMinG<C> {
    /// Like plain Count-Min, the blocked layout keeps no item directory;
    /// heavy-hitter enumeration comes from the ASketch filter in front.
    fn top_k(&self, _k: usize) -> Vec<(u64, i64)> {
        Vec::new()
    }
}

/// Payload tag for persisted blocked Count-Min state (`"SKBL"`).
const PERSIST_TAG: u32 = u32::from_le_bytes(*b"SKBL");

impl<C: BlockedCell> Persist for BlockedCountMinG<C> {
    /// Layout: tag, cell width, `seed`, `depth`, `buckets`, then the live
    /// bucket lines widened to `i64`. The alignment offset is a property
    /// of the *allocation* and is re-derived on load, never persisted.
    fn write_state(&self, out: &mut Vec<u8>) {
        persist::put_u32(out, PERSIST_TAG);
        persist::put_u8(out, C::BYTES as u8);
        persist::put_u64(out, self.seed);
        persist::put_u64(out, self.depth as u64);
        persist::put_u64(out, self.buckets as u64);
        for c in self.cells() {
            persist::put_i64(out, c.to_i64());
        }
    }

    fn read_state(r: &mut persist::ByteReader<'_>) -> Result<Self, PersistError> {
        persist::expect_tag(r, PERSIST_TAG, "BlockedCountMin")?;
        let cell = r.u8("blocked cell width")?;
        if cell as usize != C::BYTES {
            return Err(PersistError::Corrupt {
                what: format!("blocked cell width {cell} != expected {}", C::BYTES),
            });
        }
        let seed = r.u64("blocked seed")?;
        let depth = r.u64("blocked depth")? as usize;
        let buckets = r.u64("blocked buckets")? as usize;
        if buckets
            .checked_mul(Self::SLOTS)
            .is_none_or(|cells| cells.checked_mul(8).is_none_or(|b| b > r.remaining()))
        {
            return Err(PersistError::Corrupt {
                what: format!("blocked table of {buckets} buckets exceeds payload"),
            });
        }
        let mut s = Self::new(seed, depth, buckets)?;
        let offset = s.offset;
        let len = s.buckets * Self::SLOTS;
        for c in s.buf[offset..offset + len].iter_mut() {
            *c = C::from_i64_saturating(r.i64("blocked cell")?);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_round_trips_bitwise_both_widths() {
        let mut b64 = BlockedCountMin::new(17, 4, 256).unwrap();
        let mut b32 = BlockedCountMin32::new(17, 4, 256).unwrap();
        let mut x = 9u64;
        for _ in 0..6_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(5);
            b64.update(x % 500, 1);
            b32.update(x % 500, 1);
        }
        let r64 = BlockedCountMin::from_state_bytes(&b64.to_state_bytes()).unwrap();
        let r32 = BlockedCountMin32::from_state_bytes(&b32.to_state_bytes()).unwrap();
        for key in 0..500u64 {
            assert_eq!(r64.estimate(key), b64.estimate(key), "key {key}");
            assert_eq!(r32.estimate(key), b32.estimate(key), "key {key}");
        }
    }

    #[test]
    fn persist_rejects_cell_width_confusion() {
        // 32-cell lines have 16 slots; decoding them as 8-slot 64-bit
        // lines must fail on the width byte, not misread the table.
        let b32 = BlockedCountMin32::new(3, 4, 8).unwrap();
        assert!(matches!(
            BlockedCountMin::from_state_bytes(&b32.to_state_bytes()),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn invalid_dimensions_rejected() {
        assert!(BlockedCountMin::new(1, 0, 16).is_err());
        assert!(BlockedCountMin::new(1, 4, 0).is_err());
        assert!(BlockedCountMin::new(1, 9, 16).is_err(), "depth > 8 slots");
        assert!(
            BlockedCountMin32::new(1, 17, 16).is_err(),
            "depth > 16 slots"
        );
        assert!(BlockedCountMin::new(1, 8, 16).is_ok());
        assert!(BlockedCountMin32::new(1, 16, 16).is_ok());
    }

    #[test]
    fn budget_boundary() {
        let err = BlockedCountMin::with_byte_budget(1, 4, LINE_BYTES - 1).unwrap_err();
        assert!(matches!(err, SketchError::BudgetTooSmall { needed, .. } if needed == LINE_BYTES));
        let one = BlockedCountMin::with_byte_budget(1, 4, LINE_BYTES).unwrap();
        assert_eq!(one.buckets(), 1);
        assert_eq!(one.size_bytes(), LINE_BYTES);
        let big = BlockedCountMin::with_byte_budget(1, 4, 1 << 20).unwrap();
        assert_eq!(big.buckets(), (1 << 20) / LINE_BYTES);
        assert!(big.size_bytes() <= 1 << 20);
    }

    #[test]
    fn lines_are_cache_aligned_and_survive_clone() {
        fn check<C: BlockedCell>() {
            let s = BlockedCountMinG::<C>::new(3, 2, 17).unwrap();
            assert_eq!(s.cells().as_ptr() as usize % LINE_BYTES, 0);
            let c = s.clone();
            assert_eq!(c.cells().as_ptr() as usize % LINE_BYTES, 0);
            assert_eq!(c.cells(), s.cells());
        }
        check::<i64>();
        check::<i32>();
    }

    #[test]
    fn slot_mask_selects_depth_distinct_slots() {
        for depth in 1..=8usize {
            let s = BlockedCountMin::new(9, depth, 64).unwrap();
            for key in 0..2_000u64 {
                let mask = s.slot_mask(key);
                assert_eq!(mask.count_ones() as usize, depth, "key {key} depth {depth}");
                assert_eq!(mask >> 8, 0, "slot out of line for key {key}");
                assert_eq!(mask, s.slot_mask(key), "mask must be deterministic");
            }
        }
        // Full-depth i32: all 16 bits.
        let s = BlockedCountMin32::new(9, 16, 8).unwrap();
        assert_eq!(s.slot_mask(1234), u16::MAX);
    }

    #[test]
    fn masked_kernels_match_scalar_reference() {
        // Differential check of every compiled-in kernel against the scalar
        // reference, including saturation edges and deltas outside i32.
        let deltas = [
            0i64,
            1,
            -1,
            5,
            i64::MAX,
            i64::MIN + 1,
            i32::MAX as i64 + 5,
            -(i32::MAX as i64) - 9,
        ];
        let mut rng = SplitMix64::new(0xB10C);
        let mut kernels = vec![ScanKernel::Scalar, ScanKernel::get()];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.1") {
                kernels.push(ScanKernel::Sse41);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                kernels.push(ScanKernel::Avx2);
            }
        }
        for trial in 0..200 {
            let mask = (rng.next_u64() & 0xFFFF) as u16;
            let delta = deltas[trial % deltas.len()];
            let line64: Vec<i64> = (0..8)
                .map(|_| match rng.next_u64() % 4 {
                    0 => i64::MAX - (rng.next_u64() % 3) as i64,
                    1 => i64::MIN + (rng.next_u64() % 3) as i64,
                    _ => (rng.next_u64() % 10_000) as i64 - 5_000,
                })
                .collect();
            let line32: Vec<i32> = (0..16)
                .map(|_| match rng.next_u64() % 4 {
                    0 => i32::MAX - (rng.next_u64() % 3) as i32,
                    1 => i32::MIN + (rng.next_u64() % 3) as i32,
                    _ => (rng.next_u64() % 10_000) as i32 - 5_000,
                })
                .collect();
            for &kernel in &kernels {
                let mut got = line64.clone();
                let mut want = line64.clone();
                <i64 as BlockedCell>::masked_add(kernel, &mut got, mask & 0xFF, delta);
                masked_add_scalar(&mut want, mask & 0xFF, delta);
                assert_eq!(got, want, "i64 add {kernel:?} mask {mask:#x} delta {delta}");
                assert_eq!(
                    <i64 as BlockedCell>::masked_min(kernel, &got, mask & 0xFF),
                    masked_min_scalar(&got, mask & 0xFF),
                    "i64 min {kernel:?} mask {mask:#x}"
                );

                let mut got = line32.clone();
                let mut want = line32.clone();
                <i32 as BlockedCell>::masked_add(kernel, &mut got, mask, delta);
                masked_add_scalar(&mut want, mask, delta);
                assert_eq!(got, want, "i32 add {kernel:?} mask {mask:#x} delta {delta}");
                if mask != 0 {
                    assert_eq!(
                        <i32 as BlockedCell>::masked_min(kernel, &got, mask),
                        masked_min_scalar(&got, mask),
                        "i32 min {kernel:?} mask {mask:#x}"
                    );
                }
            }
        }
        // mask == 0 contract.
        for &kernel in &kernels {
            assert_eq!(
                <i64 as BlockedCell>::masked_min(kernel, &[1i64; 8], 0),
                i64::MAX
            );
            assert_eq!(
                <i32 as BlockedCell>::masked_min(kernel, &[1i32; 16], 0),
                i64::MAX
            );
        }
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut s = BlockedCountMin::new(7, 4, 1 << 16).unwrap();
        for key in 0..100u64 {
            for _ in 0..(key + 1) {
                s.insert(key);
            }
        }
        for key in 0..100u64 {
            assert_eq!(s.estimate(key), (key + 1) as i64);
        }
    }

    #[test]
    fn one_sided_guarantee() {
        fn check<C: BlockedCell>() {
            let mut s = BlockedCountMinG::<C>::new(3, 4, 8).unwrap();
            let mut truth = std::collections::HashMap::new();
            let mut x: u64 = 12345;
            for _ in 0..10_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let key = x % 100;
                s.insert(key);
                *truth.entry(key).or_insert(0i64) += 1;
            }
            for (&key, &t) in &truth {
                assert!(s.estimate(key) >= t, "under-count for key {key}");
            }
        }
        check::<i64>();
        check::<i32>();
    }

    #[test]
    fn cell_sum_is_depth_times_mass() {
        let mut s = BlockedCountMin::new(5, 3, 128).unwrap();
        let mut total = 0i64;
        for key in 0..1000u64 {
            let delta = (key % 5) as i64 + 1;
            s.update(key, delta);
            total += delta;
        }
        assert_eq!(s.cell_sum(), 3 * total);
    }

    #[test]
    fn update_batch_matches_scalar_loop() {
        fn check<C: BlockedCell>(len: usize) {
            let mut batched = BlockedCountMinG::<C>::new(13, 4, 512).unwrap();
            let mut scalar = BlockedCountMinG::<C>::new(13, 4, 512).unwrap();
            let mut x: u64 = 99;
            let tuples: Vec<Tuple> = (0..len)
                .map(|i| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let delta = if i % 7 == 3 { -1 } else { (i % 3) as i64 + 1 };
                    (x % 200, delta)
                })
                .collect();
            batched.update_batch(&tuples);
            for &(k, u) in &tuples {
                scalar.update(k, u);
            }
            assert_eq!(batched.cells(), scalar.cells(), "len={len}");
        }
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 64, 1000] {
            check::<i64>(len);
            check::<i32>(len);
        }
    }

    #[test]
    fn estimate_batch_matches_pointwise() {
        let mut s = BlockedCountMin::new(21, 4, 256).unwrap();
        for key in 0..500u64 {
            s.update(key % 61, (key % 4) as i64);
        }
        for len in [0usize, 1, 5, 8, 9, 100] {
            let keys: Vec<u64> = (0..len as u64).map(|k| k * 17 % 90).collect();
            let batch = s.estimate_batch(&keys);
            let point: Vec<i64> = keys.iter().map(|&k| s.estimate(k)).collect();
            assert_eq!(batch, point, "len={len}");
        }
    }

    #[test]
    fn update_and_estimate_matches_separate_calls() {
        let mut a = BlockedCountMin::new(9, 4, 64).unwrap();
        let mut b = BlockedCountMin::new(9, 4, 64).unwrap();
        for key in 0..500u64 {
            let ea = a.update_and_estimate(key % 37, 2);
            b.update(key % 37, 2);
            assert_eq!(ea, b.estimate(key % 37));
        }
    }

    #[test]
    fn prime_and_insert_batch_observably_equivalent() {
        let mut a = BlockedCountMin::new(3, 4, 128).unwrap();
        let mut b = BlockedCountMin::new(3, 4, 128).unwrap();
        let keys: Vec<u64> = (0..300).map(|k| k * 7 % 97).collect();
        a.prime(&keys); // must not change state
        a.insert_batch(&keys);
        for &k in &keys {
            b.insert(k);
        }
        assert_eq!(a.cells(), b.cells());
    }

    #[test]
    fn shared_view_matches_estimate_exactly() {
        fn check<C: BlockedCell>() {
            let mut s = BlockedCountMinG::<C>::new(77, 4, 512).unwrap();
            let view = s.new_view();
            let mut x = 3u64;
            for _ in 0..5_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(97);
                s.update(x % 300, (x % 4) as i64 + 1);
            }
            s.store_view(&view);
            for key in 0..400u64 {
                assert_eq!(
                    BlockedCountMinG::<C>::view_estimate(&view, key),
                    s.estimate(key),
                    "key {key}"
                );
            }
        }
        check::<i64>();
        check::<i32>();
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = BlockedCountMin::new(11, 4, 256).unwrap();
        let mut b = BlockedCountMin::new(11, 4, 256).unwrap();
        a.update(7, 5);
        b.update(7, 3);
        b.update(9, 2);
        a.merge(&b).unwrap();
        assert!(a.estimate(7) >= 8);
        assert!(a.estimate(9) >= 2);
    }

    #[test]
    fn merge_rejects_mismatched() {
        let mut a = BlockedCountMin::new(1, 4, 256).unwrap();
        assert!(a.merge(&BlockedCountMin::new(2, 4, 256).unwrap()).is_err());
        assert!(a.merge(&BlockedCountMin::new(1, 3, 256).unwrap()).is_err());
        assert!(a.merge(&BlockedCountMin::new(1, 4, 128).unwrap()).is_err());
    }

    #[test]
    fn i32_saturates_instead_of_wrapping() {
        let mut s = BlockedCountMin32::new(1, 1, 1).unwrap();
        let key = 5u64;
        s.update(key, i64::MAX);
        assert_eq!(s.estimate(key), i32::MAX as i64);
        s.update(key, 1);
        assert_eq!(s.estimate(key), i32::MAX as i64, "stays saturated");
    }

    #[test]
    fn negative_updates_supported() {
        let mut s = BlockedCountMin::new(5, 4, 1 << 14).unwrap();
        s.update(42, 10);
        s.update(42, -4);
        assert_eq!(s.estimate(42), 6);
    }

    #[test]
    fn clear_resets_counts() {
        let mut s = BlockedCountMin::new(3, 2, 16).unwrap();
        s.insert(1);
        s.clear();
        assert_eq!(s.estimate(1), 0);
        assert_eq!(s.cell_sum(), 0);
    }
}
