//! Pairwise-independent hash functions.
//!
//! Count-Min and its relatives require, for their error analysis, hash
//! functions drawn from a *pairwise independent* family. We implement the
//! classic Carter–Wegman construction over the Mersenne prime
//! `p = 2^61 - 1`:
//!
//! ```text
//! h_{a,b}(x) = ((a * x + b) mod p) mod m
//! ```
//!
//! with `a` drawn uniformly from `[1, p)` and `b` from `[0, p)`. Reduction
//! modulo a Mersenne prime needs no division, which keeps the per-update cost
//! at a handful of multiply/shift/add instructions.
//!
//! All randomness is derived deterministically from a user seed through
//! [`SplitMix64`], so every sketch in this workspace is reproducible.

use serde::{Deserialize, Serialize};

/// The Mersenne prime `2^61 - 1` used as the field for Carter–Wegman hashing.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// A tiny, fast, well-distributed PRNG used only for seeding hash functions
/// and other deterministic parameter choices.
///
/// This is the standard SplitMix64 generator (Steele, Lea & Flood). It is
/// *not* used for workload generation (see the `streamgen` crate for that);
/// its only job is to expand a single `u64` seed into hash coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Produce a value uniform in `[0, bound)` (bound > 0) by rejection.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling on the top bits; bias is negligible for the
        // bounds we use (< 2^61), but rejection keeps it exact.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Reduce a 128-bit product modulo the Mersenne prime `2^61 - 1`.
///
/// For `p = 2^k - 1`, `x mod p` can be computed as
/// `(x & p) + (x >> k)`, folded twice to guarantee the result is `< p`.
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    let lo = (x as u64) & MERSENNE_P;
    let hi = (x >> 61) as u64;
    let mut r = lo + hi;
    // One fold can leave a value in [p, 2p); a conditional subtract fixes it.
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    // `hi` itself can exceed p when x is close to 2^128, but our inputs are
    // products of values < 2^61, so hi < 2^61 and a single pass suffices.
    r
}

/// One Carter–Wegman pairwise-independent hash function mapping `u64` keys
/// to `[0, range)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    range: u64,
}

impl PairwiseHash {
    /// Draw a fresh hash function from the family using `rng`.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    pub fn from_rng(rng: &mut SplitMix64, range: usize) -> Self {
        assert!(range > 0, "hash range must be positive");
        let a = 1 + rng.next_below(MERSENNE_P - 1);
        let b = rng.next_below(MERSENNE_P);
        Self {
            a,
            b,
            range: range as u64,
        }
    }

    /// Construct with explicit coefficients (used by tests).
    pub fn with_params(a: u64, b: u64, range: usize) -> Self {
        assert!(range > 0, "hash range must be positive");
        assert!((1..MERSENNE_P).contains(&a), "a must lie in [1, p)");
        assert!(b < MERSENNE_P, "b must lie in [0, p)");
        Self {
            a,
            b,
            range: range as u64,
        }
    }

    /// The output range `m` of this function.
    #[inline]
    pub fn range(&self) -> usize {
        self.range as usize
    }

    /// Evaluate the hash: `((a*x + b) mod p) mod m`.
    ///
    /// Keys are first folded into the field `[0, p)`; this loses nothing for
    /// the key domains used in this workspace (keys are themselves drawn
    /// from permutations of much smaller domains).
    #[inline]
    pub fn hash(&self, key: u64) -> usize {
        let x = (key % MERSENNE_P) as u128;
        let v = mod_mersenne(x * self.a as u128 + self.b as u128);
        (v % self.range) as usize
    }

    /// Evaluate the hash to a full 61-bit value (before the final `mod m`).
    ///
    /// Used by Count Sketch to derive an unbiased ±1 sign from the same
    /// pairwise-independent family.
    #[inline]
    pub fn hash_full(&self, key: u64) -> u64 {
        let x = (key % MERSENNE_P) as u128;
        mod_mersenne(x * self.a as u128 + self.b as u128)
    }
}

/// A bank of `w` independent [`PairwiseHash`] functions sharing one range,
/// as used by the row-per-hash-function sketches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashBank {
    funcs: Vec<PairwiseHash>,
}

impl HashBank {
    /// Create `w` hash functions with output range `range`, derived from
    /// `seed`.
    pub fn new(seed: u64, w: usize, range: usize) -> Self {
        assert!(w > 0, "need at least one hash function");
        let mut rng = SplitMix64::new(seed);
        let funcs = (0..w)
            .map(|_| PairwiseHash::from_rng(&mut rng, range))
            .collect();
        Self { funcs }
    }

    /// Number of hash functions in the bank.
    #[inline]
    pub fn width(&self) -> usize {
        self.funcs.len()
    }

    /// The shared output range.
    #[inline]
    pub fn range(&self) -> usize {
        self.funcs[0].range()
    }

    /// Evaluate function `i` on `key`.
    #[inline]
    pub fn hash(&self, i: usize, key: u64) -> usize {
        self.funcs[i].hash(key)
    }

    /// Access the underlying functions.
    #[inline]
    pub fn funcs(&self) -> &[PairwiseHash] {
        &self.funcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_bound_respected() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, MERSENNE_P] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn mod_mersenne_matches_naive() {
        let cases: [u128; 6] = [
            0,
            1,
            MERSENNE_P as u128,
            (MERSENNE_P as u128) * 2 + 5,
            (MERSENNE_P as u128 - 1) * (MERSENNE_P as u128 - 1),
            u64::MAX as u128 * 3,
        ];
        for &x in &cases {
            assert_eq!(mod_mersenne(x) as u128, x % MERSENNE_P as u128, "x={x}");
        }
    }

    #[test]
    fn hash_stays_in_range() {
        let mut rng = SplitMix64::new(1);
        for range in [1usize, 2, 7, 64, 4096] {
            let h = PairwiseHash::from_rng(&mut rng, range);
            for key in 0..1000u64 {
                assert!(h.hash(key) < range);
            }
        }
    }

    #[test]
    fn hash_is_deterministic_per_seed() {
        let h1 = HashBank::new(99, 4, 128);
        let h2 = HashBank::new(99, 4, 128);
        for i in 0..4 {
            for key in [0u64, 1, 17, u64::MAX] {
                assert_eq!(h1.hash(i, key), h2.hash(i, key));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let h1 = HashBank::new(1, 1, 1 << 20);
        let h2 = HashBank::new(2, 1, 1 << 20);
        let collisions = (0..1000u64)
            .filter(|&k| h1.hash(0, k) == h2.hash(0, k))
            .count();
        // Two independent functions agree with probability ~2^-20.
        assert!(collisions < 5, "suspiciously many collisions: {collisions}");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // Chi-square-style sanity check: hash 100k scrambled keys into 64
        // buckets and verify no bucket deviates wildly from the mean.
        // (Sequential keys are deliberately avoided: a linear hash family
        // maps arithmetic progressions to structured residues, which is
        // permitted by pairwise independence.)
        let mut rng = SplitMix64::new(31337);
        let h = PairwiseHash::from_rng(&mut rng, 64);
        let mut keygen = SplitMix64::new(555);
        let mut buckets = [0u32; 64];
        let n = 100_000u64;
        for _ in 0..n {
            buckets[h.hash(keygen.next_u64())] += 1;
        }
        let mean = n as f64 / 64.0;
        for (i, &c) in buckets.iter().enumerate() {
            let dev = (c as f64 - mean).abs() / mean;
            assert!(dev < 0.2, "bucket {i} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn pairwise_collision_probability_close_to_ideal() {
        // Empirically estimate Pr[h(x) = h(y)] over many function draws for
        // a fixed pair (x, y); pairwise independence implies ~1/m.
        let m = 32usize;
        let mut rng = SplitMix64::new(2024);
        let trials = 20_000;
        let mut collisions = 0;
        for _ in 0..trials {
            let h = PairwiseHash::from_rng(&mut rng, m);
            if h.hash(123_456) == h.hash(987_654_321) {
                collisions += 1;
            }
        }
        let p = collisions as f64 / trials as f64;
        let ideal = 1.0 / m as f64;
        assert!(
            (p - ideal).abs() < ideal * 0.5,
            "collision prob {p:.4} far from ideal {ideal:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "hash range must be positive")]
    fn zero_range_panics() {
        let mut rng = SplitMix64::new(0);
        let _ = PairwiseHash::from_rng(&mut rng, 0);
    }
}
