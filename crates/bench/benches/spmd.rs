//! Criterion bench behind Figure 13: SPMD kernel ingest at increasing
//! widths (ASketch vs Count-Min kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asketch_bench::workload::Workload;
use asketch_bench::Config;
use asketch_parallel::{round_robin_shards, SpmdGroup};
use sketches::CountMin;

fn bench_spmd(c: &mut Criterion) {
    let cfg = Config {
        scale: 0.004,
        ..Config::default()
    };
    let w = Workload::synthetic(&cfg, 1.5);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("spmd_ingest");
    group.throughput(Throughput::Elements(w.len() as u64));
    for n in [1usize, 2, 4].into_iter().filter(|&n| n <= 2 * cores) {
        let shards = round_robin_shards(&w.stream, n);
        group.bench_with_input(BenchmarkId::new("asketch", n), &shards, |b, shards| {
            b.iter(|| {
                SpmdGroup::ingest(shards, |i| {
                    asketch::AsketchBuilder {
                        total_bytes: 128 * 1024,
                        seed: 1 + i as u64,
                        ..Default::default()
                    }
                    .build_count_min()
                    .unwrap()
                })
                .1
            })
        });
        group.bench_with_input(BenchmarkId::new("count_min", n), &shards, |b, shards| {
            b.iter(|| {
                SpmdGroup::ingest(shards, |i| {
                    CountMin::with_byte_budget(1 + i as u64, 8, 128 * 1024).unwrap()
                })
                .1
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spmd
}
criterion_main!(benches);
