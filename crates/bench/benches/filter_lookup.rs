//! Criterion micro-bench behind §6.1 / Algorithm 3: the vectorized filter
//! lookup against the scalar scan, and the per-hit cost of each filter
//! implementation (the `t_f` of Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use asketch::filter::{Filter, FilterKind};
use sketches::lookup;

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_scan");
    for size in [16usize, 32, 128, 1024] {
        let ids: Vec<u64> = (0..size as u64).map(|i| i * 2654435761).collect();
        // Worst case: probe for an absent key (full scan).
        let absent = u64::MAX - 1;
        group.bench_with_input(BenchmarkId::new("simd", size), &ids, |b, ids| {
            b.iter(|| lookup::find_key(std::hint::black_box(ids), absent))
        });
        group.bench_with_input(BenchmarkId::new("scalar", size), &ids, |b, ids| {
            b.iter(|| lookup::find_key_scalar(std::hint::black_box(ids), absent))
        });
    }
    group.finish();
}

fn bench_filter_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_hit");
    for kind in FilterKind::ALL {
        let mut f = kind.build(32);
        for i in 0..32u64 {
            f.insert(i, 100 + i as i64, 0);
        }
        group.bench_function(BenchmarkId::new(kind.name(), 32), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7) % 31 + 1; // hit non-min items, as skewed streams do
                f.update_existing(std::hint::black_box(i), 1)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan, bench_filter_hit);
criterion_main!(benches);
