//! Criterion micro-bench behind Figure 5(b): per-method point-query cost on
//! a pre-ingested synopsis, frequency-proportional query mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asketch_bench::workload::Workload;
use asketch_bench::{Config, MethodKind};

fn bench_queries(c: &mut Criterion) {
    let cfg = Config {
        scale: 0.004,
        queries: 50_000,
        ..Config::default()
    };
    let mut group = c.benchmark_group("query_throughput");
    for skew in [0.5f64, 1.5, 2.5] {
        let w = Workload::synthetic(&cfg, skew);
        group.throughput(Throughput::Elements(w.queries.len() as u64));
        for kind in MethodKind::HEADLINE {
            let mut m = kind.build(128 * 1024, w.spec.seed, 32).unwrap();
            m.ingest(&w.stream);
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("z={skew}")),
                &w,
                |b, w| {
                    b.iter(|| {
                        let mut acc = 0i64;
                        for &q in &w.queries {
                            acc = acc.wrapping_add(m.estimate(q));
                        }
                        acc
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_queries
}
criterion_main!(benches);
