//! Criterion bench behind Table 1: full ingest+query cycle of the four
//! methods at the paper's default configuration (Zipf 1.5, 128 KB).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asketch_bench::workload::Workload;
use asketch_bench::{Config, MethodKind};

fn bench_headline(c: &mut Criterion) {
    let cfg = Config {
        scale: 0.004,
        queries: 20_000,
        ..Config::default()
    };
    let w = Workload::synthetic(&cfg, 1.5);
    let mut group = c.benchmark_group("table1_end_to_end");
    group.throughput(Throughput::Elements((w.len() + w.queries.len()) as u64));
    for kind in MethodKind::HEADLINE {
        group.bench_function(BenchmarkId::new(kind.name(), "ingest+query"), |b| {
            b.iter_batched(
                || kind.build(128 * 1024, w.spec.seed, 32).unwrap(),
                |mut m| {
                    m.ingest(&w.stream);
                    let mut acc = 0i64;
                    for &q in &w.queries {
                        acc = acc.wrapping_add(m.estimate(q));
                    }
                    acc
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_headline
}
criterion_main!(benches);
