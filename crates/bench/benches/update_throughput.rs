//! Criterion micro-bench behind Figure 5(a): per-method stream-update cost
//! at low, real-world, and high skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asketch_bench::workload::Workload;
use asketch_bench::{Config, MethodKind};

fn bench_updates(c: &mut Criterion) {
    let cfg = Config {
        scale: 0.004, // 128k tuples — enough to exercise the exchange paths
        ..Config::default()
    };
    let mut group = c.benchmark_group("update_throughput");
    for skew in [0.5f64, 1.5, 2.5] {
        let w = Workload::synthetic(&cfg, skew);
        group.throughput(Throughput::Elements(w.len() as u64));
        for kind in MethodKind::HEADLINE {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("z={skew}")),
                &w,
                |b, w| {
                    b.iter_batched(
                        || kind.build(128 * 1024, w.spec.seed, 32).unwrap(),
                        |mut m| {
                            m.ingest(&w.stream);
                            m
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_updates
}
criterion_main!(benches);
