//! Ablation bench (DESIGN.md §5): the paper's at-most-one exchange policy
//! versus the rejected cascading alternative — throughput and exchange
//! counts at low skew, where exchanges are most frequent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use asketch::filter::RelaxedHeapFilter;
use asketch::ASketch;
use asketch_bench::ablation::CascadingASketch;
use asketch_bench::workload::Workload;
use asketch_bench::Config;
use sketches::CountMin;

fn bench_exchange_policy(c: &mut Criterion) {
    let cfg = Config {
        scale: 0.004,
        ..Config::default()
    };
    let mut group = c.benchmark_group("exchange_policy");
    for skew in [0.0f64, 0.5, 1.0] {
        let w = Workload::synthetic(&cfg, skew);
        group.throughput(Throughput::Elements(w.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("at_most_one", format!("z={skew}")),
            &w,
            |b, w| {
                b.iter_batched(
                    || {
                        ASketch::new(
                            RelaxedHeapFilter::new(32),
                            CountMin::with_byte_budget(w.spec.seed, 8, 127 * 1024).unwrap(),
                        )
                    },
                    |mut m| {
                        for &k in &w.stream {
                            m.insert(k);
                        }
                        m.stats().exchanges
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cascading", format!("z={skew}")),
            &w,
            |b, w| {
                b.iter_batched(
                    || {
                        CascadingASketch::new(
                            32,
                            CountMin::with_byte_budget(w.spec.seed, 8, 127 * 1024).unwrap(),
                        )
                    },
                    |mut m| {
                        for &k in &w.stream {
                            m.insert(k);
                        }
                        m.exchanges
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exchange_policy
}
criterion_main!(benches);
