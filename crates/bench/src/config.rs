//! Experiment configuration shared by the `repro` binary and the Criterion
//! benches.

/// Global experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Workload scale relative to the paper (1.0 = 32 M-tuple streams).
    /// Default 1/16 so the full suite completes in minutes.
    pub scale: f64,
    /// Base RNG seed; every experiment derives per-run seeds from it.
    pub seed: u64,
    /// Repetitions for experiments that aggregate over runs (paper: 100).
    pub runs: usize,
    /// Number of frequency-estimation queries per accuracy measurement.
    pub queries: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            scale: 1.0 / 16.0,
            seed: 20160626, // SIGMOD'16 opening day
            runs: 20,
            queries: 100_000,
        }
    }
}

impl Config {
    /// Read overrides from the environment: `ASKETCH_SCALE`,
    /// `ASKETCH_SEED`, `ASKETCH_RUNS`, `ASKETCH_QUERIES`.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("ASKETCH_SCALE") {
            if let Ok(x) = v.parse::<f64>() {
                assert!(x > 0.0, "ASKETCH_SCALE must be positive");
                cfg.scale = x;
            }
        }
        if let Ok(v) = std::env::var("ASKETCH_SEED") {
            if let Ok(x) = v.parse::<u64>() {
                cfg.seed = x;
            }
        }
        if let Ok(v) = std::env::var("ASKETCH_RUNS") {
            if let Ok(x) = v.parse::<usize>() {
                assert!(x > 0, "ASKETCH_RUNS must be positive");
                cfg.runs = x;
            }
        }
        if let Ok(v) = std::env::var("ASKETCH_QUERIES") {
            if let Ok(x) = v.parse::<usize>() {
                assert!(x > 0, "ASKETCH_QUERIES must be positive");
                cfg.queries = x;
            }
        }
        cfg
    }

    /// Paper stream length (32 M) at this scale.
    pub fn stream_len(&self) -> usize {
        ((32_000_000.0 * self.scale) as usize).max(1000)
    }

    /// Paper distinct-key count (8 M) at this scale.
    pub fn distinct(&self) -> u64 {
        ((8_000_000.0 * self.scale) as u64).max(100)
    }

    /// Query count, clamped to stay proportionate on tiny scales.
    pub fn query_count(&self) -> usize {
        self.queries.min(self.stream_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_scaled_paper_shape() {
        let c = Config::default();
        assert_eq!(c.stream_len(), 2_000_000);
        assert_eq!(c.distinct(), 500_000);
        assert_eq!(c.query_count(), 100_000);
    }

    #[test]
    fn tiny_scale_clamps() {
        let c = Config {
            scale: 1e-9,
            ..Default::default()
        };
        assert_eq!(c.stream_len(), 1000);
        assert_eq!(c.distinct(), 100);
        assert_eq!(c.query_count(), 1000);
    }
}
