//! Open-loop load generator + CI gate for the network serving layer
//! (`crates/serve`), in the same artifact/validate shape as the other
//! harness bins:
//!
//! ```text
//! serving                                   # full sweep -> BENCH_serving.json
//! serving --smoke                           # small sweep + exact-count check
//! serving --validate-serving BENCH_serving.json \
//!         [--min-qps X] [--max-p99-ms X]    # CI gate
//! ```
//!
//! The sweep runs an in-process [`asketch_serve::Server`] on an ephemeral
//! port and drives it over real sockets, one row per
//! `{connections × read_frac}` cell. Each connection is **open-loop**: a
//! sender thread issues requests on a fixed schedule derived from the
//! target rate — never waiting for responses (pipelining) — while a
//! receiver thread drains replies and measures latency against the
//! *scheduled* send time, so queueing delay is charged to the server, not
//! hidden by a stalled sender (coordinated omission).
//!
//! The smoke additionally proves exactness over the wire: one write
//! connection streams a skewed workload in deterministic order (the
//! ASketch filter is order-dependent) with concurrent readers hammering
//! estimates, then after SYNC every distinct key's networked answer must
//! equal a local runtime fed the identical stream.
//!
//! The gate (`--validate-serving`) holds three lines: a hardware-aware
//! aggregate-QPS floor, `updates_shed == 0` + `reader_blocked == 0` on
//! every row (Block policy backpressure + wait-free reads under live
//! writes), and a read-p99 ceiling.

use std::fmt::Write as _;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use asketch::filter::VectorFilter;
use asketch::ASketch;
use asketch_parallel::{BackpressurePolicy, ConcurrentASketch, ConcurrentConfig};
use asketch_serve::{
    decode_response, encode_request, Client, Request, Response, ServeConfig, Server,
};
use sketches::CountMin;
use streamgen::{ExactCounter, StreamSpec};

const SEED: u64 = 0x5EED_2016;
const SHARDS: usize = 4;
const DEPTH: usize = 4;
const FILTER_ITEMS: usize = 32;
const TOTAL_BYTES: usize = 1 << 22;
const DISTINCT: u64 = 16_384;
const SKEW: f64 = 1.1;

fn kernel(shard: usize) -> ASketch<VectorFilter, CountMin> {
    let per_shard = (TOTAL_BYTES / SHARDS).max(1 << 14);
    ASketch::new(
        VectorFilter::new(FILTER_ITEMS),
        CountMin::with_byte_budget(SEED ^ shard as u64, DEPTH, per_shard).expect("budget fits"),
    )
}

fn runtime() -> ConcurrentASketch<VectorFilter, CountMin> {
    let mut cfg = ConcurrentConfig {
        shards: SHARDS,
        ..ConcurrentConfig::default()
    };
    cfg.supervision.checkpoint_interval = 16_384;
    ConcurrentASketch::spawn(cfg, kernel)
}

fn spawn_server() -> Server<VectorFilter, CountMin> {
    let cfg = ServeConfig {
        ingest_queue: 1024,
        policy: BackpressurePolicy::Block,
        ..ServeConfig::default()
    };
    Server::spawn(cfg, runtime()).expect("bind ephemeral port")
}

// ---------------------------------------------------------------------------
// Open-loop connection driver
// ---------------------------------------------------------------------------

/// One scheduled operation: when it was due, and whether it was a read.
#[derive(Clone, Copy)]
struct OpTicket {
    scheduled: Instant,
    is_read: bool,
}

/// Latencies (ns, scheduled-send to response) split by op class.
#[derive(Default)]
struct ConnLatencies {
    reads: Vec<u64>,
    writes: Vec<u64>,
}

/// Drive one connection open-loop for `duration` at `rate` ops/s. The
/// sender pipelines requests on its schedule; the receiver pairs replies
/// FIFO with tickets (per-connection ordering is the protocol guarantee).
fn drive_connection(
    addr: std::net::SocketAddr,
    rate: f64,
    duration: Duration,
    read_frac: f64,
    keys: Vec<u64>,
    shed_seen: Arc<AtomicU64>,
) -> ConnLatencies {
    let stream = TcpStream::connect(addr).expect("loadgen connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);

    let (ticket_tx, ticket_rx) = mpsc::channel::<OpTicket>();
    let receiver = std::thread::spawn(move || {
        let mut lat = ConnLatencies::default();
        let mut prefix = [0u8; 4];
        while let Ok(ticket) = ticket_rx.recv() {
            if reader.read_exact(&mut prefix).is_err() {
                break;
            }
            let len = u32::from_le_bytes(prefix) as usize;
            let mut payload = vec![0u8; len];
            if reader.read_exact(&mut payload).is_err() {
                break;
            }
            let ns = ticket.scheduled.elapsed().as_nanos() as u64;
            match decode_response(&payload) {
                Ok(Response::Error { .. }) => {
                    shed_seen.fetch_add(1, Ordering::Relaxed);
                }
                Ok(_) => {
                    if ticket.is_read {
                        lat.reads.push(ns);
                    } else {
                        lat.writes.push(ns);
                    }
                }
                Err(_) => break,
            }
        }
        lat
    });

    let interval = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let start = Instant::now();
    let mut frame = Vec::new();
    let mut i = 0usize;
    loop {
        let scheduled = start + interval.mul_f64(i as f64);
        if scheduled.duration_since(start) >= duration {
            break;
        }
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let key = keys[i % keys.len()];
        // Deterministic read/write mix: golden-ratio hash of the op index
        // against the read fraction.
        let mix = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        let is_read = (mix as f64 / (1u64 << 24) as f64) < read_frac;
        let req = if is_read {
            Request::Estimate(key)
        } else {
            Request::Update(key)
        };
        frame.clear();
        encode_request(&req, &mut frame);
        if writer.write_all(&frame).is_err() {
            break;
        }
        // Flush in small pipeline bursts so frames actually hit the wire
        // without a syscall per op.
        if i % 16 == 15 && writer.flush().is_err() {
            break;
        }
        ticket_tx
            .send(OpTicket { scheduled, is_read })
            .expect("receiver alive");
        i += 1;
    }
    let _ = writer.flush();
    drop(ticket_tx); // receiver drains exactly the sent ops, then exits
    receiver.join().expect("receiver thread")
}

// ---------------------------------------------------------------------------
// Sweep rows
// ---------------------------------------------------------------------------

struct Row {
    connections: usize,
    read_frac: f64,
    target_qps: f64,
    achieved_qps: f64,
    total_ops: usize,
    read_p50_us: f64,
    read_p99_us: f64,
    read_p999_us: f64,
    write_p50_us: f64,
    write_p99_us: f64,
    write_p999_us: f64,
    updates_shed: u64,
    reader_blocked: u64,
    reader_retries: u64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

fn run_row(connections: usize, read_frac: f64, target_qps: f64, duration: Duration) -> Row {
    let server = spawn_server();
    let addr = server.addr();
    let spec = StreamSpec {
        len: 65_536,
        distinct: DISTINCT,
        skew: SKEW,
        seed: SEED,
    };
    let stream = spec.materialize();
    let shed_seen = Arc::new(AtomicU64::new(0));
    let per_conn_rate = target_qps / connections as f64;

    let t0 = Instant::now();
    let drivers: Vec<_> = (0..connections)
        .map(|c| {
            // Disjoint rotations of the same skewed key stream per
            // connection: same key universe, different arrival order.
            let mut keys = stream.clone();
            keys.rotate_left((c * stream.len()) / connections.max(1));
            let shed = Arc::clone(&shed_seen);
            std::thread::spawn(move || {
                drive_connection(addr, per_conn_rate, duration, read_frac, keys, shed)
            })
        })
        .collect();
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for d in drivers {
        let lat = d.join().expect("driver thread");
        reads.extend(lat.reads);
        writes.extend(lat.writes);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let total_ops = reads.len() + writes.len();
    reads.sort_unstable();
    writes.sort_unstable();

    let gauge = server.stats();
    server.shutdown();
    Row {
        connections,
        read_frac,
        target_qps,
        achieved_qps: total_ops as f64 / elapsed.max(1e-9),
        total_ops,
        read_p50_us: percentile_us(&reads, 0.50),
        read_p99_us: percentile_us(&reads, 0.99),
        read_p999_us: percentile_us(&reads, 0.999),
        write_p50_us: percentile_us(&writes, 0.50),
        write_p99_us: percentile_us(&writes, 0.99),
        write_p999_us: percentile_us(&writes, 0.999),
        updates_shed: gauge.updates_shed + shed_seen.load(Ordering::Relaxed),
        reader_blocked: gauge.reader_blocked,
        reader_retries: gauge.reader_retries,
    }
}

// ---------------------------------------------------------------------------
// Smoke exactness: networked answers == local runtime, mid-read-storm
// ---------------------------------------------------------------------------

/// Returns the number of distinct keys checked; panics (nonzero exit) on
/// any networked-vs-local mismatch.
fn smoke_exactness() -> usize {
    let server = spawn_server();
    let addr = server.addr();
    let spec = StreamSpec {
        len: 120_000,
        distinct: DISTINCT,
        skew: SKEW,
        seed: SEED ^ 0xDEAD,
    };
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);

    // Local reference fed the identical ordered stream.
    let mut reference = runtime();
    reference.insert_batch(&stream);
    reference.sync();
    let ref_handle = reference.query_handle();

    // Readers hammer estimates while the single write connection streams.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("reader connect");
                let keys: Vec<u64> = (0..512u64).map(|i| i * 31 + r).collect();
                let mut served = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let vals = c.estimate_batch(&keys).expect("live read");
                    assert_eq!(vals.len(), keys.len());
                    served += vals.len() as u64;
                }
                served
            })
        })
        .collect();

    let mut writer = Client::connect(addr).expect("writer connect");
    for chunk in stream.chunks(2_048) {
        assert_eq!(
            writer.update_batch(chunk).expect("update"),
            chunk.len() as u32
        );
    }
    let routed = writer.sync().expect("sync barrier");
    assert_eq!(routed, stream.len() as u64, "sync lost writes");
    stop.store(true, Ordering::Release);
    let reads_served: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(reads_served > 0, "readers never got a response");

    // Post-sync: every distinct key, exact over the wire.
    let keys: Vec<u64> = truth.iter().map(|(k, _)| k).collect();
    let over_wire = writer.estimate_batch(&keys).expect("estimate batch");
    let mut mismatches = 0usize;
    for (i, &key) in keys.iter().enumerate() {
        if over_wire[i] != ref_handle.estimate(key) {
            eprintln!(
                "MISMATCH key {key}: wire {} local {}",
                over_wire[i],
                ref_handle.estimate(key)
            );
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches, 0,
        "networked counts diverged from local runtime"
    );

    let (_, health, gauge) = server.shutdown();
    assert_eq!(health.total_routed(), stream.len() as u64);
    assert_eq!(gauge.updates_shed, 0, "Block policy shed");
    assert_eq!(
        gauge.reader_blocked, 0,
        "reads blocked under live writes (retries={})",
        gauge.reader_retries
    );
    let _ = reference.finish();
    println!(
        "smoke exactness OK: {} distinct keys, {} live reads, reader_retries={}",
        keys.len(),
        reads_served,
        gauge.reader_retries
    );
    keys.len()
}

// ---------------------------------------------------------------------------
// Artifact + gate
// ---------------------------------------------------------------------------

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn write_json(path: &str, smoke: bool, exact_keys: usize, rows: &[Row]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"commit\": \"{}\",", git_commit());
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"config\": {{\"shards\": {SHARDS}, \"policy\": \"block\", \"depth\": {DEPTH}, \
         \"filter_items\": {FILTER_ITEMS}, \"total_bytes\": {TOTAL_BYTES}, \
         \"distinct\": {DISTINCT}, \"skew\": {SKEW}, \"seed\": {SEED}}},"
    );
    let _ = writeln!(out, "  \"exact_keys_checked\": {exact_keys},");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"connections\": {}, \"read_frac\": {}, \"target_qps\": {}, \
             \"achieved_qps\": {}, \"total_ops\": {}, \
             \"read_p50_us\": {}, \"read_p99_us\": {}, \"read_p999_us\": {}, \
             \"write_p50_us\": {}, \"write_p99_us\": {}, \"write_p999_us\": {}, \
             \"updates_shed\": {}, \"reader_blocked\": {}, \"reader_retries\": {}}}{comma}",
            r.connections,
            json_f64(r.read_frac),
            json_f64(r.target_qps),
            json_f64(r.achieved_qps),
            r.total_ops,
            json_f64(r.read_p50_us),
            json_f64(r.read_p99_us),
            json_f64(r.read_p999_us),
            json_f64(r.write_p50_us),
            json_f64(r.write_p99_us),
            json_f64(r.write_p999_us),
            r.updates_shed,
            r.reader_blocked,
            r.reader_retries,
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Pull `"key": value` out of a single result line (one object per line).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Validate `BENCH_serving.json`: schema shape; `updates_shed == 0` and
/// `reader_blocked == 0` on every row (Block backpressure + wait-free
/// reads); best aggregate QPS over the floor; read p99 under the ceiling
/// on every row that served reads.
fn validate_serving(path: &str, min_qps: f64, max_p99_ms: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"schema_version\"",
        "\"commit\"",
        "\"config\"",
        "\"results\"",
    ] {
        if !text.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let mut rows = 0usize;
    let mut best_qps = 0.0f64;
    let mut worst_p99_us = 0.0f64;
    for line in text.lines().filter(|l| l.contains("\"achieved_qps\"")) {
        rows += 1;
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("result row missing \"{k}\": {line}"));
        let qps: f64 = get("achieved_qps")?
            .parse()
            .map_err(|e| format!("bad achieved_qps: {e}"))?;
        let read_frac: f64 = get("read_frac")?
            .parse()
            .map_err(|e| format!("bad read_frac: {e}"))?;
        let p99: f64 = get("read_p99_us")?
            .parse()
            .map_err(|e| format!("bad read_p99_us: {e}"))?;
        let shed: u64 = get("updates_shed")?
            .parse()
            .map_err(|e| format!("bad updates_shed: {e}"))?;
        let blocked: u64 = get("reader_blocked")?
            .parse()
            .map_err(|e| format!("bad reader_blocked: {e}"))?;
        get("total_ops")?;
        if shed != 0 {
            return Err(format!("updates shed under Block policy: {line}"));
        }
        if blocked != 0 {
            return Err(format!("reader blocked (reads not wait-free): {line}"));
        }
        if qps <= 0.0 {
            return Err(format!("non-positive achieved_qps: {line}"));
        }
        best_qps = best_qps.max(qps);
        if read_frac > 0.0 {
            worst_p99_us = worst_p99_us.max(p99);
        }
    }
    if rows == 0 {
        return Err("no result rows".to_string());
    }
    if best_qps < min_qps {
        return Err(format!(
            "best achieved QPS {best_qps:.0} below required {min_qps:.0}"
        ));
    }
    let max_p99_us = max_p99_ms * 1_000.0;
    if worst_p99_us > max_p99_us {
        return Err(format!(
            "read p99 {worst_p99_us:.0}us exceeds ceiling {max_p99_us:.0}us"
        ));
    }
    println!(
        "OK: {rows} rows, best QPS {best_qps:.0} >= {min_qps:.0}, \
         worst read p99 {worst_p99_us:.0}us <= {max_p99_us:.0}us, \
         zero shed, zero blocked reads"
    );
    Ok(())
}

// ---------------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_serving.json".to_string();
    let mut validate_path: Option<String> = None;
    let mut min_qps = 10_000.0f64;
    let mut max_p99_ms = 200.0f64;
    let mut target_qps: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--validate-serving" => {
                i += 1;
                validate_path = Some(
                    args.get(i)
                        .expect("--validate-serving needs a path")
                        .clone(),
                );
            }
            "--min-qps" => {
                i += 1;
                min_qps = args
                    .get(i)
                    .expect("--min-qps needs a value")
                    .parse()
                    .expect("bad --min-qps");
            }
            "--max-p99-ms" => {
                i += 1;
                max_p99_ms = args
                    .get(i)
                    .expect("--max-p99-ms needs a value")
                    .parse()
                    .expect("bad --max-p99-ms");
            }
            "--target-qps" => {
                i += 1;
                target_qps = Some(
                    args.get(i)
                        .expect("--target-qps needs a value")
                        .parse()
                        .expect("bad --target-qps"),
                );
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: serving [--smoke] [--out FILE] \
                     [--target-qps X] \
                     [--validate-serving FILE [--min-qps X] [--max-p99-ms X]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = validate_path {
        if let Err(e) = validate_serving(&path, min_qps, max_p99_ms) {
            eprintln!("serving validation FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }

    // Exactness first (smoke only): a perf artifact from a wrong server
    // is worthless.
    let exact_keys = if smoke { smoke_exactness() } else { 0 };

    let (conns, fracs, duration, qps): (&[usize], &[f64], Duration, f64) = if smoke {
        (
            &[2, 4],
            &[0.5, 0.9],
            Duration::from_millis(1_500),
            target_qps.unwrap_or(30_000.0),
        )
    } else {
        (
            &[1, 4, 8],
            &[0.1, 0.5, 0.9],
            Duration::from_secs(4),
            target_qps.unwrap_or(60_000.0),
        )
    };

    let mut rows = Vec::new();
    for &c in conns {
        for &f in fracs {
            let row = run_row(c, f, qps, duration);
            println!(
                "conns={c} read_frac={f:.1}: {:.0} qps (target {:.0}), \
                 read p50/p99/p999 = {:.0}/{:.0}/{:.0} us, \
                 write p50/p99 = {:.0}/{:.0} us, shed={} blocked={}",
                row.achieved_qps,
                row.target_qps,
                row.read_p50_us,
                row.read_p99_us,
                row.read_p999_us,
                row.write_p50_us,
                row.write_p99_us,
                row.updates_shed,
                row.reader_blocked,
            );
            rows.push(row);
        }
    }
    write_json(&out_path, smoke, exact_keys, &rows).expect("write artifact");
    println!("wrote {out_path}");
}
