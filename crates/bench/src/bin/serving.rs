//! Open-loop load generator + CI gate for the network serving layer
//! (`crates/serve`), in the same artifact/validate shape as the other
//! harness bins:
//!
//! ```text
//! serving                                   # full sweep -> BENCH_serving.json
//! serving --smoke                           # small sweep + exact-count check
//! serving --io-model reactor|threaded|both  # which engines to sweep
//! serving --conns 1,8 --fracs 0.5 --duration-ms 2000   # subset sweep
//! serving --many-conns 512                  # many-connection smoke
//! serving --validate-serving BENCH_serving.json \
//!         [--min-qps X] [--max-p99-ms X]    # CI gate
//! serving --regress OLD.json NEW.json [--tolerance 0.15]  # perf gate
//! ```
//!
//! The sweep runs an in-process [`asketch_serve::Server`] on an ephemeral
//! port and drives it over real sockets, one row per
//! `{connections × read_frac}` cell. Each connection is **open-loop**: a
//! sender thread issues requests on a fixed schedule derived from the
//! target rate — never waiting for responses (pipelining) — while a
//! receiver thread drains replies and measures latency against the
//! *scheduled* send time, so queueing delay is charged to the server, not
//! hidden by a stalled sender (coordinated omission).
//!
//! The smoke additionally proves exactness over the wire: one write
//! connection streams a skewed workload in deterministic order (the
//! ASketch filter is order-dependent) with concurrent readers hammering
//! estimates, then after SYNC every distinct key's networked answer must
//! equal a local runtime fed the identical stream.
//!
//! Each sweep cell runs per io_model (the epoll reactor and the
//! thread-per-connection fallback share every other knob), and every row
//! ends with a SYNC barrier on a control connection: the row records the
//! number of write ops acknowledged over the wire (`writes_sent`) and
//! the runtime's post-barrier routed total (`synced_routed`) — the two
//! must agree exactly, or the row itself is a correctness bug.
//!
//! The gate (`--validate-serving`) holds four lines: a hardware-aware
//! aggregate-QPS floor, `updates_shed == 0` + `reader_blocked == 0` on
//! every row (Block policy backpressure + wait-free reads under live
//! writes), `writes_sent == synced_routed` on every row, and a read-p99
//! ceiling. `--regress OLD NEW` compares two artifacts row-by-row
//! (matched on io_model/connections/read_frac/target_qps) and fails on
//! a >tolerance achieved-QPS drop or read-p99 rise.

use std::fmt::Write as _;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use asketch::filter::VectorFilter;
use asketch::ASketch;
use asketch_parallel::{BackpressurePolicy, ConcurrentASketch, ConcurrentConfig};
use asketch_serve::{
    decode_response, encode_request, Client, IoModel, Request, Response, ServeConfig, Server,
};
use sketches::CountMin;
use streamgen::{ExactCounter, StreamSpec};

const SEED: u64 = 0x5EED_2016;
const SHARDS: usize = 4;
const DEPTH: usize = 4;
const FILTER_ITEMS: usize = 32;
const TOTAL_BYTES: usize = 1 << 22;
const DISTINCT: u64 = 16_384;
const SKEW: f64 = 1.1;

fn kernel(shard: usize) -> ASketch<VectorFilter, CountMin> {
    let per_shard = (TOTAL_BYTES / SHARDS).max(1 << 14);
    ASketch::new(
        VectorFilter::new(FILTER_ITEMS),
        CountMin::with_byte_budget(SEED ^ shard as u64, DEPTH, per_shard).expect("budget fits"),
    )
}

fn runtime() -> ConcurrentASketch<VectorFilter, CountMin> {
    let mut cfg = ConcurrentConfig {
        shards: SHARDS,
        ..ConcurrentConfig::default()
    };
    cfg.supervision.checkpoint_interval = 16_384;
    ConcurrentASketch::spawn(cfg, kernel)
}

fn spawn_server(io_model: IoModel) -> Server<VectorFilter, CountMin> {
    let cfg = ServeConfig {
        ingest_queue: 1024,
        policy: BackpressurePolicy::Block,
        io_model,
        ..ServeConfig::default()
    };
    Server::spawn(cfg, runtime()).expect("bind ephemeral port")
}

/// The io_models this build can actually run (`Reactor` degrades to the
/// threaded engine off Linux, so sweeping it twice would double-count).
fn sweepable_models(requested: &str) -> Vec<IoModel> {
    match requested {
        "reactor" => vec![IoModel::Reactor],
        "threaded" => vec![IoModel::Threaded],
        _ => {
            if IoModel::Reactor.effective() == IoModel::Reactor {
                vec![IoModel::Reactor, IoModel::Threaded]
            } else {
                vec![IoModel::Threaded]
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Open-loop connection driver
// ---------------------------------------------------------------------------

/// One scheduled operation: when it was due, and whether it was a read.
#[derive(Clone, Copy)]
struct OpTicket {
    scheduled: Instant,
    is_read: bool,
}

/// Latencies (ns, scheduled-send to response) split by op class.
#[derive(Default)]
struct ConnLatencies {
    reads: Vec<u64>,
    writes: Vec<u64>,
}

/// Drive one connection open-loop for `duration` at `rate` ops/s. The
/// sender pipelines requests on its schedule; the receiver pairs replies
/// FIFO with tickets (per-connection ordering is the protocol guarantee).
fn drive_connection(
    addr: std::net::SocketAddr,
    rate: f64,
    duration: Duration,
    read_frac: f64,
    keys: Vec<u64>,
    shed_seen: Arc<AtomicU64>,
) -> ConnLatencies {
    let stream = TcpStream::connect(addr).expect("loadgen connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);

    let (ticket_tx, ticket_rx) = mpsc::channel::<OpTicket>();
    let receiver = std::thread::spawn(move || {
        let mut lat = ConnLatencies::default();
        let mut prefix = [0u8; 4];
        while let Ok(ticket) = ticket_rx.recv() {
            if reader.read_exact(&mut prefix).is_err() {
                break;
            }
            let len = u32::from_le_bytes(prefix) as usize;
            let mut payload = vec![0u8; len];
            if reader.read_exact(&mut payload).is_err() {
                break;
            }
            let ns = ticket.scheduled.elapsed().as_nanos() as u64;
            match decode_response(&payload) {
                Ok(Response::Error { .. }) => {
                    shed_seen.fetch_add(1, Ordering::Relaxed);
                }
                Ok(_) => {
                    if ticket.is_read {
                        lat.reads.push(ns);
                    } else {
                        lat.writes.push(ns);
                    }
                }
                Err(_) => break,
            }
        }
        lat
    });

    let interval = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let start = Instant::now();
    let mut frame = Vec::new();
    let mut i = 0usize;
    loop {
        let scheduled = start + interval.mul_f64(i as f64);
        if scheduled.duration_since(start) >= duration {
            break;
        }
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let key = keys[i % keys.len()];
        // Deterministic read/write mix: golden-ratio hash of the op index
        // against the read fraction.
        let mix = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        let is_read = (mix as f64 / (1u64 << 24) as f64) < read_frac;
        let req = if is_read {
            Request::Estimate(key)
        } else {
            Request::Update(key)
        };
        frame.clear();
        encode_request(&req, &mut frame);
        if writer.write_all(&frame).is_err() {
            break;
        }
        // Flush whenever the pipeline is about to go idle: if the next
        // scheduled op is already due, keep batching (bounded at 16 ops)
        // so a saturated sender still amortizes the syscall; if it is in
        // the future, holding frames in the buffer until the burst ends
        // would charge that scheduling gap to the server as a latency
        // floor Nagle usually gets blamed for.
        let next_due = start + interval.mul_f64((i + 1) as f64);
        if (i % 16 == 15 || next_due > Instant::now()) && writer.flush().is_err() {
            break;
        }
        ticket_tx
            .send(OpTicket { scheduled, is_read })
            .expect("receiver alive");
        i += 1;
    }
    let _ = writer.flush();
    drop(ticket_tx); // receiver drains exactly the sent ops, then exits
    receiver.join().expect("receiver thread")
}

// ---------------------------------------------------------------------------
// Sweep rows
// ---------------------------------------------------------------------------

struct Row {
    io_model: &'static str,
    connections: usize,
    read_frac: f64,
    target_qps: f64,
    achieved_qps: f64,
    total_ops: usize,
    read_p50_us: f64,
    read_p99_us: f64,
    read_p999_us: f64,
    write_p50_us: f64,
    write_p99_us: f64,
    write_p999_us: f64,
    writes_sent: u64,
    synced_routed: u64,
    updates_shed: u64,
    reader_blocked: u64,
    reader_retries: u64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

fn run_row(
    io_model: IoModel,
    connections: usize,
    read_frac: f64,
    target_qps: f64,
    duration: Duration,
) -> Row {
    let server = spawn_server(io_model);
    let addr = server.addr();
    let spec = StreamSpec {
        len: 65_536,
        distinct: DISTINCT,
        skew: SKEW,
        seed: SEED,
    };
    let stream = spec.materialize();
    let shed_seen = Arc::new(AtomicU64::new(0));
    let per_conn_rate = target_qps / connections as f64;

    let t0 = Instant::now();
    let drivers: Vec<_> = (0..connections)
        .map(|c| {
            // Disjoint rotations of the same skewed key stream per
            // connection: same key universe, different arrival order.
            let mut keys = stream.clone();
            keys.rotate_left((c * stream.len()) / connections.max(1));
            let shed = Arc::clone(&shed_seen);
            std::thread::spawn(move || {
                drive_connection(addr, per_conn_rate, duration, read_frac, keys, shed)
            })
        })
        .collect();
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for d in drivers {
        let lat = d.join().expect("driver thread");
        reads.extend(lat.reads);
        writes.extend(lat.writes);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let total_ops = reads.len() + writes.len();
    reads.sort_unstable();
    writes.sort_unstable();

    // Exactness rides every perf row: each acked write carried exactly
    // one key, so after a SYNC barrier the runtime's routed total must
    // equal the number of write OKs the drivers counted.
    let writes_sent = writes.len() as u64;
    let synced_routed = Client::connect(addr)
        .expect("control connect")
        .sync()
        .expect("control sync");

    let gauge = server.stats();
    server.shutdown();
    Row {
        io_model: io_model.effective().name(),
        connections,
        read_frac,
        target_qps,
        achieved_qps: total_ops as f64 / elapsed.max(1e-9),
        total_ops,
        read_p50_us: percentile_us(&reads, 0.50),
        read_p99_us: percentile_us(&reads, 0.99),
        read_p999_us: percentile_us(&reads, 0.999),
        write_p50_us: percentile_us(&writes, 0.50),
        write_p99_us: percentile_us(&writes, 0.99),
        write_p999_us: percentile_us(&writes, 0.999),
        writes_sent,
        synced_routed,
        updates_shed: gauge.updates_shed + shed_seen.load(Ordering::Relaxed),
        reader_blocked: gauge.reader_blocked,
        reader_retries: gauge.reader_retries,
    }
}

// ---------------------------------------------------------------------------
// Smoke exactness: networked answers == local runtime, mid-read-storm
// ---------------------------------------------------------------------------

/// Returns the number of distinct keys checked; panics (nonzero exit) on
/// any networked-vs-local mismatch.
fn smoke_exactness(io_model: IoModel) -> usize {
    let server = spawn_server(io_model);
    let addr = server.addr();
    let spec = StreamSpec {
        len: 120_000,
        distinct: DISTINCT,
        skew: SKEW,
        seed: SEED ^ 0xDEAD,
    };
    let stream = spec.materialize();
    let truth = ExactCounter::from_keys(&stream);

    // Local reference fed the identical ordered stream.
    let mut reference = runtime();
    reference.insert_batch(&stream);
    reference.sync();
    let ref_handle = reference.query_handle();

    // Readers hammer estimates while the single write connection streams.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("reader connect");
                let keys: Vec<u64> = (0..512u64).map(|i| i * 31 + r).collect();
                let mut served = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let vals = c.estimate_batch(&keys).expect("live read");
                    assert_eq!(vals.len(), keys.len());
                    served += vals.len() as u64;
                }
                served
            })
        })
        .collect();

    let mut writer = Client::connect(addr).expect("writer connect");
    for chunk in stream.chunks(2_048) {
        assert_eq!(
            writer.update_batch(chunk).expect("update"),
            chunk.len() as u32
        );
    }
    let routed = writer.sync().expect("sync barrier");
    assert_eq!(routed, stream.len() as u64, "sync lost writes");
    stop.store(true, Ordering::Release);
    let reads_served: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(reads_served > 0, "readers never got a response");

    // Post-sync: every distinct key, exact over the wire.
    let keys: Vec<u64> = truth.iter().map(|(k, _)| k).collect();
    let over_wire = writer.estimate_batch(&keys).expect("estimate batch");
    let mut mismatches = 0usize;
    for (i, &key) in keys.iter().enumerate() {
        if over_wire[i] != ref_handle.estimate(key) {
            eprintln!(
                "MISMATCH key {key}: wire {} local {}",
                over_wire[i],
                ref_handle.estimate(key)
            );
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches, 0,
        "networked counts diverged from local runtime"
    );

    let (_, health, gauge) = server.shutdown();
    assert_eq!(health.total_routed(), stream.len() as u64);
    assert_eq!(gauge.updates_shed, 0, "Block policy shed");
    assert_eq!(
        gauge.reader_blocked, 0,
        "reads blocked under live writes (retries={})",
        gauge.reader_retries
    );
    let _ = reference.finish();
    println!(
        "smoke exactness OK ({}): {} distinct keys, {} live reads, reader_retries={}",
        io_model.effective().name(),
        keys.len(),
        reads_served,
        gauge.reader_retries
    );
    keys.len()
}

// ---------------------------------------------------------------------------
// Many-connection smoke
// ---------------------------------------------------------------------------

/// N concurrent connections (one worker thread each) against one server:
/// all sockets open before the first write, every worker streams batches
/// and reads live estimates, then a control SYNC must account for every
/// accepted key exactly. Proves accept fan-out, per-reactor connection
/// bookkeeping, and cross-connection staging at counts far beyond the
/// latency sweep's.
fn many_conns_smoke(n: usize, io_model: IoModel) {
    const BATCHES: usize = 4;
    const BATCH: usize = 128;
    let server = spawn_server(io_model);
    let addr = server.addr();
    let barrier = Arc::new(std::sync::Barrier::new(n));
    let workers: Vec<_> = (0..n)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("worker connect");
                barrier.wait(); // every socket open before anyone writes
                let keys: Vec<u64> = (0..BATCH as u64)
                    .map(|i| i.wrapping_mul(31).wrapping_add(c as u64))
                    .collect();
                for _ in 0..BATCHES {
                    assert_eq!(
                        client.update_batch(&keys).expect("worker update"),
                        BATCH as u32
                    );
                }
                let est = client.estimate(c as u64 % 64).expect("worker estimate");
                assert!(est >= 0);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker thread");
    }
    let routed = Client::connect(addr)
        .expect("control connect")
        .sync()
        .expect("control sync");
    let expected = (n * BATCHES * BATCH) as u64;
    assert_eq!(routed, expected, "post-sync count across {n} connections");
    let stats = server.stats();
    assert!(stats.connections_accepted > n as u64);
    let (_, health, gauge) = server.shutdown();
    assert_eq!(health.total_routed(), expected);
    assert_eq!(gauge.updates_shed, 0, "Block policy shed");
    assert_eq!(gauge.protocol_errors, 0);
    println!(
        "many-conns smoke OK ({}): {n} connections, {expected} keys routed exactly",
        io_model.effective().name()
    );
}

// ---------------------------------------------------------------------------
// Artifact + gate
// ---------------------------------------------------------------------------

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

fn write_json(path: &str, smoke: bool, exact_keys: usize, rows: &[Row]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 2,");
    let _ = writeln!(out, "  \"commit\": \"{}\",", git_commit());
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"config\": {{\"shards\": {SHARDS}, \"policy\": \"block\", \"depth\": {DEPTH}, \
         \"filter_items\": {FILTER_ITEMS}, \"total_bytes\": {TOTAL_BYTES}, \
         \"distinct\": {DISTINCT}, \"skew\": {SKEW}, \"seed\": {SEED}}},"
    );
    let _ = writeln!(out, "  \"exact_keys_checked\": {exact_keys},");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"io_model\": \"{}\", \"connections\": {}, \"read_frac\": {}, \
             \"target_qps\": {}, \
             \"achieved_qps\": {}, \"total_ops\": {}, \
             \"read_p50_us\": {}, \"read_p99_us\": {}, \"read_p999_us\": {}, \
             \"write_p50_us\": {}, \"write_p99_us\": {}, \"write_p999_us\": {}, \
             \"writes_sent\": {}, \"synced_routed\": {}, \
             \"updates_shed\": {}, \"reader_blocked\": {}, \"reader_retries\": {}}}{comma}",
            r.io_model,
            r.connections,
            json_f64(r.read_frac),
            json_f64(r.target_qps),
            json_f64(r.achieved_qps),
            r.total_ops,
            json_f64(r.read_p50_us),
            json_f64(r.read_p99_us),
            json_f64(r.read_p999_us),
            json_f64(r.write_p50_us),
            json_f64(r.write_p99_us),
            json_f64(r.write_p999_us),
            r.writes_sent,
            r.synced_routed,
            r.updates_shed,
            r.reader_blocked,
            r.reader_retries,
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Pull `"key": value` out of a single result line (one object per line).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Validate `BENCH_serving.json`: schema shape; `updates_shed == 0` and
/// `reader_blocked == 0` on every row (Block backpressure + wait-free
/// reads); `writes_sent == synced_routed` on every row (exact accounting
/// through the staging/mega-batch path); best aggregate QPS over the
/// floor; read p99 under the ceiling on every row that served reads.
fn validate_serving(path: &str, min_qps: f64, max_p99_ms: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"schema_version\"",
        "\"commit\"",
        "\"config\"",
        "\"results\"",
    ] {
        if !text.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let mut rows = 0usize;
    let mut best_qps = 0.0f64;
    let mut worst_p99_us = 0.0f64;
    for line in text.lines().filter(|l| l.contains("\"achieved_qps\"")) {
        rows += 1;
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("result row missing \"{k}\": {line}"));
        let qps: f64 = get("achieved_qps")?
            .parse()
            .map_err(|e| format!("bad achieved_qps: {e}"))?;
        let target: f64 = get("target_qps")?
            .parse()
            .map_err(|e| format!("bad target_qps: {e}"))?;
        let read_frac: f64 = get("read_frac")?
            .parse()
            .map_err(|e| format!("bad read_frac: {e}"))?;
        let p99: f64 = get("read_p99_us")?
            .parse()
            .map_err(|e| format!("bad read_p99_us: {e}"))?;
        let shed: u64 = get("updates_shed")?
            .parse()
            .map_err(|e| format!("bad updates_shed: {e}"))?;
        let blocked: u64 = get("reader_blocked")?
            .parse()
            .map_err(|e| format!("bad reader_blocked: {e}"))?;
        let writes_sent: u64 = get("writes_sent")?
            .parse()
            .map_err(|e| format!("bad writes_sent: {e}"))?;
        let synced: u64 = get("synced_routed")?
            .parse()
            .map_err(|e| format!("bad synced_routed: {e}"))?;
        get("total_ops")?;
        get("io_model")?;
        if shed != 0 {
            return Err(format!("updates shed under Block policy: {line}"));
        }
        if blocked != 0 {
            return Err(format!("reader blocked (reads not wait-free): {line}"));
        }
        if writes_sent != synced {
            return Err(format!(
                "acked writes ({writes_sent}) != post-sync routed ({synced}): {line}"
            ));
        }
        if qps <= 0.0 {
            return Err(format!("non-positive achieved_qps: {line}"));
        }
        best_qps = best_qps.max(qps);
        // The latency ceiling only applies to rows that kept up with
        // their schedule: an oversaturated (ceiling) row measures peak
        // throughput, and its open-loop latencies are queueing delay by
        // construction.
        if read_frac > 0.0 && qps >= 0.98 * target {
            worst_p99_us = worst_p99_us.max(p99);
        }
    }
    if rows == 0 {
        return Err("no result rows".to_string());
    }
    if best_qps < min_qps {
        return Err(format!(
            "best achieved QPS {best_qps:.0} below required {min_qps:.0}"
        ));
    }
    let max_p99_us = max_p99_ms * 1_000.0;
    if worst_p99_us > max_p99_us {
        return Err(format!(
            "read p99 {worst_p99_us:.0}us exceeds ceiling {max_p99_us:.0}us"
        ));
    }
    println!(
        "OK: {rows} rows, best QPS {best_qps:.0} >= {min_qps:.0}, \
         worst read p99 {worst_p99_us:.0}us <= {max_p99_us:.0}us, \
         zero shed, zero blocked reads, exact post-sync counts"
    );
    Ok(())
}

/// Extract `(match_key, achieved_qps, read_p99_us)` per result row. Rows
/// from pre-io_model artifacts (schema 1) match as "threaded" — that is
/// the engine those artifacts measured.
fn regress_rows(text: &str) -> Vec<(String, f64, f64)> {
    text.lines()
        .filter(|l| l.contains("\"achieved_qps\""))
        .filter_map(|line| {
            let io = field(line, "io_model").unwrap_or("threaded");
            let key = format!(
                "io={io} conns={} frac={} target={}",
                field(line, "connections")?,
                field(line, "read_frac")?,
                field(line, "target_qps")?,
            );
            let qps: f64 = field(line, "achieved_qps")?.parse().ok()?;
            let p99: f64 = field(line, "read_p99_us")?.parse().ok()?;
            Some((key, qps, p99))
        })
        .collect()
}

/// Sub-100us p99s are scheduler jitter at these row durations; a relative
/// gate alone would flag 60us -> 75us as a regression.
const REGRESS_P99_SLACK_US: f64 = 100.0;

/// Row-by-row perf gate between two artifacts: rows matched on
/// `(io_model, connections, read_frac, target_qps)` must not lose more
/// than `tolerance` achieved QPS nor gain more than `tolerance` read p99
/// (plus a small absolute slack). Rows present in only one artifact are
/// reported but not failed — sweeps may legitimately grow or shrink.
fn regress(old_path: &str, new_path: &str, tolerance: f64) -> Result<(), String> {
    let old_text =
        std::fs::read_to_string(old_path).map_err(|e| format!("read {old_path}: {e}"))?;
    let new_text =
        std::fs::read_to_string(new_path).map_err(|e| format!("read {new_path}: {e}"))?;
    let old_rows = regress_rows(&old_text);
    let new_rows = regress_rows(&new_text);
    if old_rows.is_empty() {
        return Err(format!("no result rows in {old_path}"));
    }
    let mut matched = 0usize;
    let mut failures = Vec::new();
    for (key, old_qps, old_p99) in &old_rows {
        let Some((_, new_qps, new_p99)) = new_rows.iter().find(|(k, _, _)| k == key) else {
            println!("  (row {key} absent in {new_path}; skipped)");
            continue;
        };
        matched += 1;
        if *new_qps < old_qps * (1.0 - tolerance) {
            failures.push(format!(
                "{key}: achieved_qps {new_qps:.0} fell below {old_qps:.0} by more than \
                 {:.0}%",
                tolerance * 100.0
            ));
        }
        if *new_p99 > old_p99 * (1.0 + tolerance) + REGRESS_P99_SLACK_US {
            failures.push(format!(
                "{key}: read_p99_us {new_p99:.0} rose above {old_p99:.0} by more than \
                 {:.0}% (+{REGRESS_P99_SLACK_US:.0}us slack)",
                tolerance * 100.0
            ));
        }
    }
    if matched == 0 {
        return Err(format!(
            "no comparable rows between {old_path} and {new_path}"
        ));
    }
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    println!(
        "OK: {matched} rows within ±{:.0}% (qps and read p99) of {old_path}",
        tolerance * 100.0
    );
    Ok(())
}

// ---------------------------------------------------------------------------

fn parse_list<T: std::str::FromStr>(s: &str, flag: &str) -> Vec<T> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad {flag} element {p:?}"))
        })
        .collect()
}

fn flag_value(args: &[String], i: &mut usize, name: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| panic!("{name} needs a value"))
        .clone()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_serving.json".to_string();
    let mut validate_path: Option<String> = None;
    let mut regress_paths: Option<(String, String)> = None;
    let mut tolerance = 0.15f64;
    let mut min_qps = 10_000.0f64;
    let mut max_p99_ms = 200.0f64;
    let mut target_qps: Option<f64> = None;
    let mut io_model_arg = "both".to_string();
    let mut conns_override: Option<Vec<usize>> = None;
    let mut fracs_override: Option<Vec<f64>> = None;
    let mut duration_override: Option<Duration> = None;
    let mut many_conns: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        macro_rules! value {
            ($name:literal) => {
                flag_value(&args, &mut i, $name)
            };
        }
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = value!("--out"),
            "--validate-serving" => validate_path = Some(value!("--validate-serving")),
            "--regress" => {
                let old = value!("--regress");
                let new = value!("--regress");
                regress_paths = Some((old, new));
            }
            "--tolerance" => tolerance = value!("--tolerance").parse().expect("bad --tolerance"),
            "--min-qps" => min_qps = value!("--min-qps").parse().expect("bad --min-qps"),
            "--max-p99-ms" => {
                max_p99_ms = value!("--max-p99-ms").parse().expect("bad --max-p99-ms");
            }
            "--target-qps" => {
                target_qps = Some(value!("--target-qps").parse().expect("bad --target-qps"));
            }
            "--io-model" => {
                io_model_arg = value!("--io-model");
                if !matches!(io_model_arg.as_str(), "reactor" | "threaded" | "both") {
                    eprintln!("bad --io-model {io_model_arg} (reactor|threaded|both)");
                    std::process::exit(2);
                }
            }
            "--conns" => conns_override = Some(parse_list(&value!("--conns"), "--conns")),
            "--fracs" => fracs_override = Some(parse_list(&value!("--fracs"), "--fracs")),
            "--duration-ms" => {
                duration_override = Some(Duration::from_millis(
                    value!("--duration-ms").parse().expect("bad --duration-ms"),
                ));
            }
            "--many-conns" => {
                many_conns = Some(value!("--many-conns").parse().expect("bad --many-conns"));
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: serving [--smoke] [--out FILE] \
                     [--io-model reactor|threaded|both] [--conns A,B] [--fracs X,Y] \
                     [--duration-ms N] [--target-qps X] [--many-conns N] \
                     [--validate-serving FILE [--min-qps X] [--max-p99-ms X]] \
                     [--regress OLD NEW [--tolerance X]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = validate_path {
        if let Err(e) = validate_serving(&path, min_qps, max_p99_ms) {
            eprintln!("serving validation FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some((old, new)) = regress_paths {
        if let Err(e) = regress(&old, &new, tolerance) {
            eprintln!("serving regression gate FAILED:\n{e}");
            std::process::exit(1);
        }
        return;
    }

    let models = sweepable_models(&io_model_arg);

    if let Some(n) = many_conns {
        for &m in &models {
            many_conns_smoke(n, m);
        }
        return;
    }

    // Exactness first (smoke only): a perf artifact from a wrong server
    // is worthless.
    let mut exact_keys = 0;
    if smoke {
        for &m in &models {
            exact_keys = smoke_exactness(m);
        }
    }

    let (conns, fracs, duration, qps): (Vec<usize>, Vec<f64>, Duration, f64) = if smoke {
        (
            conns_override.unwrap_or_else(|| vec![2, 4]),
            fracs_override.unwrap_or_else(|| vec![0.5, 0.9]),
            duration_override.unwrap_or(Duration::from_millis(1_500)),
            target_qps.unwrap_or(30_000.0),
        )
    } else {
        (
            conns_override.unwrap_or_else(|| vec![1, 4, 8]),
            fracs_override.unwrap_or_else(|| vec![0.1, 0.5, 0.9]),
            duration_override.unwrap_or(Duration::from_secs(4)),
            target_qps.unwrap_or(60_000.0),
        )
    };

    // Cell list: the rate-controlled latency grid, plus (full runs only)
    // one deliberately oversaturated cell per model at the sweep's widest
    // connection count — the throughput ceiling the io_models are
    // ultimately compared on.
    let mut cells: Vec<(usize, f64, f64)> = Vec::new();
    for &c in &conns {
        for &f in &fracs {
            cells.push((c, f, qps));
        }
    }
    if !smoke {
        let wide = conns.iter().copied().max().unwrap_or(8);
        cells.push((wide, 0.5, 400_000.0));
    }

    let mut rows = Vec::new();
    for &m in &models {
        for &(c, f, cell_qps) in &cells {
            let row = run_row(m, c, f, cell_qps, duration);
            println!(
                "io={} conns={c} read_frac={f:.1}: {:.0} qps (target {:.0}), \
                 read p50/p99/p999 = {:.0}/{:.0}/{:.0} us, \
                 write p50/p99 = {:.0}/{:.0} us, \
                 writes {}=={} routed, shed={} blocked={}",
                row.io_model,
                row.achieved_qps,
                row.target_qps,
                row.read_p50_us,
                row.read_p99_us,
                row.read_p999_us,
                row.write_p50_us,
                row.write_p99_us,
                row.writes_sent,
                row.synced_routed,
                row.updates_shed,
                row.reader_blocked,
            );
            assert_eq!(
                row.writes_sent, row.synced_routed,
                "acked writes lost before the sync barrier"
            );
            rows.push(row);
        }
    }
    write_json(&out_path, smoke, exact_keys, &rows).expect("write artifact");
    println!("wrote {out_path}");
}
