//! `repro` — regenerate every table and figure of the ASketch paper.
//!
//! Usage:
//!
//! ```text
//! repro list              # show available experiments
//! repro all               # run the whole evaluation
//! repro table1 fig5a ...  # run selected experiments
//! ```
//!
//! Scale via env: `ASKETCH_SCALE` (1.0 = paper scale, default 1/16),
//! `ASKETCH_SEED`, `ASKETCH_RUNS`, `ASKETCH_QUERIES`.

use asketch_bench::config::Config;
use asketch_bench::experiments::{find, registry};

fn print_usage() {
    eprintln!("usage: repro <list|all|EXPERIMENT...>");
    eprintln!("experiments:");
    for (id, desc, _) in registry() {
        eprintln!("  {id:<8} {desc}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if args[0] == "list" {
        for (id, desc, _) in registry() {
            println!("{id:<8} {desc}");
        }
        return;
    }
    let cfg = Config::from_env();
    println!(
        "# ASketch reproduction — scale {:.4} (stream {} tuples, {} distinct), seed {}, runs {}",
        cfg.scale,
        cfg.stream_len(),
        cfg.distinct(),
        cfg.seed,
        cfg.runs
    );
    let selected: Vec<(&str, &str, asketch_bench::experiments::ExperimentFn)> =
        if args.iter().any(|a| a == "all") {
            registry()
        } else {
            args.iter()
                .map(|a| {
                    find(a).unwrap_or_else(|| {
                        eprintln!("unknown experiment: {a}");
                        print_usage();
                        std::process::exit(2);
                    })
                })
                .collect()
        };
    let mut failures = 0usize;
    for (id, desc, f) in selected {
        println!("\n################ {id}: {desc}");
        let started = std::time::Instant::now();
        // A panic in one experiment must not take down the rest of the
        // evaluation — record it as a failure and keep going, so a long
        // `repro all` run still yields every table it can produce.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&cfg)));
        match out {
            Ok(out) => {
                for table in &out.tables {
                    println!();
                    table.print();
                }
                for note in &out.notes {
                    println!("note: {note}");
                    if note.contains("— FAIL") {
                        failures += 1;
                    }
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                println!("note: experiment panicked: {msg} — FAIL");
                failures += 1;
            }
        }
        println!("[{id} finished in {:.1}s]", started.elapsed().as_secs_f64());
    }
    if failures > 0 {
        println!("\n{failures} shape check(s) FAILED");
        std::process::exit(1);
    }
    println!("\nall shape checks passed");
}
