//! Persistent ingest-throughput benchmark: sweeps Zipf skew × filter kind ×
//! sketch backend × batch size and writes machine-readable results to
//! `BENCH_throughput.json` (see `DESIGN.md` for the schema).
//!
//! ```text
//! cargo run -p asketch-bench --release --bin throughput            # full sweep
//! cargo run -p asketch-bench --release --bin throughput -- --smoke # CI smoke
//! throughput --validate BENCH_throughput.json --min-speedup 1.5    # CI gate
//! ```
//!
//! `batch_size == 1` is the scalar baseline (a plain `update` loop); larger
//! sizes go through the batched kernels (`insert_batch`), which hoist hash
//! evaluation and issue software prefetches across the batch. The validator
//! checks both the JSON shape and that some batched configuration at the
//! smoke skew beats its scalar baseline by the requested factor.
//!
//! The `--concurrent` mode instead sweeps the sharded concurrent runtime
//! (read fraction × shard count × skew, against an offline SPMD baseline)
//! and writes `BENCH_concurrent.json`; `--validate-concurrent` gates that
//! artifact: the measured `reader_blocked` count (reads whose seqlock
//! retry delta exceeded [`READ_RETRY_BOUND`], sampled per read while
//! workers publish concurrently) must be zero everywhere, and the 4-shard
//! mixed 90/10 run must beat 1 shard by `--min-scaling`.
//!
//! The `--layout` mode sweeps sketch memory layout (row-major Count-Min vs
//! the cache-line-blocked backend, DESIGN.md §11) over skew × byte budget ×
//! batch size and writes `BENCH_layout.json` with measured throughput,
//! observed error, and a per-row one-sidedness check; `--validate-layout`
//! gates that artifact (see [`validate_layout`]).
//!
//! The `--recovery` mode sweeps the durable runtime (DESIGN.md §12): WAL-on
//! ingest at each fsync policy against a no-durability baseline, plus timed
//! snapshot-load + WAL-replay recovery of the crashed state, and writes
//! `BENCH_recovery.json`; `--validate-recovery` gates that artifact (WAL
//! overhead at `fsync=interval` within `--max-overhead`, replay at least
//! `--min-replay-ratio` of the same row's live ingest rate).
//!
//! `--regress OLD NEW` compares two throughput artifacts row-by-row and
//! fails when any configuration present in both lost more than
//! `--tolerance` (default 15%) of its `updates_per_ms`.
//!
//! Every sweep rewrites its JSON artifact after **each** completed row, so
//! a panic (or a kill) mid-sweep still leaves a well-formed partial
//! artifact on disk instead of losing the finished measurements.

use std::fmt::Write as _;
use std::time::Instant;

use asketch::filter::{FilterKind, VectorFilter};
use asketch::{ASketch, AsketchBuilder, DurabilityOptions, FsyncPolicy};
use asketch_durable::recover_kernel;
use asketch_parallel::{hash_shards, ConcurrentASketch, ConcurrentConfig, DataPlane, SpmdGroup};
use eval_metrics::{observed_error_pct, EstimatePair};
use sketches::{BlockedCountMin, BlockedCountMin32, CountMin, Fcm, FrequencyEstimator};
use streamgen::{query, ExactCounter, StreamSpec};

/// Total synopsis budget. Deliberately larger than L2 so the sketch's
/// counter rows live in L3/DRAM and the prefetch pipeline has latency to
/// hide — the regime the batched kernels target.
const TOTAL_BYTES: usize = 1 << 26;
const DEPTH: usize = 8;
const FILTER_ITEMS: usize = 32;
const SEED: u64 = 0x5EED_2016;
const QUERY_COUNT: usize = 2_000;
/// The skew the CI smoke gate checks (paper's real-world midpoint).
const SMOKE_SKEW: f64 = 1.1;

#[derive(Clone, Copy)]
struct RunConfig {
    skew: f64,
    /// `None` = raw sketch (no filter in front).
    filter: Option<FilterKind>,
    backend: Backend,
    batch_size: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    CountMin,
    Fcm,
    /// Cache-line-blocked Count-Min (DESIGN.md §11): one 64-byte bucket per
    /// key, probed at [`BLOCKED_DEPTH`].
    Blocked,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::CountMin => "count-min",
            Backend::Fcm => "fcm",
            Backend::Blocked => "blocked",
        }
    }
}

/// Probe depth for the blocked backend: `DEPTH` clamped to half an `i64`
/// line (matches [`AsketchBuilder::blocked_depth`] at `depth = 8`).
const BLOCKED_DEPTH: usize = if DEPTH < BlockedCountMin::SLOTS / 2 {
    DEPTH
} else {
    BlockedCountMin::SLOTS / 2
};

fn filter_name(f: Option<FilterKind>) -> &'static str {
    match f {
        None => "none",
        Some(FilterKind::Vector) => "vector",
        Some(FilterKind::StrictHeap) => "strict-heap",
        Some(FilterKind::RelaxedHeap) => "relaxed-heap",
        Some(FilterKind::StreamSummary) => "stream-summary",
    }
}

struct RunResult {
    cfg: RunConfig,
    updates_per_ms: f64,
    estimate_p50_ns: u64,
    estimate_p99_ns: u64,
}

/// Ingest + query-latency measurement for one constructed estimator.
fn measure<E: FrequencyEstimator>(
    build: impl Fn() -> E,
    stream: &[u64],
    queries: &[u64],
    batch: usize,
) -> (f64, u64, u64) {
    // Best of three independent ingest passes (fresh estimator each), which
    // suppresses scheduler/tenant noise on shared hosts without changing
    // what is measured — the same policy as the repro harness.
    const MEASURE_PASSES: usize = 3;
    let mut best_per_ms = 0.0f64;
    let mut est = None;
    for _ in 0..MEASURE_PASSES {
        let mut fresh = build();
        let t0 = Instant::now();
        if batch <= 1 {
            for &k in stream {
                fresh.update(k, 1);
            }
        } else {
            for part in stream.chunks(batch) {
                fresh.insert_batch(part);
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        best_per_ms = best_per_ms.max(stream.len() as f64 / (elapsed * 1e3));
        est = Some(fresh);
    }
    let est = est.expect("at least one pass");
    let updates_per_ms = best_per_ms;

    let mut lat: Vec<u64> = Vec::with_capacity(queries.len());
    for &q in queries {
        let t = Instant::now();
        std::hint::black_box(est.estimate(q));
        lat.push(t.elapsed().as_nanos() as u64);
    }
    lat.sort_unstable();
    let p50 = lat[lat.len() / 2];
    let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
    (updates_per_ms, p50, p99)
}

fn run_one(cfg: RunConfig, stream: &[u64], queries: &[u64]) -> RunResult {
    let builder = AsketchBuilder {
        total_bytes: TOTAL_BYTES,
        depth: DEPTH,
        filter_items: FILTER_ITEMS,
        filter_kind: cfg.filter.unwrap_or(FilterKind::RelaxedHeap),
        seed: SEED,
    };
    let (updates_per_ms, p50, p99) = match (cfg.filter, cfg.backend) {
        (None, Backend::CountMin) => measure(
            || CountMin::with_byte_budget(SEED, DEPTH, TOTAL_BYTES).expect("budget fits"),
            stream,
            queries,
            cfg.batch_size,
        ),
        (None, Backend::Fcm) => measure(
            || {
                Fcm::with_byte_budget(SEED, DEPTH, TOTAL_BYTES, Some(FILTER_ITEMS))
                    .expect("budget fits")
            },
            stream,
            queries,
            cfg.batch_size,
        ),
        (Some(_), Backend::CountMin) => measure(
            || builder.build_count_min().expect("budget fits"),
            stream,
            queries,
            cfg.batch_size,
        ),
        (Some(_), Backend::Fcm) => measure(
            || builder.build_fcm().expect("budget fits"),
            stream,
            queries,
            cfg.batch_size,
        ),
        (None, Backend::Blocked) => measure(
            || {
                BlockedCountMin::with_byte_budget(SEED, BLOCKED_DEPTH, TOTAL_BYTES)
                    .expect("budget fits")
            },
            stream,
            queries,
            cfg.batch_size,
        ),
        (Some(_), Backend::Blocked) => measure(
            || builder.build_blocked().expect("budget fits"),
            stream,
            queries,
            cfg.batch_size,
        ),
    };
    RunResult {
        cfg,
        updates_per_ms,
        estimate_p50_ns: p50,
        estimate_p99_ns: p99,
    }
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

/// Hand-rolled writer (no JSON dependency in this workspace): one result
/// object per line, which the validator below relies on.
fn write_json(
    path: &str,
    smoke: bool,
    stream_len: usize,
    distinct: u64,
    results: &[RunResult],
    spine: &[SpineRow],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"commit\": \"{}\",", git_commit());
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"config\": {{\"stream_len\": {stream_len}, \"distinct\": {distinct}, \
         \"total_bytes\": {TOTAL_BYTES}, \"depth\": {DEPTH}, \
         \"filter_items\": {FILTER_ITEMS}, \"seed\": {SEED}}},"
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"skew\": {}, \"filter\": \"{}\", \"backend\": \"{}\", \
             \"batch_size\": {}, \"updates_per_ms\": {}, \
             \"estimate_p50_ns\": {}, \"estimate_p99_ns\": {}}}{comma}",
            json_f64(r.cfg.skew),
            filter_name(r.cfg.filter),
            r.cfg.backend.name(),
            r.cfg.batch_size,
            json_f64(r.updates_per_ms),
            r.estimate_p50_ns,
            r.estimate_p99_ns,
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"spine\": [\n");
    for (i, s) in spine.iter().enumerate() {
        let comma = if i + 1 < spine.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"plane\": \"{}\", \"shards\": {}, \"router_batch\": {}, \
             \"updates_per_ms\": {}}}{comma}",
            s.plane,
            s.shards,
            s.router_batch,
            json_f64(s.updates_per_ms),
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Pull `"key": value` out of a single result line. The writer emits one
/// object per line, so line-scoped scanning is unambiguous.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Validate the JSON artifact: schema fields present, every result line
/// complete, and the batched kernels beating the scalar baseline by
/// `min_speedup` for at least one configuration at the smoke skew.
fn validate(path: &str, min_speedup: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"schema_version\"",
        "\"commit\"",
        "\"config\"",
        "\"results\"",
    ] {
        if !text.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    // (skew, filter, backend) -> (scalar updates/ms, best batched updates/ms)
    let mut groups: std::collections::HashMap<String, (f64, f64)> =
        std::collections::HashMap::new();
    let mut rows = 0usize;
    for line in text.lines().filter(|l| l.contains("\"batch_size\"")) {
        rows += 1;
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("result row missing \"{k}\": {line}"));
        let skew: f64 = get("skew")?.parse().map_err(|e| format!("bad skew: {e}"))?;
        let filter = get("filter")?.to_string();
        let backend = get("backend")?.to_string();
        let batch: usize = get("batch_size")?
            .parse()
            .map_err(|e| format!("bad batch_size: {e}"))?;
        let per_ms: f64 = get("updates_per_ms")?
            .parse()
            .map_err(|e| format!("bad updates_per_ms: {e}"))?;
        get("estimate_p50_ns")?;
        get("estimate_p99_ns")?;
        if per_ms <= 0.0 {
            return Err(format!("non-positive updates_per_ms: {line}"));
        }
        let entry = groups
            .entry(format!("{skew}/{filter}/{backend}"))
            .or_insert((0.0, 0.0));
        if batch == 1 {
            entry.0 = per_ms;
        } else {
            entry.1 = entry.1.max(per_ms);
        }
    }
    if rows == 0 {
        return Err("no result rows".to_string());
    }
    let smoke_key = format!("{SMOKE_SKEW}/");
    let mut best = 0.0f64;
    let mut best_group = String::new();
    for (key, &(scalar, batched)) in groups.iter().filter(|(k, _)| k.starts_with(&smoke_key)) {
        if scalar > 0.0 && batched / scalar > best {
            best = batched / scalar;
            best_group = key.clone();
        }
    }
    if best < min_speedup {
        return Err(format!(
            "batched/scalar speedup {best:.2}x (best group \"{best_group}\") \
             below required {min_speedup:.2}x at skew {SMOKE_SKEW}"
        ));
    }
    println!(
        "OK: {rows} rows, best batched speedup {best:.2}x ({best_group}) >= {min_speedup:.2}x"
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Concurrent runtime sweep (`--concurrent` / `--validate-concurrent`)
// ---------------------------------------------------------------------------

/// The mixed read fraction the CI scaling gate checks (90% writes / 10%
/// reads).
const GATE_READ_FRAC: f64 = 0.1;

/// Aggregate sketch budget for the concurrent sweep, split across shards.
/// Much smaller than the batched-kernel sweep's budget: the runtime
/// checkpoints whole-kernel clones into its replay journal, so the kernel
/// must be sized for cloning (the regime the runtime targets), not for the
/// prefetch pipeline's DRAM-latency study.
const CONC_TOTAL_BYTES: usize = 1 << 20;

/// Per-read retry budget for the wait-freedom gate. A wait-free read
/// retries only when an entire publish cycle laps it mid-read, so any
/// single read needing more than this many retry loops means the reader
/// was made to wait on writer progress — i.e. the read path is no longer
/// wait-free in practice (as it would be if a lock or a
/// spin-on-odd-sequence wait sneaked in). `reader_blocked` counts such
/// reads, *measured* per read by the bench driver (the sole reader, so
/// the delta of the owning shard's retry counter across one `estimate`
/// call is exact), concurrently with live worker publishes.
const READ_RETRY_BOUND: u64 = 8;

/// One sweep mode: drives a (shards, read_frac, skew) cell over the shared
/// stream/query sets and reports a result row.
type ConcRun = fn(usize, f64, f64, &[u64], &[u64]) -> ConcRow;

struct ConcRow {
    mode: &'static str,
    skew: f64,
    shards: usize,
    read_frac: f64,
    ops_per_ms: f64,
    writes: u64,
    reads: u64,
    reader_retries: u64,
    /// Reads that exceeded [`READ_RETRY_BOUND`] seqlock retries, summed
    /// over every measurement pass (the gate is `== 0`, so every pass
    /// counts even though throughput reports only the best one).
    reader_blocked: u64,
    max_occupancy: f64,
    restarts: u64,
}

/// Per-shard kernel for the concurrent sweep: exact vector filter in front
/// of a Count-Min slice of the shared byte budget, so the aggregate
/// synopsis stays comparable across shard counts.
fn conc_kernel(shard: usize, shards: usize) -> ASketch<VectorFilter, CountMin> {
    let per_shard = (CONC_TOTAL_BYTES / shards).max(1 << 14);
    ASketch::new(
        VectorFilter::new(FILTER_ITEMS),
        CountMin::with_byte_budget(SEED ^ shard as u64, DEPTH, per_shard).expect("budget fits"),
    )
}

/// Runtime tuning for the sweep: journal checkpoints are whole-kernel
/// clones, so space them an order of magnitude further apart than the
/// supervision default to keep snapshot traffic off the measured path.
fn conc_config(shards: usize) -> ConcurrentConfig {
    let mut cfg = ConcurrentConfig {
        shards,
        ..ConcurrentConfig::default()
    };
    cfg.supervision.checkpoint_interval = 16_384;
    cfg
}

/// Drive one mixed read/write run against the live concurrent runtime: the
/// driver interleaves wait-free `QueryHandle` reads into the write stream
/// at `read_frac` (reads / total ops), then syncs. Wall-clock covers the
/// whole mixed run including the final sync barrier.
fn run_concurrent_one(
    shards: usize,
    read_frac: f64,
    skew: f64,
    stream: &[u64],
    queries: &[u64],
) -> ConcRow {
    let cfg = conc_config(shards);
    let reads_per_write = if read_frac >= 1.0 {
        0.0
    } else {
        read_frac / (1.0 - read_frac)
    };
    const MEASURE_PASSES: usize = 2;
    let mut best_per_ms = 0.0f64;
    let mut reads = 0u64;
    let mut retries = 0u64;
    let mut blocked = 0u64;
    let mut occupancy = 0.0f64;
    let mut restarts = 0u64;
    for _ in 0..MEASURE_PASSES {
        let mut rt = ConcurrentASketch::spawn(cfg.clone(), |i| conc_kernel(i, shards));
        let handle = rt.query_handle();
        let partition = handle.partition();
        let mut credit = 0.0f64;
        let mut pass_reads = 0u64;
        let mut qi = 0usize;
        let mut acc = 0i64;
        let midpoint = stream.len() / 2;
        let mut mid_occupancy = 0.0f64;
        let t0 = Instant::now();
        for (i, &k) in stream.iter().enumerate() {
            rt.insert(k);
            credit += reads_per_write;
            while credit >= 1.0 {
                let key = queries[qi];
                let shard = partition.shard_of(key);
                let retries_before = handle.shard(shard).reader_retries();
                acc = acc.wrapping_add(handle.estimate(key));
                if handle.shard(shard).reader_retries() - retries_before > READ_RETRY_BOUND {
                    blocked += 1;
                }
                qi = (qi + 1) % queries.len();
                credit -= 1.0;
                pass_reads += 1;
            }
            if i == midpoint {
                // Sample queue occupancy while the run is actually hot;
                // after sync() the queues are drained by definition.
                mid_occupancy = rt.health().max_occupancy();
            }
        }
        rt.sync();
        let elapsed = t0.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        let total_ops = stream.len() as u64 + pass_reads;
        let per_ms = total_ops as f64 / (elapsed * 1e3);
        let health = rt.health();
        if per_ms > best_per_ms {
            best_per_ms = per_ms;
            reads = pass_reads;
            retries = health.total_reader_retries();
            occupancy = mid_occupancy;
            restarts = health.total_restarts();
        }
        drop(rt);
    }
    ConcRow {
        mode: "concurrent",
        skew,
        shards,
        read_frac,
        ops_per_ms: best_per_ms,
        writes: stream.len() as u64,
        reads,
        reader_retries: retries,
        reader_blocked: blocked,
        max_occupancy: occupancy,
        restarts,
    }
}

/// Offline SPMD baseline for the same mixed volume: key-partitioned batch
/// ingest (`ingest_keyed`) followed by the read volume answered through
/// `SpmdGroup::estimate_batch`. Reads here happen *after* ingest — the
/// baseline cannot serve them mid-stream, which is exactly the gap the
/// concurrent runtime closes.
fn run_spmd_one(
    shards: usize,
    read_frac: f64,
    skew: f64,
    stream: &[u64],
    queries: &[u64],
) -> ConcRow {
    let keyed = hash_shards(stream, shards);
    let (group, ingest_ns, report) =
        SpmdGroup::ingest_keyed(&keyed, |i| conc_kernel(i, shards), 3).expect("clean ingest");
    let reads_wanted = if read_frac >= 1.0 {
        0
    } else {
        (stream.len() as f64 * read_frac / (1.0 - read_frac)).round() as usize
    };
    let mut batch: Vec<u64> = Vec::with_capacity(reads_wanted);
    while batch.len() < reads_wanted {
        let take = (reads_wanted - batch.len()).min(queries.len());
        batch.extend_from_slice(&queries[..take]);
    }
    let t0 = Instant::now();
    let answers = group.estimate_batch(&batch);
    let query_ns = t0.elapsed().as_nanos();
    std::hint::black_box(answers.len());
    let total_ops = stream.len() as u64 + reads_wanted as u64;
    let total_ns = ingest_ns + query_ns;
    ConcRow {
        mode: "spmd-batch",
        skew,
        shards,
        read_frac,
        ops_per_ms: total_ops as f64 / (total_ns as f64 / 1e6),
        writes: stream.len() as u64,
        reads: reads_wanted as u64,
        reader_retries: 0,
        // Offline reads run after ingest with exclusive access: there is
        // no concurrent publish to race, hence zero by definition here.
        reader_blocked: 0,
        max_occupancy: 0.0,
        restarts: report.recovered.len() as u64,
    }
}

fn write_concurrent_json(
    path: &str,
    smoke: bool,
    stream_len: usize,
    distinct: u64,
    rows: &[ConcRow],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"commit\": \"{}\",", git_commit());
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"config\": {{\"stream_len\": {stream_len}, \"distinct\": {distinct}, \
         \"total_bytes\": {CONC_TOTAL_BYTES}, \"depth\": {DEPTH}, \
         \"filter_items\": {FILTER_ITEMS}, \"seed\": {SEED}}},"
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"skew\": {}, \"shards\": {}, \"read_frac\": {}, \
             \"ops_per_ms\": {}, \"writes\": {}, \"reads\": {}, \
             \"reader_retries\": {}, \"reader_blocked\": {}, \
             \"max_occupancy\": {}, \"restarts\": {}}}{comma}",
            r.mode,
            json_f64(r.skew),
            r.shards,
            json_f64(r.read_frac),
            json_f64(r.ops_per_ms),
            r.writes,
            r.reads,
            r.reader_retries,
            r.reader_blocked,
            json_f64(r.max_occupancy),
            r.restarts,
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Validate `BENCH_concurrent.json`: schema shape, strictly zero
/// retry-bound-exceeding reads (`reader_blocked`, measured per read by the
/// sweep — see [`READ_RETRY_BOUND`]) on every row, and the 4-shard mixed
/// 90/10 run beating the 1-shard run at the smoke skew by `min_scaling`.
fn validate_concurrent(path: &str, min_scaling: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"schema_version\"",
        "\"commit\"",
        "\"config\"",
        "\"results\"",
    ] {
        if !text.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let mut rows = 0usize;
    // shards -> ops/ms for the gated (concurrent, smoke skew, 90/10) rows.
    let mut gate: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    for line in text.lines().filter(|l| l.contains("\"mode\"")) {
        rows += 1;
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("result row missing \"{k}\": {line}"));
        let mode = get("mode")?.to_string();
        let skew: f64 = get("skew")?.parse().map_err(|e| format!("bad skew: {e}"))?;
        let shards: usize = get("shards")?
            .parse()
            .map_err(|e| format!("bad shards: {e}"))?;
        let read_frac: f64 = get("read_frac")?
            .parse()
            .map_err(|e| format!("bad read_frac: {e}"))?;
        let per_ms: f64 = get("ops_per_ms")?
            .parse()
            .map_err(|e| format!("bad ops_per_ms: {e}"))?;
        let blocked: u64 = get("reader_blocked")?
            .parse()
            .map_err(|e| format!("bad reader_blocked: {e}"))?;
        get("reader_retries")?;
        get("restarts")?;
        if per_ms <= 0.0 {
            return Err(format!("non-positive ops_per_ms: {line}"));
        }
        if blocked != 0 {
            return Err(format!(
                "reader_blocked = {blocked}; the read path must stay wait-free: {line}"
            ));
        }
        if mode == "concurrent"
            && (skew - SMOKE_SKEW).abs() < 1e-9
            && (read_frac - GATE_READ_FRAC).abs() < 1e-9
        {
            gate.insert(shards, per_ms);
        }
    }
    if rows == 0 {
        return Err("no result rows".to_string());
    }
    let one = *gate
        .get(&1)
        .ok_or("missing 1-shard concurrent 90/10 row at the smoke skew")?;
    let four = *gate
        .get(&4)
        .ok_or("missing 4-shard concurrent 90/10 row at the smoke skew")?;
    let scaling = four / one;
    if scaling < min_scaling {
        return Err(format!(
            "4-shard/1-shard mixed 90/10 scaling {scaling:.2}x below required \
             {min_scaling:.2}x at skew {SMOKE_SKEW}"
        ));
    }
    println!(
        "OK: {rows} rows, reader_blocked = 0 everywhere, 4-shard/1-shard mixed \
         90/10 scaling {scaling:.2}x >= {min_scaling:.2}x"
    );
    Ok(())
}

fn run_concurrent_sweep(smoke: bool, out_path: &str) {
    let (stream_len, distinct) = if smoke {
        (1 << 19, 1 << 15)
    } else {
        (1 << 20, 1 << 16)
    };
    let skews: &[f64] = if smoke {
        &[SMOKE_SKEW]
    } else {
        &[SMOKE_SKEW, 1.5]
    };
    let shard_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4] };
    let read_fracs: &[f64] = if smoke {
        &[GATE_READ_FRAC]
    } else {
        &[0.0, GATE_READ_FRAC, 0.5]
    };
    let mut rows = Vec::new();
    for &skew in skews {
        let spec = StreamSpec {
            len: stream_len,
            distinct: distinct as u64,
            skew,
            seed: SEED,
        };
        let stream = spec.materialize();
        let queries = query::sample_from_stream(SEED, &stream, QUERY_COUNT);
        for &shards in shard_counts {
            for &read_frac in read_fracs {
                let runs: [ConcRun; 2] = [run_concurrent_one, run_spmd_one];
                for run in runs {
                    let r = run(shards, read_frac, skew, &stream, &queries);
                    eprintln!(
                        "mode={} skew={skew} shards={shards} read_frac={read_frac}: \
                         {:.0} ops/ms ({} writes, {} reads, {} retries, {} restarts)",
                        r.mode, r.ops_per_ms, r.writes, r.reads, r.reader_retries, r.restarts,
                    );
                    rows.push(r);
                    // Flush after every row: a panic mid-sweep keeps the
                    // finished rows in a well-formed partial artifact.
                    write_concurrent_json(out_path, smoke, stream_len, distinct as u64, &rows)
                        .expect("write results");
                }
            }
        }
    }
    eprintln!("wrote {out_path} ({} rows)", rows.len());
}

// ---------------------------------------------------------------------------
// Memory-layout sweep (`--layout` / `--validate-layout`)
// ---------------------------------------------------------------------------

/// The speedup the layout gate demands from the blocked backend over
/// row-major Count-Min on low-skew (`z <= 1.0`) rows at equal byte budget.
const LAYOUT_MIN_SPEEDUP: f64 = 1.3;

/// The layout sweep benchmarks the narrow-cell blocked variant
/// ([`sketches::BlockedCountMin32`], 16 `i32` cells per line) at this probe
/// depth. Sixteen slots per line drop the in-line cover probability for two
/// colliding keys to `1/C(16,4)` (vs `1/C(8,4)` for `i64` lines), which is
/// what keeps the blocked error within the gate's `2x` of Count-Min at low
/// skew; depth 4 keeps the slot-derivation loop off the critical path. The
/// runtime builder wires the `i64` variant instead — its counters carry no
/// stream-mass bound, the right default outside a benchmark harness.
const LAYOUT_BLOCKED_DEPTH: usize = 4;

struct LayoutRow {
    skew: f64,
    backend: &'static str,
    batch_size: usize,
    budget_bytes: usize,
    depth: usize,
    cell_bits: usize,
    updates_per_ms: f64,
    observed_error_pct: f64,
    one_sided: bool,
}

/// Ingest best-of-3 (fresh estimator per pass), then compute observed error
/// and a one-sidedness check over the query set from the final pass.
fn layout_measure<E: FrequencyEstimator>(
    build: impl Fn() -> E,
    stream: &[u64],
    queries: &[u64],
    truth: &ExactCounter,
    batch: usize,
) -> (f64, f64, bool) {
    const MEASURE_PASSES: usize = 3;
    let mut best_per_ms = 0.0f64;
    let mut est = None;
    for _ in 0..MEASURE_PASSES {
        let mut fresh = build();
        let t0 = Instant::now();
        if batch <= 1 {
            for &k in stream {
                fresh.update(k, 1);
            }
        } else {
            for part in stream.chunks(batch) {
                fresh.insert_batch(part);
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        best_per_ms = best_per_ms.max(stream.len() as f64 / (elapsed * 1e3));
        est = Some(fresh);
    }
    let est = est.expect("at least one pass");
    let mut one_sided = true;
    let pairs: Vec<EstimatePair> = queries
        .iter()
        .map(|&q| {
            let t = truth.count(q);
            let e = est.estimate(q);
            one_sided &= e >= t;
            EstimatePair {
                estimated: e,
                truth: t,
            }
        })
        .collect();
    let err = observed_error_pct(&pairs).unwrap_or(0.0);
    (best_per_ms, err, one_sided)
}

fn run_layout_sweep(smoke: bool, out_path: &str) {
    let (stream_len, distinct) = if smoke {
        (1 << 20, 1 << 16)
    } else {
        (1 << 21, 1 << 17)
    };
    let skews: &[f64] = if smoke { &[0.6, 1.4] } else { &[0.6, 1.0, 1.4] };
    let budgets: &[usize] = if smoke {
        &[1 << 22]
    } else {
        &[1 << 22, 1 << 26]
    };
    let batches: &[usize] = &[1, 256];
    let mut rows = Vec::new();
    for &skew in skews {
        let spec = StreamSpec {
            len: stream_len,
            distinct,
            skew,
            seed: SEED,
        };
        let stream = spec.materialize();
        let truth = ExactCounter::from_keys(&stream);
        let queries = query::sample_from_stream(SEED, &stream, QUERY_COUNT);
        for &budget in budgets {
            for &batch_size in batches {
                let cm = layout_measure(
                    || CountMin::with_byte_budget(SEED, DEPTH, budget).expect("budget fits"),
                    &stream,
                    &queries,
                    &truth,
                    batch_size,
                );
                let bl = layout_measure(
                    || {
                        BlockedCountMin32::with_byte_budget(SEED, LAYOUT_BLOCKED_DEPTH, budget)
                            .expect("budget fits")
                    },
                    &stream,
                    &queries,
                    &truth,
                    batch_size,
                );
                for (backend, depth, cell_bits, (per_ms, err, one_sided)) in [
                    ("count-min", DEPTH, 64, cm),
                    ("blocked", LAYOUT_BLOCKED_DEPTH, 32, bl),
                ] {
                    eprintln!(
                        "layout skew={skew} budget={budget} batch={batch_size} \
                         backend={backend}: {per_ms:.0} updates/ms, err={err:.3}%, \
                         one_sided={one_sided}"
                    );
                    rows.push(LayoutRow {
                        skew,
                        backend,
                        batch_size,
                        budget_bytes: budget,
                        depth,
                        cell_bits,
                        updates_per_ms: per_ms,
                        observed_error_pct: err,
                        one_sided,
                    });
                    // Flush after every row: a panic mid-sweep keeps the
                    // finished rows in a well-formed partial artifact.
                    write_layout_json(out_path, smoke, stream_len, distinct, &rows)
                        .expect("write results");
                }
            }
        }
    }
    eprintln!("wrote {out_path} ({} rows)", rows.len());
}

fn write_layout_json(
    path: &str,
    smoke: bool,
    stream_len: usize,
    distinct: u64,
    rows: &[LayoutRow],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"commit\": \"{}\",", git_commit());
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"config\": {{\"stream_len\": {stream_len}, \"distinct\": {distinct}, \
         \"depth\": {DEPTH}, \"blocked_depth\": {LAYOUT_BLOCKED_DEPTH}, \"seed\": {SEED}}},"
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"skew\": {}, \"backend\": \"{}\", \"batch_size\": {}, \
             \"budget_bytes\": {}, \"depth\": {}, \"cell_bits\": {}, \
             \"updates_per_ms\": {}, \"observed_error_pct\": {}, \
             \"one_sided\": {}}}{comma}",
            json_f64(r.skew),
            r.backend,
            r.batch_size,
            r.budget_bytes,
            r.depth,
            r.cell_bits,
            json_f64(r.updates_per_ms),
            json_f64(r.observed_error_pct),
            r.one_sided,
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Validate `BENCH_layout.json`: schema shape; `one_sided` true on every
/// row; and per (skew, budget, batch) cell the blocked backend must (a)
/// beat Count-Min's `updates_per_ms` by `min_speedup` whenever
/// `skew <= 1.0`, and (b) keep `observed_error_pct` within
/// `2 x Count-Min + 0.05` points on every row.
fn validate_layout(path: &str, min_speedup: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"schema_version\"",
        "\"commit\"",
        "\"config\"",
        "\"results\"",
    ] {
        if !text.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    // (skew, budget, batch) -> (count-min row, blocked row) as
    // (updates_per_ms, observed_error_pct).
    type Cell = (Option<(f64, f64)>, Option<(f64, f64)>);
    let mut cells: std::collections::HashMap<String, Cell> = std::collections::HashMap::new();
    let mut rows = 0usize;
    for line in text.lines().filter(|l| l.contains("\"budget_bytes\"")) {
        rows += 1;
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("result row missing \"{k}\": {line}"));
        let skew: f64 = get("skew")?.parse().map_err(|e| format!("bad skew: {e}"))?;
        let backend = get("backend")?.to_string();
        let batch: usize = get("batch_size")?
            .parse()
            .map_err(|e| format!("bad batch_size: {e}"))?;
        let budget: usize = get("budget_bytes")?
            .parse()
            .map_err(|e| format!("bad budget_bytes: {e}"))?;
        get("depth")?;
        let per_ms: f64 = get("updates_per_ms")?
            .parse()
            .map_err(|e| format!("bad updates_per_ms: {e}"))?;
        let err: f64 = get("observed_error_pct")?
            .parse()
            .map_err(|e| format!("bad observed_error_pct: {e}"))?;
        let one_sided = get("one_sided")?;
        if per_ms <= 0.0 {
            return Err(format!("non-positive updates_per_ms: {line}"));
        }
        if one_sided != "true" {
            return Err(format!("one-sidedness violated: {line}"));
        }
        let cell = cells
            .entry(format!("skew {skew} / budget {budget} / batch {batch}"))
            .or_insert((None, None));
        match backend.as_str() {
            "count-min" => cell.0 = Some((per_ms, err)),
            "blocked" => cell.1 = Some((per_ms, err)),
            other => return Err(format!("unknown backend \"{other}\": {line}")),
        }
    }
    if rows == 0 {
        return Err("no result rows".to_string());
    }
    let mut gated = 0usize;
    let mut worst_speedup = f64::INFINITY;
    for (key, (cm, bl)) in &cells {
        let (cm_ms, cm_err) = cm.ok_or(format!("{key}: missing count-min row"))?;
        let (bl_ms, bl_err) = bl.ok_or(format!("{key}: missing blocked row"))?;
        if bl_err > 2.0 * cm_err + 0.05 {
            return Err(format!(
                "{key}: blocked error {bl_err:.3}% exceeds 2x count-min {cm_err:.3}% + 0.05"
            ));
        }
        let skew: f64 = key
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or(format!("unparseable cell key {key}"))?;
        if skew <= 1.0 {
            gated += 1;
            let speedup = bl_ms / cm_ms;
            worst_speedup = worst_speedup.min(speedup);
            if speedup < min_speedup {
                return Err(format!(
                    "{key}: blocked speedup {speedup:.2}x below required {min_speedup:.2}x"
                ));
            }
        }
    }
    if gated == 0 {
        return Err("no z <= 1.0 cells to gate".to_string());
    }
    println!(
        "OK: {rows} rows, one-sided everywhere, blocked error within 2x count-min, \
         worst low-skew speedup {worst_speedup:.2}x >= {min_speedup:.2}x ({gated} gated cells)"
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Durability / recovery sweep (`--recovery` / `--validate-recovery`)
// ---------------------------------------------------------------------------

/// Ingest-overhead budget for the WAL at `fsync=interval`: the durable
/// runtime must keep at least `1 - 0.25` of the no-durability throughput.
const RECOVERY_MAX_OVERHEAD: f64 = 0.25;

/// Replay-speed floor: recovering a shard (snapshot load + WAL replay)
/// must restore keys at no less than half that row's live ingest rate.
const RECOVERY_MIN_REPLAY_RATIO: f64 = 0.5;

/// Shard count for the recovery sweep (matches the crash harness).
const RECOVERY_SHARDS: usize = 2;

/// Router batch for the recovery sweep. WAL appends (and their periodic
/// fsyncs) run on the caller's ship path, so their cost is amortized per
/// batch: at 256-key batches an ext4 fsync every 32 batches costs more
/// than the 25% overhead budget allows, while the WAL's *byte* volume
/// (8 B/key) is batch-independent. 1024-key batches keep the same
/// durability semantics (a batch is still the WAL record unit) at a
/// per-key fsync cost the budget is meant to measure.
const RECOVERY_BATCH: usize = 1024;

struct RecoveryRow {
    mode: &'static str,
    fsync: &'static str,
    skew: f64,
    keys: u64,
    ingest_updates_per_ms: f64,
    /// Per-chunk insert latency over the ingest pass that won best
    /// throughput, in microseconds (chunk = 4096 keys). Group commit and
    /// deferred fsync exist to flatten the *tail*, so the sweep records
    /// it, not just the mean implied by updates/ms.
    ingest_p50_us: f64,
    ingest_p99_us: f64,
    recover_ms: f64,
    recovered_keys: u64,
    replay_keys_per_ms: f64,
    wal_records: u64,
    replayed_keys: u64,
    snapshot_keys: u64,
}

/// Batched ingest through the concurrent runtime; wall-clock includes the
/// final `sync` barrier (and, for durable runtimes, the WAL barrier), so
/// every measured key is applied — and durable — when the clock stops.
fn recovery_ingest(
    stream: &[u64],
    opts: Option<&DurabilityOptions>,
) -> (
    f64,
    (f64, f64),
    Option<ConcurrentASketch<VectorFilter, CountMin>>,
) {
    let mut cfg = conc_config(RECOVERY_SHARDS);
    cfg.batch = RECOVERY_BATCH;
    // Checkpoints feed the background snapshotter whole-kernel clones;
    // space them out so the sweep measures steady-state WAL cost (plus a
    // realistic handful of snapshots), not snapshot serialization.
    cfg.supervision.checkpoint_interval = 262_144;
    let shards = RECOVERY_SHARDS;
    let t0 = Instant::now();
    let mut rt = match opts {
        None => ConcurrentASketch::spawn(cfg, |i| conc_kernel(i, shards)),
        Some(o) => {
            ConcurrentASketch::spawn_durable(cfg, o, |i| conc_kernel(i, shards))
                .expect("spawn durable runtime")
                .0
        }
    };
    let mut chunk_ns: Vec<u64> = Vec::with_capacity(stream.len() / 4096 + 1);
    for part in stream.chunks(4096) {
        let tc = Instant::now();
        rt.insert_batch(part);
        chunk_ns.push(tc.elapsed().as_nanos() as u64);
    }
    rt.sync();
    if opts.is_some() {
        rt.wal_checkpoint().expect("durability barrier");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let per_ms = stream.len() as f64 / (elapsed * 1e3);
    chunk_ns.sort_unstable();
    let p50_us = chunk_ns[chunk_ns.len() / 2] as f64 / 1e3;
    let p99_us = chunk_ns[(chunk_ns.len() * 99 / 100).min(chunk_ns.len() - 1)] as f64 / 1e3;
    if opts.is_some() {
        (per_ms, (p50_us, p99_us), Some(rt))
    } else {
        drop(rt);
        (per_ms, (p50_us, p99_us), None)
    }
}

fn run_recovery_one(
    mode: &'static str,
    fsync: Option<(&'static str, FsyncPolicy)>,
    skew: f64,
    stream: &[u64],
    dir: &std::path::Path,
) -> RecoveryRow {
    const MEASURE_PASSES: usize = 3;
    let mut best = 0.0f64;
    let mut best_lat = (0.0f64, 0.0f64);
    let mut recover_ms = 0.0f64;
    let mut recovered_keys = 0u64;
    let mut wal_records = 0u64;
    let mut replayed_keys = 0u64;
    let mut snapshot_keys = 0u64;
    let mut replay_per_ms = 0.0f64;
    for _ in 0..MEASURE_PASSES {
        let _ = std::fs::remove_dir_all(dir);
        let opts = fsync.map(|(_, policy)| DurabilityOptions::new(dir).fsync(policy));
        let (per_ms, lat, rt) = recovery_ingest(stream, opts.as_ref());
        if per_ms > best {
            best = per_ms;
            best_lat = lat;
        }
        let Some(rt) = rt else { continue };
        // Simulate the crash: drop without `finish`, so the final snapshot
        // is never written and recovery must replay the WAL suffix past
        // whatever the background snapshotter got to.
        drop(rt);
        let opts = opts.expect("durable pass has options");
        let t0 = Instant::now();
        let mut pass_keys = 0u64;
        let mut pass_wal = 0u64;
        let mut pass_replayed = 0u64;
        let mut pass_snap = 0u64;
        for shard in 0..RECOVERY_SHARDS {
            let (kernel, report) = recover_kernel(&opts.shard_dir(shard), true, || {
                conc_kernel(shard, RECOVERY_SHARDS)
            })
            .expect("recovery completes");
            std::hint::black_box(&kernel);
            let snap = report.snapshot.map_or(0, |m| m.ops);
            pass_snap += snap;
            pass_keys += snap + report.replayed_keys;
            pass_wal += report.wal_records;
            pass_replayed += report.replayed_keys;
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let pass_rate = pass_keys as f64 / ms;
        if pass_rate > replay_per_ms {
            replay_per_ms = pass_rate;
            recover_ms = ms;
            recovered_keys = pass_keys;
            wal_records = pass_wal;
            replayed_keys = pass_replayed;
            snapshot_keys = pass_snap;
        }
    }
    let _ = std::fs::remove_dir_all(dir);
    RecoveryRow {
        mode,
        fsync: fsync.map_or("none", |(name, _)| name),
        skew,
        keys: stream.len() as u64,
        ingest_updates_per_ms: best,
        ingest_p50_us: best_lat.0,
        ingest_p99_us: best_lat.1,
        recover_ms,
        recovered_keys,
        replay_keys_per_ms: replay_per_ms,
        wal_records,
        replayed_keys,
        snapshot_keys,
    }
}

fn write_recovery_json(
    path: &str,
    smoke: bool,
    stream_len: usize,
    distinct: u64,
    rows: &[RecoveryRow],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    // v2: rows carry per-chunk ingest latency (ingest_p50_us/ingest_p99_us).
    let _ = writeln!(out, "  \"schema_version\": 2,");
    let _ = writeln!(out, "  \"commit\": \"{}\",", git_commit());
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"config\": {{\"stream_len\": {stream_len}, \"distinct\": {distinct}, \
         \"total_bytes\": {CONC_TOTAL_BYTES}, \"depth\": {DEPTH}, \
         \"shards\": {RECOVERY_SHARDS}, \"filter_items\": {FILTER_ITEMS}, \
         \"seed\": {SEED}}},"
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"fsync\": \"{}\", \"skew\": {}, \"keys\": {}, \
             \"ingest_updates_per_ms\": {}, \"ingest_p50_us\": {}, \
             \"ingest_p99_us\": {}, \"recover_ms\": {}, \
             \"recovered_keys\": {}, \"replay_keys_per_ms\": {}, \
             \"wal_records\": {}, \"replayed_keys\": {}, \"snapshot_keys\": {}}}{comma}",
            r.mode,
            r.fsync,
            json_f64(r.skew),
            r.keys,
            json_f64(r.ingest_updates_per_ms),
            json_f64(r.ingest_p50_us),
            json_f64(r.ingest_p99_us),
            json_f64(r.recover_ms),
            r.recovered_keys,
            json_f64(r.replay_keys_per_ms),
            r.wal_records,
            r.replayed_keys,
            r.snapshot_keys,
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn run_recovery_sweep(smoke: bool, out_path: &str) {
    let stream_len = if smoke { 1 << 19 } else { 1 << 20 };
    let distinct = 1u64 << 16;
    let spec = StreamSpec {
        len: stream_len,
        distinct,
        skew: SMOKE_SKEW,
        seed: SEED,
    };
    let stream = spec.materialize();
    let dir = std::env::temp_dir().join(format!("asketch-bench-recovery-{}", std::process::id()));
    let modes: [(&'static str, Option<(&'static str, FsyncPolicy)>); 3] = [
        ("baseline", None),
        ("durable", Some(("interval", FsyncPolicy::Interval(32)))),
        ("durable", Some(("per-batch", FsyncPolicy::PerBatch))),
    ];
    let mut rows = Vec::new();
    for (mode, fsync) in modes {
        let r = run_recovery_one(mode, fsync, SMOKE_SKEW, &stream, &dir);
        eprintln!(
            "recovery mode={mode} fsync={}: ingest {:.0} updates/ms \
             (chunk p50 {:.0}us p99 {:.0}us), recover \
             {:.1}ms ({} keys, {:.0} keys/ms replay, {} WAL records)",
            r.fsync,
            r.ingest_updates_per_ms,
            r.ingest_p50_us,
            r.ingest_p99_us,
            r.recover_ms,
            r.recovered_keys,
            r.replay_keys_per_ms,
            r.wal_records,
        );
        rows.push(r);
        // Flush after every row: a panic mid-sweep keeps finished rows.
        write_recovery_json(out_path, smoke, stream_len, distinct, &rows).expect("write results");
    }
    eprintln!("wrote {out_path} ({} rows)", rows.len());
}

/// Validate `BENCH_recovery.json`: schema shape; the `fsync=interval`
/// durable ingest within `max_overhead` of the no-durability baseline;
/// every durable row recovered a non-empty state with replay throughput at
/// least `min_replay_ratio` of that row's own live ingest rate.
fn validate_recovery(path: &str, max_overhead: f64, min_replay_ratio: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"schema_version\"",
        "\"commit\"",
        "\"config\"",
        "\"results\"",
    ] {
        if !text.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let mut rows = 0usize;
    let mut baseline: Option<f64> = None;
    let mut interval: Option<f64> = None;
    let mut worst_replay = f64::INFINITY;
    for line in text.lines().filter(|l| l.contains("\"fsync\"")) {
        rows += 1;
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("result row missing \"{k}\": {line}"));
        let mode = get("mode")?.to_string();
        let fsync = get("fsync")?.to_string();
        let ingest: f64 = get("ingest_updates_per_ms")?
            .parse()
            .map_err(|e| format!("bad ingest_updates_per_ms: {e}"))?;
        let recovered: u64 = get("recovered_keys")?
            .parse()
            .map_err(|e| format!("bad recovered_keys: {e}"))?;
        let replay: f64 = get("replay_keys_per_ms")?
            .parse()
            .map_err(|e| format!("bad replay_keys_per_ms: {e}"))?;
        let keys: u64 = get("keys")?.parse().map_err(|e| format!("bad keys: {e}"))?;
        let p50: f64 = get("ingest_p50_us")?
            .parse()
            .map_err(|e| format!("bad ingest_p50_us: {e}"))?;
        let p99: f64 = get("ingest_p99_us")?
            .parse()
            .map_err(|e| format!("bad ingest_p99_us: {e}"))?;
        get("wal_records")?;
        get("replayed_keys")?;
        if ingest <= 0.0 {
            return Err(format!("non-positive ingest_updates_per_ms: {line}"));
        }
        if p50 <= 0.0 || p99 < p50 {
            return Err(format!(
                "implausible ingest latency percentiles (p50 {p50}us, p99 {p99}us): {line}"
            ));
        }
        match mode.as_str() {
            "baseline" => baseline = Some(ingest),
            "durable" => {
                if recovered != keys {
                    return Err(format!(
                        "durable row recovered {recovered} of {keys} keys — \
                         crash recovery lost acknowledged writes: {line}"
                    ));
                }
                let ratio = replay / ingest;
                worst_replay = worst_replay.min(ratio);
                if ratio < min_replay_ratio {
                    return Err(format!(
                        "replay {replay:.0} keys/ms is only {ratio:.2}x of live \
                         ingest {ingest:.0} (need {min_replay_ratio:.2}x): {line}"
                    ));
                }
                if fsync == "interval" {
                    interval = Some(ingest);
                }
            }
            other => return Err(format!("unknown mode \"{other}\": {line}")),
        }
    }
    if rows == 0 {
        return Err("no result rows".to_string());
    }
    let base = baseline.ok_or("missing baseline (no-durability) row")?;
    let wal = interval.ok_or("missing durable fsync=interval row")?;
    let overhead = 1.0 - wal / base;
    if overhead > max_overhead {
        return Err(format!(
            "WAL ingest overhead {:.1}% at fsync=interval exceeds the {:.1}% budget \
             ({wal:.0} vs baseline {base:.0} updates/ms)",
            overhead * 100.0,
            max_overhead * 100.0
        ));
    }
    println!(
        "OK: {rows} rows, WAL overhead {:.1}% <= {:.1}% at fsync=interval, full state \
         recovered everywhere, worst replay ratio {worst_replay:.2}x >= {min_replay_ratio:.2}x",
        overhead.max(0.0) * 100.0,
        max_overhead * 100.0
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Ingest-spine sweep (ring vs channel data plane; `--validate-spine`)
// ---------------------------------------------------------------------------

/// Default floor for the ring data plane: on a multi-core host at least
/// one (shards, router_batch) cell must ingest `>= 1.2x` the channel
/// plane's rate. Single-core hosts serialize router and workers, so CI
/// relaxes or skips this gate there (see `scripts/ci.sh`).
const SPINE_MIN_RING_SPEEDUP: f64 = 1.2;

/// One ingest run through the concurrent runtime with a given data plane.
/// Rows are keyed `plane`/`router_batch` — deliberately NOT `batch_size`,
/// so the batched-kernel validator and the regression comparator (both of
/// which filter lines on that literal) skip them.
struct SpineRow {
    plane: &'static str,
    shards: usize,
    router_batch: usize,
    updates_per_ms: f64,
}

/// Pure ingest (no reads, no durability) through the sharded runtime:
/// the cost under test is the router→worker hop itself. Wall-clock
/// includes the final `sync` barrier so every key is applied when the
/// clock stops. Best of 2 passes.
fn spine_ingest(plane: DataPlane, shards: usize, router_batch: usize, stream: &[u64]) -> f64 {
    const MEASURE_PASSES: usize = 2;
    let mut best = 0.0f64;
    for _ in 0..MEASURE_PASSES {
        let mut cfg = conc_config(shards);
        cfg.batch = router_batch;
        cfg.data_plane = plane;
        let t0 = Instant::now();
        let mut rt = ConcurrentASketch::spawn(cfg, |i| conc_kernel(i, shards));
        for part in stream.chunks(4096) {
            rt.insert_batch(part);
        }
        rt.sync();
        let elapsed = t0.elapsed().as_secs_f64();
        drop(rt);
        best = best.max(stream.len() as f64 / (elapsed * 1e3));
    }
    best
}

/// Channel-vs-ring rows for the throughput artifact. Planes alternate
/// within each (shards, router_batch) cell so both sides of a ratio see
/// the same thermal/cache neighborhood.
fn run_spine_sweep(smoke: bool) -> Vec<SpineRow> {
    let stream_len = if smoke { 1 << 19 } else { 1 << 20 };
    let spec = StreamSpec {
        len: stream_len,
        distinct: 1 << 16,
        skew: SMOKE_SKEW,
        seed: SEED,
    };
    let stream = spec.materialize();
    let shard_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let batches: &[usize] = &[256, 1024];
    let mut rows = Vec::new();
    for &shards in shard_counts {
        for &router_batch in batches {
            for (plane, name) in [(DataPlane::Channel, "channel"), (DataPlane::Ring, "ring")] {
                let per_ms = spine_ingest(plane, shards, router_batch, &stream);
                eprintln!(
                    "spine plane={name} shards={shards} router_batch={router_batch}: \
                     {per_ms:.0} updates/ms"
                );
                rows.push(SpineRow {
                    plane: name,
                    shards,
                    router_batch,
                    updates_per_ms: per_ms,
                });
            }
        }
    }
    rows
}

/// Validate the spine rows inside `BENCH_throughput.json`: both planes
/// present for every (shards, router_batch) cell, and the ring plane
/// beating the channel plane by `min_ring_speedup` in at least one cell.
fn validate_spine(path: &str, min_ring_speedup: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    // (shards, router_batch) -> (channel updates/ms, ring updates/ms)
    let mut cells: std::collections::HashMap<String, (f64, f64)> = std::collections::HashMap::new();
    let mut rows = 0usize;
    for line in text.lines().filter(|l| l.contains("\"plane\"")) {
        rows += 1;
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("spine row missing \"{k}\": {line}"));
        let plane = get("plane")?.to_string();
        let shards = get("shards")?.to_string();
        let batch = get("router_batch")?.to_string();
        let per_ms: f64 = get("updates_per_ms")?
            .parse()
            .map_err(|e| format!("bad updates_per_ms: {e}"))?;
        if per_ms <= 0.0 {
            return Err(format!("non-positive updates_per_ms: {line}"));
        }
        let cell = cells
            .entry(format!("shards {shards} / router_batch {batch}"))
            .or_insert((0.0, 0.0));
        match plane.as_str() {
            "channel" => cell.0 = per_ms,
            "ring" => cell.1 = per_ms,
            other => return Err(format!("unknown plane \"{other}\": {line}")),
        }
    }
    if rows == 0 {
        return Err("no spine rows (regenerate BENCH_throughput.json)".to_string());
    }
    let mut best = 0.0f64;
    let mut best_cell = String::new();
    for (key, &(channel, ring)) in &cells {
        if channel <= 0.0 || ring <= 0.0 {
            return Err(format!("cell \"{key}\" is missing a plane"));
        }
        if ring / channel > best {
            best = ring / channel;
            best_cell = key.clone();
        }
    }
    if best < min_ring_speedup {
        return Err(format!(
            "ring/channel speedup {best:.2}x (best cell \"{best_cell}\") below \
             required {min_ring_speedup:.2}x"
        ));
    }
    println!(
        "OK: {rows} spine rows, best ring/channel speedup {best:.2}x \
         ({best_cell}) >= {min_ring_speedup:.2}x"
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Regression comparison (`--regress OLD NEW`)
// ---------------------------------------------------------------------------

/// Compare two `BENCH_throughput.json` artifacts: for every
/// (skew, filter, backend, batch_size) row present in both, the fresh
/// `updates_per_ms` must be at least `(1 - tolerance)` of the baseline.
/// Rows only in one file are reported but don't fail (sweep shapes grow
/// across PRs). Improvements never fail.
fn regress(baseline_path: &str, fresh_path: &str, tolerance: f64) -> Result<(), String> {
    let parse = |path: &str| -> Result<std::collections::HashMap<String, f64>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let mut rows = std::collections::HashMap::new();
        for line in text.lines().filter(|l| l.contains("\"batch_size\"")) {
            let get = |k: &str| {
                field(line, k).ok_or_else(|| format!("{path}: row missing \"{k}\": {line}"))
            };
            let key = format!(
                "skew {} / filter {} / backend {} / batch {}",
                get("skew")?,
                get("filter")?,
                get("backend")?,
                get("batch_size")?
            );
            let per_ms: f64 = get("updates_per_ms")?
                .parse()
                .map_err(|e| format!("{path}: bad updates_per_ms: {e}"))?;
            rows.insert(key, per_ms);
        }
        if rows.is_empty() {
            return Err(format!("{path}: no result rows"));
        }
        Ok(rows)
    };
    let base = parse(baseline_path)?;
    let fresh = parse(fresh_path)?;
    let mut compared = 0usize;
    let mut worst_ratio = f64::INFINITY;
    let mut worst_key = String::new();
    for (key, &b) in &base {
        let Some(&f) = fresh.get(key) else { continue };
        compared += 1;
        let ratio = f / b;
        if ratio < worst_ratio {
            worst_ratio = ratio;
            worst_key = key.clone();
        }
        if ratio < 1.0 - tolerance {
            return Err(format!(
                "{key}: fresh {f:.0} updates/ms is {:.1}% below baseline {b:.0} \
                 (tolerance {:.0}%)",
                (1.0 - ratio) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if compared == 0 {
        return Err("no overlapping rows between baseline and fresh artifacts".to_string());
    }
    let only_base = base.len() - compared;
    let only_fresh = fresh.len().saturating_sub(compared);
    println!(
        "OK: {compared} rows compared (worst {worst_ratio:.2}x at \"{worst_key}\"), \
         {only_base} baseline-only, {only_fresh} fresh-only, tolerance {:.0}%",
        tolerance * 100.0
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut concurrent = false;
    let mut layout = false;
    let mut recovery = false;
    let mut out_path: Option<String> = None;
    let mut validate_path: Option<String> = None;
    let mut validate_concurrent_path: Option<String> = None;
    let mut validate_layout_path: Option<String> = None;
    let mut validate_recovery_path: Option<String> = None;
    let mut validate_spine_path: Option<String> = None;
    let mut regress_paths: Option<(String, String)> = None;
    let mut min_speedup = 1.5f64;
    let mut min_ring_speedup = SPINE_MIN_RING_SPEEDUP;
    let mut min_scaling = 2.0f64;
    let mut min_layout_speedup = LAYOUT_MIN_SPEEDUP;
    let mut max_overhead = RECOVERY_MAX_OVERHEAD;
    let mut min_replay_ratio = RECOVERY_MIN_REPLAY_RATIO;
    let mut tolerance = 0.15f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--concurrent" => concurrent = true,
            "--layout" => layout = true,
            "--recovery" => recovery = true,
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--validate" => {
                i += 1;
                validate_path = Some(args.get(i).expect("--validate needs a path").clone());
            }
            "--validate-concurrent" => {
                i += 1;
                validate_concurrent_path = Some(
                    args.get(i)
                        .expect("--validate-concurrent needs a path")
                        .clone(),
                );
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args
                    .get(i)
                    .expect("--min-speedup needs a value")
                    .parse()
                    .expect("min-speedup must be a number");
            }
            "--min-scaling" => {
                i += 1;
                min_scaling = args
                    .get(i)
                    .expect("--min-scaling needs a value")
                    .parse()
                    .expect("min-scaling must be a number");
            }
            "--validate-layout" => {
                i += 1;
                validate_layout_path =
                    Some(args.get(i).expect("--validate-layout needs a path").clone());
            }
            "--validate-recovery" => {
                i += 1;
                validate_recovery_path = Some(
                    args.get(i)
                        .expect("--validate-recovery needs a path")
                        .clone(),
                );
            }
            "--validate-spine" => {
                i += 1;
                validate_spine_path =
                    Some(args.get(i).expect("--validate-spine needs a path").clone());
            }
            "--min-ring-speedup" => {
                i += 1;
                min_ring_speedup = args
                    .get(i)
                    .expect("--min-ring-speedup needs a value")
                    .parse()
                    .expect("min-ring-speedup must be a number");
            }
            "--max-overhead" => {
                i += 1;
                max_overhead = args
                    .get(i)
                    .expect("--max-overhead needs a value")
                    .parse()
                    .expect("max-overhead must be a number");
            }
            "--min-replay-ratio" => {
                i += 1;
                min_replay_ratio = args
                    .get(i)
                    .expect("--min-replay-ratio needs a value")
                    .parse()
                    .expect("min-replay-ratio must be a number");
            }
            "--min-layout-speedup" => {
                i += 1;
                min_layout_speedup = args
                    .get(i)
                    .expect("--min-layout-speedup needs a value")
                    .parse()
                    .expect("min-layout-speedup must be a number");
            }
            "--regress" => {
                let old = args
                    .get(i + 1)
                    .expect("--regress needs BASELINE and FRESH paths")
                    .clone();
                let new = args
                    .get(i + 2)
                    .expect("--regress needs BASELINE and FRESH paths")
                    .clone();
                i += 2;
                regress_paths = Some((old, new));
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("tolerance must be a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: throughput [--smoke] [--concurrent] [--layout] [--recovery] \
                     [--out FILE] \
                     [--validate FILE [--min-speedup X]] \
                     [--validate-concurrent FILE [--min-scaling X]] \
                     [--validate-layout FILE [--min-layout-speedup X]] \
                     [--validate-recovery FILE [--max-overhead X] [--min-replay-ratio X]] \
                     [--validate-spine FILE [--min-ring-speedup X]] \
                     [--regress BASELINE FRESH [--tolerance X]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = validate_concurrent_path {
        match validate_concurrent(&path, min_scaling) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("BENCH_concurrent.json validation failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = validate_layout_path {
        match validate_layout(&path, min_layout_speedup) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("BENCH_layout.json validation failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = validate_recovery_path {
        match validate_recovery(&path, max_overhead, min_replay_ratio) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("BENCH_recovery.json validation failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = validate_spine_path {
        match validate_spine(&path, min_ring_speedup) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("ingest-spine validation failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some((base, fresh)) = regress_paths {
        match regress(&base, &fresh, tolerance) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("throughput regression check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = validate_path {
        match validate(&path, min_speedup) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("BENCH_throughput.json validation failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if recovery {
        let out = out_path.unwrap_or_else(|| "BENCH_recovery.json".to_string());
        run_recovery_sweep(smoke, &out);
        return;
    }
    if layout {
        let out = out_path.unwrap_or_else(|| "BENCH_layout.json".to_string());
        run_layout_sweep(smoke, &out);
        return;
    }
    if concurrent {
        let out = out_path.unwrap_or_else(|| "BENCH_concurrent.json".to_string());
        run_concurrent_sweep(smoke, &out);
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let (stream_len, distinct) = if smoke {
        (1 << 21, 1 << 22)
    } else {
        (1 << 22, 1 << 18)
    };
    let skews: &[f64] = if smoke {
        &[SMOKE_SKEW]
    } else {
        &[0.8, SMOKE_SKEW, 1.5]
    };
    let filters: &[Option<FilterKind>] = if smoke {
        &[None, Some(FilterKind::RelaxedHeap)]
    } else {
        &[
            None,
            Some(FilterKind::Vector),
            Some(FilterKind::StrictHeap),
            Some(FilterKind::RelaxedHeap),
            Some(FilterKind::StreamSummary),
        ]
    };
    let backends: &[Backend] = if smoke {
        &[Backend::CountMin, Backend::Blocked]
    } else {
        &[Backend::CountMin, Backend::Fcm, Backend::Blocked]
    };
    let batches: &[usize] = if smoke {
        &[1, 256, 1024]
    } else {
        &[1, 64, 256, 1024]
    };

    // Kernel rows first, spine rows after: the spine sweep saturates every
    // core (shard workers + router), and running it ahead of the
    // single-threaded kernel sweep measurably depresses the kernel rows on
    // small hosts (hot core, scheduler debt) — the batched-vs-scalar gate
    // then compares against a baseline that was measured cold.
    let spine: Vec<SpineRow> = Vec::new();

    let mut results = Vec::new();
    for &skew in skews {
        let spec = StreamSpec {
            len: stream_len,
            distinct,
            skew,
            seed: SEED,
        };
        let stream = spec.materialize();
        let queries = query::sample_from_stream(SEED, &stream, QUERY_COUNT);
        for &filter in filters {
            for &backend in backends {
                for &batch_size in batches {
                    let cfg = RunConfig {
                        skew,
                        filter,
                        backend,
                        batch_size,
                    };
                    let r = run_one(cfg, &stream, &queries);
                    eprintln!(
                        "skew={skew} filter={} backend={} batch={batch_size}: \
                         {:.0} updates/ms, est p50={}ns p99={}ns",
                        filter_name(filter),
                        backend.name(),
                        r.updates_per_ms,
                        r.estimate_p50_ns,
                        r.estimate_p99_ns,
                    );
                    results.push(r);
                    // Flush after every row: a panic mid-sweep keeps the
                    // finished rows in a well-formed partial artifact.
                    write_json(&out_path, smoke, stream_len, distinct, &results, &spine)
                        .expect("write results");
                }
            }
        }
    }
    let spine = run_spine_sweep(smoke);
    write_json(&out_path, smoke, stream_len, distinct, &results, &spine).expect("write results");
    eprintln!(
        "wrote {out_path} ({} rows + {} spine rows)",
        results.len(),
        spine.len()
    );
}
