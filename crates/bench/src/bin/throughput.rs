//! Persistent ingest-throughput benchmark: sweeps Zipf skew × filter kind ×
//! sketch backend × batch size and writes machine-readable results to
//! `BENCH_throughput.json` (see `DESIGN.md` for the schema).
//!
//! ```text
//! cargo run -p asketch-bench --release --bin throughput            # full sweep
//! cargo run -p asketch-bench --release --bin throughput -- --smoke # CI smoke
//! throughput --validate BENCH_throughput.json --min-speedup 1.5    # CI gate
//! ```
//!
//! `batch_size == 1` is the scalar baseline (a plain `update` loop); larger
//! sizes go through the batched kernels (`insert_batch`), which hoist hash
//! evaluation and issue software prefetches across the batch. The validator
//! checks both the JSON shape and that some batched configuration at the
//! smoke skew beats its scalar baseline by the requested factor.

use std::fmt::Write as _;
use std::time::Instant;

use asketch::filter::FilterKind;
use asketch::AsketchBuilder;
use sketches::{CountMin, Fcm, FrequencyEstimator};
use streamgen::{query, StreamSpec};

/// Total synopsis budget. Deliberately larger than L2 so the sketch's
/// counter rows live in L3/DRAM and the prefetch pipeline has latency to
/// hide — the regime the batched kernels target.
const TOTAL_BYTES: usize = 1 << 26;
const DEPTH: usize = 8;
const FILTER_ITEMS: usize = 32;
const SEED: u64 = 0x5EED_2016;
const QUERY_COUNT: usize = 2_000;
/// The skew the CI smoke gate checks (paper's real-world midpoint).
const SMOKE_SKEW: f64 = 1.1;

#[derive(Clone, Copy)]
struct RunConfig {
    skew: f64,
    /// `None` = raw sketch (no filter in front).
    filter: Option<FilterKind>,
    backend: Backend,
    batch_size: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    CountMin,
    Fcm,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::CountMin => "count-min",
            Backend::Fcm => "fcm",
        }
    }
}

fn filter_name(f: Option<FilterKind>) -> &'static str {
    match f {
        None => "none",
        Some(FilterKind::Vector) => "vector",
        Some(FilterKind::StrictHeap) => "strict-heap",
        Some(FilterKind::RelaxedHeap) => "relaxed-heap",
        Some(FilterKind::StreamSummary) => "stream-summary",
    }
}

struct RunResult {
    cfg: RunConfig,
    updates_per_ms: f64,
    estimate_p50_ns: u64,
    estimate_p99_ns: u64,
}

/// Ingest + query-latency measurement for one constructed estimator.
fn measure<E: FrequencyEstimator>(
    build: impl Fn() -> E,
    stream: &[u64],
    queries: &[u64],
    batch: usize,
) -> (f64, u64, u64) {
    // Best of three independent ingest passes (fresh estimator each), which
    // suppresses scheduler/tenant noise on shared hosts without changing
    // what is measured — the same policy as the repro harness.
    const MEASURE_PASSES: usize = 3;
    let mut best_per_ms = 0.0f64;
    let mut est = None;
    for _ in 0..MEASURE_PASSES {
        let mut fresh = build();
        let t0 = Instant::now();
        if batch <= 1 {
            for &k in stream {
                fresh.update(k, 1);
            }
        } else {
            for part in stream.chunks(batch) {
                fresh.insert_batch(part);
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        best_per_ms = best_per_ms.max(stream.len() as f64 / (elapsed * 1e3));
        est = Some(fresh);
    }
    let est = est.expect("at least one pass");
    let updates_per_ms = best_per_ms;

    let mut lat: Vec<u64> = Vec::with_capacity(queries.len());
    for &q in queries {
        let t = Instant::now();
        std::hint::black_box(est.estimate(q));
        lat.push(t.elapsed().as_nanos() as u64);
    }
    lat.sort_unstable();
    let p50 = lat[lat.len() / 2];
    let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
    (updates_per_ms, p50, p99)
}

fn run_one(cfg: RunConfig, stream: &[u64], queries: &[u64]) -> RunResult {
    let builder = AsketchBuilder {
        total_bytes: TOTAL_BYTES,
        depth: DEPTH,
        filter_items: FILTER_ITEMS,
        filter_kind: cfg.filter.unwrap_or(FilterKind::RelaxedHeap),
        seed: SEED,
    };
    let (updates_per_ms, p50, p99) = match (cfg.filter, cfg.backend) {
        (None, Backend::CountMin) => measure(
            || CountMin::with_byte_budget(SEED, DEPTH, TOTAL_BYTES).expect("budget fits"),
            stream,
            queries,
            cfg.batch_size,
        ),
        (None, Backend::Fcm) => measure(
            || {
                Fcm::with_byte_budget(SEED, DEPTH, TOTAL_BYTES, Some(FILTER_ITEMS))
                    .expect("budget fits")
            },
            stream,
            queries,
            cfg.batch_size,
        ),
        (Some(_), Backend::CountMin) => measure(
            || builder.build_count_min().expect("budget fits"),
            stream,
            queries,
            cfg.batch_size,
        ),
        (Some(_), Backend::Fcm) => measure(
            || builder.build_fcm().expect("budget fits"),
            stream,
            queries,
            cfg.batch_size,
        ),
    };
    RunResult {
        cfg,
        updates_per_ms,
        estimate_p50_ns: p50,
        estimate_p99_ns: p99,
    }
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

/// Hand-rolled writer (no JSON dependency in this workspace): one result
/// object per line, which the validator below relies on.
fn write_json(
    path: &str,
    smoke: bool,
    stream_len: usize,
    distinct: u64,
    results: &[RunResult],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"commit\": \"{}\",", git_commit());
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"config\": {{\"stream_len\": {stream_len}, \"distinct\": {distinct}, \
         \"total_bytes\": {TOTAL_BYTES}, \"depth\": {DEPTH}, \
         \"filter_items\": {FILTER_ITEMS}, \"seed\": {SEED}}},"
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"skew\": {}, \"filter\": \"{}\", \"backend\": \"{}\", \
             \"batch_size\": {}, \"updates_per_ms\": {}, \
             \"estimate_p50_ns\": {}, \"estimate_p99_ns\": {}}}{comma}",
            json_f64(r.cfg.skew),
            filter_name(r.cfg.filter),
            r.cfg.backend.name(),
            r.cfg.batch_size,
            json_f64(r.updates_per_ms),
            r.estimate_p50_ns,
            r.estimate_p99_ns,
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Pull `"key": value` out of a single result line. The writer emits one
/// object per line, so line-scoped scanning is unambiguous.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Validate the JSON artifact: schema fields present, every result line
/// complete, and the batched kernels beating the scalar baseline by
/// `min_speedup` for at least one configuration at the smoke skew.
fn validate(path: &str, min_speedup: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"schema_version\"",
        "\"commit\"",
        "\"config\"",
        "\"results\"",
    ] {
        if !text.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    // (skew, filter, backend) -> (scalar updates/ms, best batched updates/ms)
    let mut groups: std::collections::HashMap<String, (f64, f64)> =
        std::collections::HashMap::new();
    let mut rows = 0usize;
    for line in text.lines().filter(|l| l.contains("\"batch_size\"")) {
        rows += 1;
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("result row missing \"{k}\": {line}"));
        let skew: f64 = get("skew")?.parse().map_err(|e| format!("bad skew: {e}"))?;
        let filter = get("filter")?.to_string();
        let backend = get("backend")?.to_string();
        let batch: usize = get("batch_size")?
            .parse()
            .map_err(|e| format!("bad batch_size: {e}"))?;
        let per_ms: f64 = get("updates_per_ms")?
            .parse()
            .map_err(|e| format!("bad updates_per_ms: {e}"))?;
        get("estimate_p50_ns")?;
        get("estimate_p99_ns")?;
        if per_ms <= 0.0 {
            return Err(format!("non-positive updates_per_ms: {line}"));
        }
        let entry = groups
            .entry(format!("{skew}/{filter}/{backend}"))
            .or_insert((0.0, 0.0));
        if batch == 1 {
            entry.0 = per_ms;
        } else {
            entry.1 = entry.1.max(per_ms);
        }
    }
    if rows == 0 {
        return Err("no result rows".to_string());
    }
    let smoke_key = format!("{SMOKE_SKEW}/");
    let mut best = 0.0f64;
    let mut best_group = String::new();
    for (key, &(scalar, batched)) in groups.iter().filter(|(k, _)| k.starts_with(&smoke_key)) {
        if scalar > 0.0 && batched / scalar > best {
            best = batched / scalar;
            best_group = key.clone();
        }
    }
    if best < min_speedup {
        return Err(format!(
            "batched/scalar speedup {best:.2}x (best group \"{best_group}\") \
             below required {min_speedup:.2}x at skew {SMOKE_SKEW}"
        ));
    }
    println!(
        "OK: {rows} rows, best batched speedup {best:.2}x ({best_group}) >= {min_speedup:.2}x"
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut validate_path: Option<String> = None;
    let mut min_speedup = 1.5f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--validate" => {
                i += 1;
                validate_path = Some(args.get(i).expect("--validate needs a path").clone());
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args
                    .get(i)
                    .expect("--min-speedup needs a value")
                    .parse()
                    .expect("min-speedup must be a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: throughput [--smoke] [--out FILE] \
                     [--validate FILE [--min-speedup X]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = validate_path {
        match validate(&path, min_speedup) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("BENCH_throughput.json validation failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let (stream_len, distinct) = if smoke {
        (1 << 21, 1 << 22)
    } else {
        (1 << 22, 1 << 18)
    };
    let skews: &[f64] = if smoke {
        &[SMOKE_SKEW]
    } else {
        &[0.8, SMOKE_SKEW, 1.5]
    };
    let filters: &[Option<FilterKind>] = if smoke {
        &[None, Some(FilterKind::RelaxedHeap)]
    } else {
        &[
            None,
            Some(FilterKind::Vector),
            Some(FilterKind::StrictHeap),
            Some(FilterKind::RelaxedHeap),
            Some(FilterKind::StreamSummary),
        ]
    };
    let backends: &[Backend] = if smoke {
        &[Backend::CountMin]
    } else {
        &[Backend::CountMin, Backend::Fcm]
    };
    let batches: &[usize] = if smoke {
        &[1, 256, 1024]
    } else {
        &[1, 64, 256, 1024]
    };

    let mut results = Vec::new();
    for &skew in skews {
        let spec = StreamSpec {
            len: stream_len,
            distinct,
            skew,
            seed: SEED,
        };
        let stream = spec.materialize();
        let queries = query::sample_from_stream(SEED, &stream, QUERY_COUNT);
        for &filter in filters {
            for &backend in backends {
                for &batch_size in batches {
                    let cfg = RunConfig {
                        skew,
                        filter,
                        backend,
                        batch_size,
                    };
                    let r = run_one(cfg, &stream, &queries);
                    eprintln!(
                        "skew={skew} filter={} backend={} batch={batch_size}: \
                         {:.0} updates/ms, est p50={}ns p99={}ns",
                        filter_name(filter),
                        backend.name(),
                        r.updates_per_ms,
                        r.estimate_p50_ns,
                        r.estimate_p99_ns,
                    );
                    results.push(r);
                }
            }
        }
    }
    write_json(&out_path, smoke, stream_len, distinct, &results).expect("write results");
    eprintln!("wrote {out_path} ({} rows)", results.len());
}
