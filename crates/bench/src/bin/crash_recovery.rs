//! `crash_recovery` — SIGKILL crash-injection harness for the durable
//! sharded runtime (DESIGN.md §12), plus the storage-chaos harness for
//! the self-healing durability layer (DESIGN.md §13).
//!
//! ```text
//! crash_recovery [--trials N] [--keys N] [--seed S] [--dir PATH]
//! crash_recovery --faults [--keys N] [--seed S] [--dir PATH] [--out BENCH_faults.json]
//! crash_recovery --validate-faults BENCH_faults.json
//! crash_recovery child <dir> <fsync> <keys> <ckpt-every>   # internal
//! ```
//!
//! Each trial spawns *this same binary* in `child` mode as a separate
//! process. The child ingests a deterministic key sequence through
//! [`ConcurrentASketch::spawn_durable`], periodically calling
//! [`wal_checkpoint`](ConcurrentASketch::wal_checkpoint) and appending the
//! acknowledged prefix length to an fsynced ack file. The harness sleeps a
//! pseudo-random interval, delivers SIGKILL, then recovers every shard
//! directory twice:
//!
//! * `dedup = true` — the recovered estimate of every key must equal the
//!   **exact** count of the durable prefix (snapshot `ops` + replayed WAL
//!   keys), computed independently from the deterministic sequence. The
//!   key space is smaller than the filter capacity, so ASketch answers are
//!   exact and the comparison is `==`, not `>=`.
//! * `dedup = false` — at-least-once replay: every estimate must be `>=`
//!   the exact durable count (one-sided over-count only).
//!
//! In both runs the durable prefix must cover everything the child's ack
//! file acknowledged before the kill — a checkpointed write never
//! disappears. The fsync policy cycles per trial (per-batch, interval,
//! off) so all three disk-pressure modes face the kill. Exits non-zero on
//! the first trial whose recovery violates any of the above.
//!
//! `--faults` runs the **storage-chaos sweep** instead: every
//! [`FaultKind`] × {transient, persistent} × all three fsync policies,
//! injected in-process through a [`FaultVfs`] (a scripted fault plan
//! cannot cross the SIGKILL process boundary), plus live bit-rot trials
//! that corrupt published snapshots and assert the integrity scrubber
//! detects and quarantines 100% of them. Each trial asserts: no acked
//! durable write is lost, no panic escapes, transient faults are retried
//! away (runtime ends healthy, every key durable), persistent faults
//! engage disk-sick degraded mode with the right typed [`ErrorClass`]
//! while ingest stays exact. Results land in `BENCH_faults.json`;
//! `--validate-faults` re-checks the committed artifact in CI.

use std::io::{BufRead as _, Write as _};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use asketch::filter::VectorFilter;
use asketch::{ASketch, DurabilityOptions, FsyncPolicy};
use asketch_durable::vfs::{self as storage_vfs, FaultKind, FaultPlan, FaultVfs, Vfs};
use asketch_durable::{
    recover_kernel, scrub_shard_dir, DurabilityError, ErrorClass, StoragePolicy,
};
use asketch_parallel::{
    BackpressurePolicy, ConcurrentASketch, ConcurrentConfig, KeyPartition, SupervisionConfig,
};
use asketch_serve::{
    ChaosConfig, ChaosProxy, FaultKind as NetFault, ResilientClient, RetryPolicy, ServeConfig,
    Server,
};
use sketches::CountMin;

/// Distinct keys in the child's round-robin stream. Must stay below
/// [`FILTER_ITEMS`] so every key lives in the filter and estimates are
/// exact (the harness asserts `==`, not just `>=`).
const DISTINCT: u64 = 64;
const FILTER_ITEMS: usize = 64;
const SHARDS: usize = 2;
const SEED: u64 = 0x5EED_2016;
/// Keys between `wal_checkpoint` barriers (and ack-file appends).
const CKPT_EVERY: u64 = 4096;

fn kernel(shard: usize) -> ASketch<VectorFilter, CountMin> {
    ASketch::new(
        VectorFilter::new(FILTER_ITEMS),
        CountMin::new(SEED ^ shard as u64, 4, 4096).expect("valid geometry"),
    )
}

fn config() -> ConcurrentConfig {
    ConcurrentConfig {
        shards: SHARDS,
        batch: 64,
        ..ConcurrentConfig::default()
    }
}

/// The deterministic child stream: key `i % DISTINCT` at position `i`.
fn key_at(i: u64) -> u64 {
    i % DISTINCT
}

fn parse_fsync(s: &str) -> FsyncPolicy {
    match s {
        "per-batch" => FsyncPolicy::PerBatch,
        "interval" => FsyncPolicy::Interval(8),
        "off" => FsyncPolicy::Off,
        other => {
            eprintln!("unknown fsync policy: {other}");
            std::process::exit(2);
        }
    }
}

fn fsync_name(trial: usize) -> &'static str {
    ["per-batch", "interval", "off"][trial % 3]
}

// ---------------------------------------------------------------------------
// Child mode: ingest, checkpoint, ack — until killed or done.
// ---------------------------------------------------------------------------

fn run_child(dir: &Path, fsync: FsyncPolicy, keys: u64) -> ! {
    std::fs::create_dir_all(dir).expect("create trial dir");
    let opts = DurabilityOptions::new(dir).fsync(fsync);
    let (mut rt, _reports) = match ConcurrentASketch::spawn_durable(config(), &opts, kernel) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("child: spawn_durable failed: {e}");
            std::process::exit(3);
        }
    };
    let mut acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("acks.log"))
        .expect("open ack file");
    for i in 0..keys {
        rt.insert(key_at(i));
        if (i + 1) % CKPT_EVERY == 0 {
            match rt.wal_checkpoint() {
                Ok(routed) => {
                    assert_eq!(routed, i + 1, "checkpoint must cover every insert");
                    // The ack line is written (and fsynced) only after the
                    // WAL barrier: everything acknowledged here must
                    // survive a SIGKILL delivered at any later instant.
                    writeln!(acks, "{routed}").expect("append ack");
                    acks.sync_data().expect("fsync ack");
                }
                Err(e) => {
                    eprintln!("child: wal_checkpoint failed: {e}");
                    std::process::exit(3);
                }
            }
        }
    }
    let (_kernels, health) = rt.finish_with_health();
    if health.any_durability_degraded() {
        eprintln!("child: durability degraded during clean run");
        std::process::exit(3);
    }
    // Clean completion: the final snapshot covers the whole stream.
    writeln!(acks, "{keys}").expect("append ack");
    acks.sync_data().expect("fsync ack");
    std::process::exit(0);
}

// ---------------------------------------------------------------------------
// Harness mode: spawn child, SIGKILL it, verify recovery.
// ---------------------------------------------------------------------------

/// Last complete (newline-terminated, parseable) ack line, or 0. A kill
/// can land mid-`writeln!`, so a torn final line is expected and ignored.
fn read_acked(dir: &Path) -> u64 {
    let Ok(text) = std::fs::read_to_string(dir.join("acks.log")) else {
        return 0;
    };
    let Some(end) = text.rfind('\n') else {
        return 0;
    };
    text[..end]
        .lines()
        .filter_map(|l| l.trim().parse::<u64>().ok())
        .next_back()
        .unwrap_or(0)
}

/// Exact per-key counts of shard `shard`'s durable prefix: the first
/// `durable_keys` keys of the deterministic stream that route to `shard`.
/// Errors if the prefix would exceed what the child could have shipped.
fn expected_counts(
    shard: usize,
    part: &KeyPartition,
    durable_keys: u64,
    total_keys: u64,
) -> Result<Vec<i64>, String> {
    let mut counts = vec![0i64; DISTINCT as usize];
    let mut taken = 0u64;
    let mut i = 0u64;
    while taken < durable_keys {
        if i >= total_keys {
            return Err(format!(
                "shard {shard}: durable prefix {durable_keys} keys exceeds the \
                 {total_keys}-key stream — recovery invented updates"
            ));
        }
        let k = key_at(i);
        if part.shard_of(k) == shard {
            counts[k as usize] += 1;
            taken += 1;
        }
        i += 1;
    }
    Ok(counts)
}

/// Verify one killed (or cleanly finished) trial directory. Returns the
/// total durable key count plus a human-readable summary line, or the
/// first violation.
fn verify_trial(dir: &Path, total_keys: u64) -> Result<(u64, String), String> {
    let acked = read_acked(dir);
    let part = KeyPartition::new(SHARDS);
    // Per-shard share of the globally acked prefix.
    let mut acked_per_shard = [0u64; SHARDS];
    for i in 0..acked {
        acked_per_shard[part.shard_of(key_at(i))] += 1;
    }
    let opts = DurabilityOptions::new(dir);
    let mut durable_total = 0u64;
    let mut torn = 0usize;
    let mut rejected = 0usize;
    for (shard, &acked_here) in acked_per_shard.iter().enumerate() {
        let shard_dir = opts.shard_dir(shard);
        let (exact, report) = recover_kernel(&shard_dir, true, || kernel(shard))
            .map_err(|e| format!("shard {shard}: dedup recovery failed: {e}"))?;
        let durable = report.snapshot.map_or(0, |m| m.ops) + report.replayed_keys;
        durable_total += durable;
        torn += usize::from(report.torn.is_some());
        rejected += report.rejected_snapshots.len();
        if durable < acked_here {
            return Err(format!(
                "shard {shard}: durable prefix {durable} keys < acked {acked_here} — \
                 an acknowledged write was lost"
            ));
        }
        let expected = expected_counts(shard, &part, durable, total_keys)?;
        for k in 0..DISTINCT {
            if part.shard_of(k) != shard {
                continue;
            }
            let est = exact.estimate(k);
            if est != expected[k as usize] {
                return Err(format!(
                    "shard {shard} key {k}: dedup recovery estimate {est} != exact \
                     durable count {} (prefix {durable} keys)",
                    expected[k as usize]
                ));
            }
        }
        // Second pass, at-least-once: replays everything intact, including
        // records the snapshot already covers — may only over-count.
        let (raw, _raw_report) = recover_kernel(&shard_dir, false, || kernel(shard))
            .map_err(|e| format!("shard {shard}: raw recovery failed: {e}"))?;
        for k in 0..DISTINCT {
            if part.shard_of(k) != shard {
                continue;
            }
            let est = raw.estimate(k);
            if est < expected[k as usize] {
                return Err(format!(
                    "shard {shard} key {k}: raw recovery estimate {est} < exact \
                     durable count {} — at-least-once under-counted",
                    expected[k as usize]
                ));
            }
        }
    }
    Ok((
        durable_total,
        format!(
            "acked {acked}, durable {durable_total} keys, {torn} torn tail(s), \
             {rejected} rejected snapshot(s)"
        ),
    ))
}

fn run_harness(trials: usize, keys: u64, seed: u64, base: &Path) -> ! {
    let exe = std::env::current_exe().expect("current_exe");
    let mut rng = seed | 1;
    let mut failures = 0usize;
    let mut kills = 0usize;
    for trial in 0..trials {
        let dir = base.join(format!("trial-{trial:03}"));
        let _ = std::fs::remove_dir_all(&dir);
        let fsync = fsync_name(trial);
        let mut child = Command::new(&exe)
            .arg("child")
            .arg(&dir)
            .arg(fsync)
            .arg(keys.to_string())
            .arg(CKPT_EVERY.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn child");
        // Splitmix-style step; the kill lands anywhere from process start
        // (before the runtime exists) to past clean completion.
        rng = rng
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        let sleep_ms = (rng >> 33) % 120;
        std::thread::sleep(Duration::from_millis(sleep_ms));
        let killed = child.try_wait().expect("poll child").is_none();
        if killed {
            child.kill().expect("SIGKILL child");
            kills += 1;
        }
        let status = child.wait().expect("reap child");
        if !killed && !status.success() {
            eprintln!("trial {trial}: FAIL — child errored before the kill: {status}");
            failures += 1;
            continue;
        }
        match verify_trial(&dir, keys) {
            Ok((_durable, summary)) => {
                let how = if killed { "killed" } else { "completed" };
                println!("trial {trial}: ok ({fsync}, {how} after {sleep_ms}ms; {summary})");
                let _ = std::fs::remove_dir_all(&dir);
            }
            Err(e) => {
                eprintln!("trial {trial}: FAIL ({fsync}, slept {sleep_ms}ms): {e}");
                eprintln!("trial {trial}: state kept in {}", dir.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures}/{trials} crash-injection trials FAILED");
        std::process::exit(1);
    }
    println!(
        "all {trials} crash-injection trials passed ({kills} mid-run kills, \
         {} clean completions)",
        trials - kills
    );
    std::process::exit(0);
}

// ---------------------------------------------------------------------------
// Storage-chaos mode (`--faults` / `--validate-faults`, DESIGN.md §13).
// ---------------------------------------------------------------------------

/// Keys between checkpoint barriers in fault trials (smaller than the
/// kill harness's so faults interleave with many ack points).
const FAULT_CKPT: u64 = 2048;
/// Per-trial wall-clock budget for async fault surfacing (snapshotter
/// faults are promoted to the caller lazily, at checkpoint barriers).
const FAULT_DEADLINE: Duration = Duration::from_secs(20);

/// Runtime config for fault trials: frequent worker checkpoints so the
/// background snapshotter (and therefore the rename/sync fault paths)
/// gets exercised within a short trial.
fn faults_config() -> ConcurrentConfig {
    ConcurrentConfig {
        shards: SHARDS,
        batch: 64,
        supervision: SupervisionConfig {
            checkpoint_interval: 1024,
            ..SupervisionConfig::default()
        },
        ..ConcurrentConfig::default()
    }
}

/// The `ErrorClass` a persistently injected fault must degrade with.
fn expected_class(kind: FaultKind) -> ErrorClass {
    match kind {
        FaultKind::Enospc => ErrorClass::NoSpace,
        _ => ErrorClass::Io,
    }
}

/// One row of `BENCH_faults.json`.
struct FaultRow {
    kind: String,
    mode: &'static str,
    fsync: &'static str,
    keys: u64,
    acked: u64,
    durable: u64,
    injected: u64,
    retries: u64,
    degraded_shards: usize,
    error_class: String,
    rot_injected: u64,
    rot_detected: u64,
    quarantined: u64,
    panicked: bool,
    passed: bool,
    detail: String,
}

/// Stats a trial body hands back on success.
#[derive(Default)]
struct TrialStats {
    keys: u64,
    acked: u64,
    durable: u64,
    injected: u64,
    retries: u64,
    degraded_shards: usize,
    error_class: String,
    rot_injected: u64,
    rot_detected: u64,
    quarantined: u64,
}

/// Check every shard kernel against the exact counts of the full
/// deterministic stream — ingest must stay correct (and, with the key
/// space inside the filter, exact) even after degrading.
fn check_kernels_exact(
    kernels: &[ASketch<VectorFilter, CountMin>],
    inserted: u64,
) -> Result<(), String> {
    let part = KeyPartition::new(SHARDS);
    let mut expect = vec![0i64; DISTINCT as usize];
    for i in 0..inserted {
        expect[key_at(i) as usize] += 1;
    }
    for (shard, kernel) in kernels.iter().enumerate() {
        for key in 0..DISTINCT {
            if part.shard_of(key) != shard {
                continue;
            }
            let est = kernel.estimate(key);
            if est != expect[key as usize] {
                return Err(format!(
                    "shard {shard} key {key}: live estimate {est} != exact count {} \
                     after {inserted} inserts — ingest corrupted by the storage fault",
                    expect[key as usize]
                ));
            }
        }
    }
    Ok(())
}

/// One injected-fault trial: ingest through a scripted [`FaultVfs`],
/// checkpointing (and acking) every [`FAULT_CKPT`] keys.
///
/// * `transient` faults are isolated single-op failures — the runtime
///   must retry them away, end healthy, and leave **every** key durable.
/// * `persistent` faults repeat forever from a scripted op — the runtime
///   must degrade with the right typed class, keep counting exactly, and
///   never lose an acked write.
fn fault_trial_body(
    kind: FaultKind,
    persistent: bool,
    fsync: &'static str,
    dir: &Path,
    seed: u64,
    max_keys: u64,
) -> Result<TrialStats, String> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("create trial dir: {e}"))?;
    let plan = if persistent {
        // Let the healthy prefix land first (for write faults, past the
        // first acked checkpoint) so "no acked write lost" has teeth.
        let from = match kind {
            FaultKind::Eio | FaultKind::Enospc | FaultKind::ShortWrite => 40,
            FaultKind::FsyncFail => 34,
            FaultKind::TornRename => 2,
        };
        FaultPlan::new(seed).fail_from(kind, from)
    } else {
        // Isolated single-op failures, spaced so a rollback write after
        // one never lands on the next trigger.
        FaultPlan::new(seed)
            .fail_once(kind, 2)
            .fail_once(kind, 9)
            .fail_once(kind, 23)
    };
    let fault = Arc::new(FaultVfs::over_real(plan));
    let vfs: Arc<dyn Vfs> = Arc::clone(&fault) as Arc<dyn Vfs>;
    let opts = DurabilityOptions::new(dir)
        .fsync(parse_fsync(fsync))
        .vfs(vfs)
        .policy(StoragePolicy {
            retries: 3,
            retry_backoff: Duration::ZERO,
        })
        .scrub_interval(None);
    let (mut rt, _reports) = ConcurrentASketch::spawn_durable(faults_config(), &opts, kernel)
        .map_err(|e| format!("spawn_durable: {e}"))?;
    let mut acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("acks.log"))
        .map_err(|e| format!("open ack file: {e}"))?;
    let mut inserted = 0u64;
    let mut acked = 0u64;
    let mut failure: Option<DurabilityError> = None;
    let deadline = Instant::now() + FAULT_DEADLINE;
    loop {
        for _ in 0..FAULT_CKPT {
            rt.insert(key_at(inserted));
            inserted += 1;
        }
        match rt.wal_checkpoint() {
            Ok(n) => {
                if n != inserted {
                    return Err(format!("checkpoint covered {n} of {inserted} inserts"));
                }
                acked = n;
                writeln!(acks, "{n}").map_err(|e| format!("append ack: {e}"))?;
            }
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
        // Transient plans are done once every scripted fault has fired;
        // persistent plans run until the fault surfaces at a barrier
        // (snapshotter faults are promoted lazily). Past `max_keys` we
        // keep ingesting small chunks so worker checkpoints keep driving
        // the snapshotter toward the scripted rename/sync ops.
        if !persistent && fault.injected() >= 3 {
            break;
        }
        if inserted >= max_keys {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let mut error_class = String::new();
    if persistent {
        let e = failure.as_ref().ok_or_else(|| {
            format!(
                "persistent {} fault never engaged degraded mode \
                 ({} injected, {inserted} keys)",
                kind.name(),
                fault.injected()
            )
        })?;
        let want = expected_class(kind);
        if e.class() != want {
            return Err(format!(
                "degraded with class {:?}, expected {want:?} ({e})",
                e.class()
            ));
        }
        error_class = e.class().name().to_string();
        // Disk-sick degraded mode: persistence is off, ingest must not be.
        for _ in 0..4 * FAULT_CKPT {
            rt.insert(key_at(inserted));
            inserted += 1;
        }
    } else if let Some(e) = failure {
        return Err(format!(
            "transient {} fault degraded the runtime: {e}",
            kind.name()
        ));
    }
    let injected = fault.injected();
    let (kernels, health) = rt.finish_with_health();
    check_kernels_exact(&kernels, inserted)?;
    let degraded_shards = health.degraded_durability_shards();
    let retries = health.total_storage_retries();
    if persistent {
        if degraded_shards == 0 {
            return Err("checkpoint failed but no shard gauge reports degraded mode".into());
        }
        let gauge_class = health
            .first_durability_error()
            .map(|f| f.class.clone())
            .unwrap_or_default();
        if gauge_class != error_class {
            return Err(format!(
                "health reports fault class {gauge_class:?}, checkpoint error was \
                 {error_class:?} — typed error lost on the way to the gauges"
            ));
        }
    } else {
        if health.any_durability_degraded() || degraded_shards > 0 {
            return Err("transient fault left a shard in degraded mode".into());
        }
        if injected == 0 {
            return Err(format!(
                "transient {} plan never fired within {inserted} keys — \
                 the fault path went unexercised",
                kind.name()
            ));
        }
        if retries == 0 {
            return Err(format!(
                "{injected} transient fault(s) injected but no retry was counted"
            ));
        }
    }
    // Recover from the surviving on-disk state with a clean backend.
    let (durable, _summary) = verify_trial(dir, inserted)?;
    if !persistent && durable < inserted {
        return Err(format!(
            "transient trial: only {durable} of {inserted} keys durable after a \
             clean finish"
        ));
    }
    Ok(TrialStats {
        keys: inserted,
        acked,
        durable,
        injected,
        retries,
        degraded_shards,
        error_class,
        ..TrialStats::default()
    })
}

/// One live bit-rot trial: ingest until every shard has published a
/// snapshot, flip a byte in the newest snapshot of each shard, and
/// assert `scrub_now` detects and quarantines **all** of them without
/// degrading the runtime — then finish, re-scrub offline (must be
/// clean), and recover exactly.
fn bitrot_trial_body(fsync: &'static str, dir: &Path, max_keys: u64) -> Result<TrialStats, String> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("create trial dir: {e}"))?;
    let opts = DurabilityOptions::new(dir)
        .fsync(parse_fsync(fsync))
        .scrub_interval(None);
    let (mut rt, _reports) = ConcurrentASketch::spawn_durable(faults_config(), &opts, kernel)
        .map_err(|e| format!("spawn_durable: {e}"))?;
    let mut acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("acks.log"))
        .map_err(|e| format!("open ack file: {e}"))?;
    let mut inserted = 0u64;
    let mut acked;
    let deadline = Instant::now() + FAULT_DEADLINE;
    loop {
        for _ in 0..FAULT_CKPT {
            rt.insert(key_at(inserted));
            inserted += 1;
        }
        acked = rt
            .wal_checkpoint()
            .map_err(|e| format!("wal_checkpoint: {e}"))?;
        writeln!(acks, "{acked}").map_err(|e| format!("append ack: {e}"))?;
        let health = rt.health();
        if health.shards.iter().all(|g| g.snapshot_seq > 0) {
            break;
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "no snapshot published on every shard within {inserted} keys"
            ));
        }
        if inserted >= max_keys {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // Flip one mid-file byte in the newest snapshot of every shard.
    let mut rot_injected = 0u64;
    for shard in 0..SHARDS {
        let shard_dir = opts.shard_dir(shard);
        let newest = std::fs::read_dir(&shard_dir)
            .map_err(|e| format!("read shard dir: {e}"))?
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".bin"))
            })
            .max();
        let path = newest
            .ok_or_else(|| format!("shard {shard}: snapshot_seq > 0 but no snapshot file"))?;
        let mut bytes = std::fs::read(&path).map_err(|e| format!("read snapshot: {e}"))?;
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).map_err(|e| format!("write rot: {e}"))?;
        rot_injected += 1;
    }
    let reports = rt.scrub_now();
    let rot_detected: u64 = reports.iter().map(|r| r.corrupt_found()).sum();
    let quarantined: u64 = reports.iter().map(|r| r.quarantined.len() as u64).sum();
    if rot_detected != rot_injected {
        return Err(format!(
            "scrubber detected {rot_detected} of {rot_injected} injected bit-rot \
             corruptions — detection must be 100%"
        ));
    }
    if quarantined != rot_injected {
        return Err(format!(
            "scrubber quarantined {quarantined} of {rot_injected} corrupt snapshots"
        ));
    }
    let health = rt.health();
    if health.any_durability_degraded() {
        return Err("bit-rot wrongly engaged disk-sick degraded mode".into());
    }
    if health.total_quarantined() != rot_injected {
        return Err(format!(
            "quarantine gauge reads {} after {rot_injected} quarantines",
            health.total_quarantined()
        ));
    }
    // Keep ingesting so fresh snapshots replace the quarantined ones.
    for _ in 0..4 {
        for _ in 0..FAULT_CKPT {
            rt.insert(key_at(inserted));
            inserted += 1;
        }
        acked = rt
            .wal_checkpoint()
            .map_err(|e| format!("wal_checkpoint after scrub: {e}"))?;
        writeln!(acks, "{acked}").map_err(|e| format!("append ack: {e}"))?;
    }
    let (kernels, health) = rt.finish_with_health();
    check_kernels_exact(&kernels, inserted)?;
    let retries = health.total_storage_retries();
    // A quiesced offline re-scrub must find nothing: the rot was
    // quarantined and the final snapshots are fresh.
    let real = storage_vfs::real();
    for shard in 0..SHARDS {
        let report = scrub_shard_dir(&real, &opts.shard_dir(shard), None)
            .map_err(|e| format!("offline scrub: {e}"))?;
        if report.corrupt_found() != 0 {
            return Err(format!(
                "offline re-scrub still finds {} corrupt artifact(s) on shard {shard}",
                report.corrupt_found()
            ));
        }
    }
    let (durable, _summary) = verify_trial(dir, inserted)?;
    if durable < inserted {
        return Err(format!(
            "bit-rot trial: only {durable} of {inserted} keys durable after a \
             clean finish with a quarantined snapshot"
        ));
    }
    Ok(TrialStats {
        keys: inserted,
        acked,
        durable,
        retries,
        rot_injected,
        rot_detected,
        quarantined,
        ..TrialStats::default()
    })
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

fn git_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn write_faults_json(
    path: &Path,
    rows: &[FaultRow],
    max_keys: u64,
    seed: u64,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"bench\": \"storage-faults\",");
    let _ = writeln!(out, "  \"commit\": \"{}\",", git_commit());
    let _ = writeln!(
        out,
        "  \"config\": {{\"shards\": {SHARDS}, \"distinct\": {DISTINCT}, \
         \"ckpt_every\": {FAULT_CKPT}, \"max_keys\": {max_keys}, \"seed\": {seed}, \
         \"retries\": 3}},"
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"mode\": \"{}\", \"fsync\": \"{}\", \
             \"keys\": {}, \"acked\": {}, \"durable\": {}, \"injected\": {}, \
             \"retries\": {}, \"degraded_shards\": {}, \"error_class\": \"{}\", \
             \"rot_injected\": {}, \"rot_detected\": {}, \"quarantined\": {}, \
             \"panicked\": {}, \"passed\": {}, \"detail\": \"{}\"}}{}",
            r.kind,
            r.mode,
            r.fsync,
            r.keys,
            r.acked,
            r.durable,
            r.injected,
            r.retries,
            r.degraded_shards,
            json_escape(&r.error_class),
            r.rot_injected,
            r.rot_detected,
            r.quarantined,
            r.panicked,
            r.passed,
            json_escape(&r.detail),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Turn a trial closure's outcome into a row, catching panics — an
/// escaped panic is itself a violation the sweep must record.
fn run_one_trial(
    kind: String,
    mode: &'static str,
    fsync: &'static str,
    body: impl FnOnce() -> Result<TrialStats, String>,
) -> FaultRow {
    let (stats, panicked, passed, detail) = match std::panic::catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(stats)) => (stats, false, true, String::new()),
        Ok(Err(e)) => (TrialStats::default(), false, false, e),
        Err(payload) => (TrialStats::default(), true, false, panic_text(payload)),
    };
    FaultRow {
        kind,
        mode,
        fsync,
        keys: stats.keys,
        acked: stats.acked,
        durable: stats.durable,
        injected: stats.injected,
        retries: stats.retries,
        degraded_shards: stats.degraded_shards,
        error_class: stats.error_class,
        rot_injected: stats.rot_injected,
        rot_detected: stats.rot_detected,
        quarantined: stats.quarantined,
        panicked,
        passed,
        detail,
    }
}

fn run_faults(max_keys: u64, seed: u64, base: &Path, out: &Path) -> ! {
    const FSYNCS: [&str; 3] = ["per-batch", "interval", "off"];
    let mut rows: Vec<FaultRow> = Vec::new();
    let mut failures = 0usize;
    let mut record = |row: FaultRow, dir: &Path| {
        if row.passed {
            println!(
                "fault trial {:<12} {:<10} {:<9} ok ({} keys, acked {}, durable {}, \
                 {} injected, {} retries, {} degraded, {} quarantined)",
                row.kind,
                row.mode,
                row.fsync,
                row.keys,
                row.acked,
                row.durable,
                row.injected,
                row.retries,
                row.degraded_shards,
                row.quarantined
            );
            let _ = std::fs::remove_dir_all(dir);
        } else {
            eprintln!(
                "fault trial {:<12} {:<10} {:<9} FAIL{}: {}",
                row.kind,
                row.mode,
                row.fsync,
                if row.panicked { " (panicked)" } else { "" },
                row.detail
            );
            eprintln!("  state kept in {}", dir.display());
            failures += 1;
        }
        rows.push(row);
    };
    for (i, &kind) in FaultKind::ALL.iter().enumerate() {
        for &persistent in &[false, true] {
            let mode = if persistent {
                "persistent"
            } else {
                "transient"
            };
            for (j, &fsync) in FSYNCS.iter().enumerate() {
                let dir = base.join(format!("fault-{}-{mode}-{fsync}", kind.name()));
                let trial_seed = seed
                    ^ ((i as u64 + 1) << 8)
                    ^ ((persistent as u64) << 16)
                    ^ ((j as u64 + 1) << 24);
                let row = run_one_trial(kind.name().to_string(), mode, fsync, || {
                    fault_trial_body(kind, persistent, fsync, &dir, trial_seed, max_keys)
                });
                record(row, &dir);
            }
        }
    }
    for &fsync in FSYNCS.iter() {
        let dir = base.join(format!("bitrot-{fsync}"));
        let row = run_one_trial("bit-rot".to_string(), "bit-rot", fsync, || {
            bitrot_trial_body(fsync, &dir, max_keys)
        });
        record(row, &dir);
    }
    let total = rows.len();
    if let Err(e) = write_faults_json(out, &rows, max_keys, seed) {
        eprintln!("write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {} ({total} trials)", out.display());
    if failures > 0 {
        eprintln!("{failures}/{total} storage-chaos trials FAILED");
        std::process::exit(1);
    }
    println!("all {total} storage-chaos trials passed");
    std::process::exit(0);
}

/// Pull `"key": value` out of a single result line (the writer emits one
/// object per line, so line-scoped scanning is unambiguous).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Validate a committed `BENCH_faults.json`: every trial passed without
/// a panic, the full kind × mode × fsync grid is covered, transient
/// rows retried without degrading, persistent rows degraded with the
/// kind's expected class, and bit-rot rows show 100% scrub detection.
fn validate_faults(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"schema_version\"",
        "\"bench\": \"storage-faults\"",
        "\"commit\"",
        "\"results\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{path}: missing {key}"));
        }
    }
    let mut seen: Vec<(String, String, String)> = Vec::new();
    for line in text.lines().filter(|l| l.contains("\"kind\"")) {
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("{path}: row missing \"{k}\": {line}"));
        let num = |k: &str| -> Result<u64, String> {
            get(k)?
                .parse::<u64>()
                .map_err(|e| format!("{path}: bad \"{k}\": {e}: {line}"))
        };
        let kind = get("kind")?.to_string();
        let mode = get("mode")?.to_string();
        let fsync = get("fsync")?.to_string();
        if get("panicked")? != "false" {
            return Err(format!(
                "{path}: a panic escaped trial {kind}/{mode}/{fsync}: {}",
                get("detail")?
            ));
        }
        if get("passed")? != "true" {
            return Err(format!(
                "{path}: trial {kind}/{mode}/{fsync} failed: {}",
                get("detail")?
            ));
        }
        let (acked, durable) = (num("acked")?, num("durable")?);
        if durable < acked {
            return Err(format!(
                "{path}: {kind}/{mode}/{fsync}: durable {durable} < acked {acked} — \
                 an acknowledged write was lost"
            ));
        }
        match mode.as_str() {
            "transient" => {
                if num("degraded_shards")? != 0 {
                    return Err(format!("{path}: transient {kind}/{fsync} degraded a shard"));
                }
                if num("injected")? == 0 || num("retries")? == 0 {
                    return Err(format!(
                        "{path}: transient {kind}/{fsync} exercised no fault/retry"
                    ));
                }
            }
            "persistent" => {
                if num("degraded_shards")? == 0 {
                    return Err(format!("{path}: persistent {kind}/{fsync} never degraded"));
                }
                let want = if kind == "enospc" { "no-space" } else { "io" };
                let class = get("error_class")?;
                if class != want {
                    return Err(format!(
                        "{path}: persistent {kind}/{fsync} degraded with class \
                         {class:?}, expected {want:?}"
                    ));
                }
            }
            "bit-rot" => {
                let (rot, detected) = (num("rot_injected")?, num("rot_detected")?);
                if rot == 0 || detected != rot || num("quarantined")? != rot {
                    return Err(format!(
                        "{path}: bit-rot/{fsync}: {detected}/{rot} detected, \
                         {} quarantined — scrub detection must be 100%",
                        num("quarantined")?
                    ));
                }
            }
            other => return Err(format!("{path}: unknown trial mode {other:?}")),
        }
        seen.push((kind, mode, fsync));
    }
    for kind in FaultKind::ALL {
        for mode in ["transient", "persistent"] {
            for fsync in ["per-batch", "interval", "off"] {
                let want = (kind.name().to_string(), mode.to_string(), fsync.to_string());
                if !seen.contains(&want) {
                    return Err(format!(
                        "{path}: sweep missing trial {}/{mode}/{fsync}",
                        kind.name()
                    ));
                }
            }
        }
    }
    for fsync in ["per-batch", "interval", "off"] {
        let want = (
            "bit-rot".to_string(),
            "bit-rot".to_string(),
            fsync.to_string(),
        );
        if !seen.contains(&want) {
            return Err(format!("{path}: sweep missing bit-rot trial at {fsync}"));
        }
    }
    println!(
        "{path}: {} storage-chaos trials validated (full kind x mode x fsync grid)",
        seen.len()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Network-chaos mode (`--net-chaos` / `--validate-chaos`, DESIGN.md §17).
// ---------------------------------------------------------------------------

/// Batches each net-chaos trial pushes through the proxy.
const NET_BATCHES: u64 = 60;
/// Keys per sequenced batch.
const NET_BATCH: u64 = 64;

/// The four network fault modes a trial grid covers.
const NET_FAULTS: [NetFault; 4] = [
    NetFault::Reset,
    NetFault::Stall,
    NetFault::PartialWrite,
    NetFault::Partition,
];

fn net_fault_name(f: NetFault) -> &'static str {
    match f {
        NetFault::None => "none",
        NetFault::Reset => "reset",
        NetFault::Stall => "stall",
        NetFault::PartialWrite => "partial-write",
        NetFault::Partition => "partition",
    }
}

/// `serve-child` mode: a durable sharded runtime behind the network
/// server, recovering from whatever `dir` already holds. Prints
/// `listening <addr>` then parks forever — the harness ends it with
/// SIGKILL only, so every shutdown this child ever sees is a crash.
fn run_serve_child(dir: &Path, policy: &str) -> ! {
    std::fs::create_dir_all(dir).expect("create trial dir");
    let opts = DurabilityOptions::new(dir).fsync(FsyncPolicy::Interval(8));
    let (rt, _reports) = match ConcurrentASketch::spawn_durable(config(), &opts, kernel) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("serve-child: spawn_durable failed: {e}");
            std::process::exit(3);
        }
    };
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ingest_queue: 64,
        policy: match policy {
            "block" => BackpressurePolicy::Block,
            "shed" => BackpressurePolicy::InlineFallback,
            other => {
                eprintln!("serve-child: unknown policy {other:?}");
                std::process::exit(2);
            }
        },
        // Low enough that bursts exercise OVERLOADED sheds, high enough
        // that the retrying client always gets through.
        admission_high_water: 8,
        ..ServeConfig::default()
    };
    let server = match Server::spawn(cfg, rt) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve-child: bind failed: {e}");
            std::process::exit(3);
        }
    };
    println!("listening {}", server.addr());
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Spawn a serve child over `dir` and scrape its bound address.
fn spawn_serve(
    exe: &Path,
    dir: &Path,
    policy: &'static str,
) -> Result<(Child, std::net::SocketAddr), String> {
    let mut child = Command::new(exe)
        .arg("serve-child")
        .arg(dir)
        .arg(policy)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn serve-child: {e}"))?;
    let stdout = child.stdout.take().ok_or("serve-child stdout missing")?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(l)) => {
                if let Some(rest) = l.strip_prefix("listening ") {
                    break rest
                        .trim()
                        .parse::<std::net::SocketAddr>()
                        .map_err(|e| format!("bad listen addr {rest:?}: {e}"))?;
                }
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err("serve-child exited before binding".to_string());
            }
        }
    };
    Ok((child, addr))
}

/// One row of `BENCH_chaos.json`.
struct NetRow {
    fault: &'static str,
    policy: &'static str,
    seed: u64,
    keys: u64,
    batches: u64,
    restarts: u64,
    reconnects: u64,
    replays: u64,
    duplicate_acks: u64,
    sheds_retried: u64,
    faulted_conns: u64,
    exact: bool,
    panicked: bool,
    passed: bool,
    detail: String,
}

#[derive(Default)]
struct NetTrialStats {
    keys: u64,
    restarts: u64,
    reconnects: u64,
    replays: u64,
    duplicate_acks: u64,
    sheds_retried: u64,
    faulted_conns: u64,
    exact: bool,
}

/// Offline recovery check: dedup-recover every shard directory and
/// compare against the exact oracle counts of everything the client
/// acked. The final `SYNC` barrier fsynced the WALs, so equality — not
/// just `>=` — must hold even though the server died by SIGKILL.
fn verify_net_offline(dir: &Path, oracle: &[i64]) -> Result<(), String> {
    let part = KeyPartition::new(SHARDS);
    let opts = DurabilityOptions::new(dir);
    for shard in 0..SHARDS {
        let shard_dir = opts.shard_dir(shard);
        let (exact, _report) = recover_kernel(&shard_dir, true, || kernel(shard))
            .map_err(|e| format!("shard {shard}: dedup recovery failed: {e}"))?;
        for k in 0..DISTINCT {
            if part.shard_of(k) != shard {
                continue;
            }
            let est = exact.estimate(k);
            if est != oracle[k as usize] {
                return Err(format!(
                    "shard {shard} key {k}: offline recovery estimate {est} != oracle \
                     {} — acked writes were lost or duplicated on disk",
                    oracle[k as usize]
                ));
            }
        }
    }
    Ok(())
}

/// One network-chaos trial: drive sequenced batches from a
/// [`ResilientClient`] through a seeded [`ChaosProxy`] into a durable
/// serve child, SIGKILL + restart the server mid-stream (repointing the
/// proxy like a VIP), finish with a `SYNC` barrier, then assert the live
/// estimates and the offline-recovered state both equal the exact
/// oracle — zero acked writes lost, zero duplicates.
fn net_trial_body(
    fault: NetFault,
    policy: &'static str,
    trial_seed: u64,
    dir: &Path,
    exe: &Path,
) -> Result<NetTrialStats, String> {
    let _ = std::fs::remove_dir_all(dir);
    let (mut server, addr) = spawn_serve(exe, dir, policy)?;
    let chaos_cfg = ChaosConfig {
        seed: trial_seed,
        fault,
        fault_rate: 128,
        budget_max: 16 * 1024,
        stall: Duration::from_millis(500),
    };
    let proxy = ChaosProxy::start("127.0.0.1:0", addr, chaos_cfg)
        .map_err(|e| format!("start proxy: {e}"))?;
    let retry = RetryPolicy {
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        op_deadline: Duration::from_secs(60),
        // Shorter than the proxy's stall window so blackholed
        // connections surface as timeouts, not hangs.
        read_timeout: Duration::from_millis(250),
        max_reconnects: 100_000,
        retry_sheds: true,
        jitter_seed: trial_seed,
    };
    let mut client = ResilientClient::new(proxy.addr().to_string(), trial_seed | 1, retry);
    let mut oracle = vec![0i64; DISTINCT as usize];
    let mut sent = 0u64;
    let mut restarts = 0u64;
    let result: Result<(), String> = (|| {
        for batch_n in 0..NET_BATCHES {
            let keys: Vec<u64> = (0..NET_BATCH)
                .map(|_| {
                    let k = key_at(sent);
                    sent += 1;
                    k
                })
                .collect();
            client
                .update_batch(&keys)
                .map_err(|e| format!("batch {batch_n}: {e}"))?;
            // The ack is the contract: once update_batch returns Ok the
            // keys count toward the oracle, whatever happens next.
            for &k in &keys {
                oracle[k as usize] += 1;
            }
            if batch_n + 1 == NET_BATCHES / 2 {
                // Crash the server mid-stream; acked-but-unfsynced
                // batches must survive via client replay + dedup.
                server.kill().map_err(|e| format!("SIGKILL server: {e}"))?;
                let _ = server.wait();
                let (s, new_addr) = spawn_serve(exe, dir, policy)?;
                server = s;
                proxy.retarget(new_addr);
                restarts += 1;
            }
        }
        // Durability + visibility barrier, then the end-to-end check.
        client.sync().map_err(|e| format!("final sync: {e}"))?;
        let all_keys: Vec<u64> = (0..DISTINCT).collect();
        let estimates = client
            .estimate_batch(&all_keys)
            .map_err(|e| format!("final estimates: {e}"))?;
        for k in 0..DISTINCT as usize {
            if estimates[k] != oracle[k] {
                return Err(format!(
                    "key {k}: live estimate {} != oracle {} — \
                     {} lost or duplicated acked updates end-to-end",
                    estimates[k],
                    oracle[k],
                    (estimates[k] - oracle[k]).abs()
                ));
            }
        }
        Ok(())
    })();
    let stats = client.stats();
    let faulted_conns = proxy
        .stats()
        .faulted
        .load(std::sync::atomic::Ordering::Relaxed);
    let _ = server.kill();
    let _ = server.wait();
    result?;
    // The server is dead (SIGKILL); the synced on-disk state must still
    // reproduce the oracle exactly under dedup recovery.
    verify_net_offline(dir, &oracle)?;
    Ok(NetTrialStats {
        keys: sent,
        restarts,
        reconnects: u64::from(stats.reconnects),
        replays: stats.replays,
        duplicate_acks: stats.duplicate_acks,
        sheds_retried: stats.sheds_retried,
        faulted_conns,
        exact: true,
    })
}

fn write_chaos_json(path: &Path, rows: &[NetRow], seed: u64) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"bench\": \"net-chaos\",");
    let _ = writeln!(out, "  \"commit\": \"{}\",", git_commit());
    let _ = writeln!(
        out,
        "  \"config\": {{\"shards\": {SHARDS}, \"distinct\": {DISTINCT}, \
         \"batches\": {NET_BATCHES}, \"batch\": {NET_BATCH}, \"seed\": {seed}, \
         \"fault_rate\": 128, \"restarts_per_trial\": 1}},"
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"fault\": \"{}\", \"policy\": \"{}\", \"seed\": {}, \
             \"keys\": {}, \"batches\": {}, \"restarts\": {}, \"reconnects\": {}, \
             \"replays\": {}, \"duplicate_acks\": {}, \"sheds_retried\": {}, \
             \"faulted_conns\": {}, \"exact\": {}, \"panicked\": {}, \
             \"passed\": {}, \"detail\": \"{}\"}}{}",
            r.fault,
            r.policy,
            r.seed,
            r.keys,
            r.batches,
            r.restarts,
            r.reconnects,
            r.replays,
            r.duplicate_acks,
            r.sheds_retried,
            r.faulted_conns,
            r.exact,
            r.panicked,
            r.passed,
            json_escape(&r.detail),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// The full survivability sweep: every fault kind × both backpressure
/// policies × `seeds_per_cell` seeds, one SIGKILL restart per trial.
fn run_net_chaos(seeds_per_cell: u64, seed: u64, base: &Path, out: &Path) -> ! {
    let exe = std::env::current_exe().expect("current_exe");
    let mut rows: Vec<NetRow> = Vec::new();
    let mut failures = 0usize;
    for &fault in NET_FAULTS.iter() {
        for &policy in &["block", "shed"] {
            for s in 0..seeds_per_cell {
                let trial_seed = seed ^ (s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let name = net_fault_name(fault);
                let dir = base.join(format!("net-{name}-{policy}-{s}"));
                let started = Instant::now();
                let (stats, panicked, passed, detail) =
                    match std::panic::catch_unwind(AssertUnwindSafe(|| {
                        net_trial_body(fault, policy, trial_seed, &dir, &exe)
                    })) {
                        Ok(Ok(stats)) => (stats, false, true, String::new()),
                        Ok(Err(e)) => (NetTrialStats::default(), false, false, e),
                        Err(payload) => {
                            (NetTrialStats::default(), true, false, panic_text(payload))
                        }
                    };
                let row = NetRow {
                    fault: name,
                    policy,
                    seed: trial_seed,
                    keys: stats.keys,
                    batches: NET_BATCHES,
                    restarts: stats.restarts,
                    reconnects: stats.reconnects,
                    replays: stats.replays,
                    duplicate_acks: stats.duplicate_acks,
                    sheds_retried: stats.sheds_retried,
                    faulted_conns: stats.faulted_conns,
                    exact: stats.exact,
                    panicked,
                    passed,
                    detail,
                };
                if row.passed {
                    println!(
                        "net trial {name:<13} {policy:<5} seed {s} ok in {:>5}ms \
                         ({} keys, {} restart(s), {} reconnect(s), {} replay(s), \
                         {} dup ack(s), {} shed(s), {} faulted conn(s))",
                        started.elapsed().as_millis(),
                        row.keys,
                        row.restarts,
                        row.reconnects,
                        row.replays,
                        row.duplicate_acks,
                        row.sheds_retried,
                        row.faulted_conns
                    );
                    let _ = std::fs::remove_dir_all(&dir);
                } else {
                    eprintln!(
                        "net trial {name:<13} {policy:<5} seed {s} FAIL{}: {}",
                        if row.panicked { " (panicked)" } else { "" },
                        row.detail
                    );
                    eprintln!("  state kept in {}", dir.display());
                    failures += 1;
                }
                rows.push(row);
            }
        }
    }
    let total = rows.len();
    if let Err(e) = write_chaos_json(out, &rows, seed) {
        eprintln!("write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {} ({total} trials)", out.display());
    if failures > 0 {
        eprintln!("{failures}/{total} net-chaos trials FAILED");
        std::process::exit(1);
    }
    println!("all {total} net-chaos trials passed (exactly-once held under every fault)");
    std::process::exit(0);
}

/// Validate a committed `BENCH_chaos.json`: every trial passed with
/// exact end-to-end counts, the fault × policy grid is fully covered,
/// every trial survived a restart and at least one reconnect, and the
/// sweep as a whole exercised replay (otherwise the window logic went
/// untested and "exactly-once" is vacuous).
fn validate_chaos(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"schema_version\"",
        "\"bench\": \"net-chaos\"",
        "\"commit\"",
        "\"results\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{path}: missing {key}"));
        }
    }
    let mut seen: Vec<(String, String)> = Vec::new();
    let mut total_replays = 0u64;
    let mut total_dups = 0u64;
    for line in text.lines().filter(|l| l.contains("\"fault\"")) {
        let get =
            |k: &str| field(line, k).ok_or_else(|| format!("{path}: row missing \"{k}\": {line}"));
        let num = |k: &str| -> Result<u64, String> {
            get(k)?
                .parse::<u64>()
                .map_err(|e| format!("{path}: bad \"{k}\": {e}: {line}"))
        };
        let fault = get("fault")?.to_string();
        let policy = get("policy")?.to_string();
        if get("panicked")? != "false" {
            return Err(format!(
                "{path}: a panic escaped trial {fault}/{policy}: {}",
                get("detail")?
            ));
        }
        if get("passed")? != "true" || get("exact")? != "true" {
            return Err(format!(
                "{path}: trial {fault}/{policy} failed: {}",
                get("detail")?
            ));
        }
        if num("restarts")? == 0 {
            return Err(format!(
                "{path}: {fault}/{policy} never crash-restarted the server"
            ));
        }
        if num("reconnects")? == 0 {
            return Err(format!(
                "{path}: {fault}/{policy} never reconnected — the fault path went \
                 unexercised"
            ));
        }
        total_replays += num("replays")?;
        total_dups += num("duplicate_acks")?;
        seen.push((fault, policy));
    }
    if seen.len() < 8 {
        return Err(format!(
            "{path}: only {} trials — the 4-fault x 2-policy grid needs at least 8",
            seen.len()
        ));
    }
    for fault in ["reset", "stall", "partial-write", "partition"] {
        for policy in ["block", "shed"] {
            let want = (fault.to_string(), policy.to_string());
            if !seen.contains(&want) {
                return Err(format!("{path}: sweep missing trial {fault}/{policy}"));
            }
        }
    }
    if total_replays == 0 {
        return Err(format!(
            "{path}: no trial replayed a batch — the replay window went untested"
        ));
    }
    println!(
        "{path}: {} net-chaos trials validated (full fault x policy grid, \
         {total_replays} replays, {total_dups} duplicate acks absorbed)",
        seen.len()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve-child") {
        if args.len() != 3 {
            eprintln!("usage: crash_recovery serve-child <dir> <block|shed>");
            std::process::exit(2);
        }
        let policy: &'static str = match args[2].as_str() {
            "block" => "block",
            "shed" => "shed",
            other => {
                eprintln!("unknown policy: {other}");
                std::process::exit(2);
            }
        };
        run_serve_child(Path::new(&args[1]), policy);
    }
    if args.first().map(String::as_str) == Some("child") {
        if args.len() != 5 {
            eprintln!("usage: crash_recovery child <dir> <fsync> <keys> <ckpt-every>");
            std::process::exit(2);
        }
        let keys: u64 = args[3].parse().expect("keys must be a number");
        // ckpt-every is fixed at compile time; the arg exists so harness
        // and child can never silently disagree on the protocol.
        let ckpt: u64 = args[4].parse().expect("ckpt-every must be a number");
        assert_eq!(ckpt, CKPT_EVERY, "harness/child checkpoint mismatch");
        run_child(Path::new(&args[1]), parse_fsync(&args[2]), keys);
    }
    let mut trials = 25usize;
    let mut keys: Option<u64> = None;
    let mut seed = SEED;
    let mut dir: Option<PathBuf> = None;
    let mut faults = false;
    let mut net_chaos = false;
    let mut net_seeds = 4u64;
    let mut out: Option<PathBuf> = None;
    let mut validate_path: Option<String> = None;
    let mut validate_chaos_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--faults" => faults = true,
            "--net-chaos" => net_chaos = true,
            "--net-seeds" => {
                i += 1;
                net_seeds = args
                    .get(i)
                    .expect("--net-seeds needs a value")
                    .parse()
                    .expect("net-seeds must be a number");
            }
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(args.get(i).expect("--out needs a path")));
            }
            "--validate-faults" => {
                i += 1;
                validate_path = Some(args.get(i).expect("--validate-faults needs a path").clone());
            }
            "--validate-chaos" => {
                i += 1;
                validate_chaos_path =
                    Some(args.get(i).expect("--validate-chaos needs a path").clone());
            }
            "--trials" => {
                i += 1;
                trials = args
                    .get(i)
                    .expect("--trials needs a value")
                    .parse()
                    .expect("trials must be a number");
            }
            "--keys" => {
                i += 1;
                keys = Some(
                    args.get(i)
                        .expect("--keys needs a value")
                        .parse()
                        .expect("keys must be a number"),
                );
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be a number");
            }
            "--dir" => {
                i += 1;
                dir = Some(PathBuf::from(args.get(i).expect("--dir needs a path")));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: crash_recovery [--trials N] [--keys N] [--seed S] [--dir PATH]\n\
                     \x20      crash_recovery --faults [--keys N] [--seed S] [--dir PATH] \
                     [--out BENCH_faults.json]\n\
                     \x20      crash_recovery --net-chaos [--net-seeds N] [--seed S] \
                     [--dir PATH] [--out BENCH_chaos.json]\n\
                     \x20      crash_recovery --validate-faults BENCH_faults.json\n\
                     \x20      crash_recovery --validate-chaos BENCH_chaos.json"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Some(path) = validate_path {
        if let Err(e) = validate_faults(&path) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        std::process::exit(0);
    }
    if let Some(path) = validate_chaos_path {
        if let Err(e) = validate_chaos(&path) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        std::process::exit(0);
    }
    let base = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("asketch-crash-{}", std::process::id()))
    });
    if net_chaos {
        let out = out.unwrap_or_else(|| PathBuf::from("BENCH_chaos.json"));
        run_net_chaos(net_seeds, seed, &base, &out);
    }
    if faults {
        let out = out.unwrap_or_else(|| PathBuf::from("BENCH_faults.json"));
        run_faults(keys.unwrap_or(65_536), seed, &base, &out);
    }
    run_harness(trials, keys.unwrap_or(400_000), seed, &base);
}
